"""Unit tests for the distributed progress protocol pieces."""

import pytest

from repro.core import Pointstamp, Timestamp
from repro.core.graph import DataflowGraph, StageKind
from repro.core.progress import ProgressState
from repro.runtime.protocol import (
    PROTOCOL_MODES,
    UPDATE_WIRE_BYTES,
    ProgressView,
    _may_hold_update,
    net_updates,
    wire_size,
)


def ts(epoch, *counters):
    return Timestamp(epoch, tuple(counters))


def simple_graph():
    """in -> a -> b with stage/connector locations."""
    g = DataflowGraph()
    inp = g.new_stage("in", None, 0, 1, StageKind.INPUT)
    a = g.new_stage("a", lambda s, w: None, 1, 1)
    b = g.new_stage("b", lambda s, w: None, 1, 0)
    c1 = g.connect(inp, 0, a, 0)
    c2 = g.connect(a, 0, b, 0)
    g.freeze()
    return g, inp, a, b, c1, c2


class TestNetUpdates:
    def test_cancellation(self):
        p = Pointstamp(ts(0), "x")
        assert net_updates([(p, +1), (p, -1)]) == []

    def test_combination(self):
        p = Pointstamp(ts(0), "x")
        q = Pointstamp(ts(1), "x")
        out = net_updates([(p, +1), (q, -1), (p, +1)])
        assert (p, 2) in out and (q, -1) in out

    def test_positives_before_negatives(self):
        p = Pointstamp(ts(0), "x")
        q = Pointstamp(ts(1), "x")
        r = Pointstamp(ts(2), "x")
        out = net_updates([(q, -2), (p, +1), (r, +3)])
        deltas = [d for _, d in out]
        assert deltas == sorted(deltas, reverse=True)

    def test_wire_size(self):
        p = Pointstamp(ts(0), "x")
        assert wire_size([(p, 1), (p, -1)]) == 2 * UPDATE_WIRE_BYTES


class TestMayHold:
    def test_held_when_dominated_by_frontier(self):
        g, inp, a, b, c1, c2 = simple_graph()
        state = ProgressState(g.summaries)
        # An early message on c1 dominates a notification at b.
        state.update(Pointstamp(ts(0), c1), +1)
        p = Pointstamp(ts(0), b)
        assert _may_hold_update(state, p, +1, 0)
        assert _may_hold_update(state, p, -1, 0)

    def test_positive_vertex_surplus_held(self):
        g, inp, a, b, c1, c2 = simple_graph()
        state = ProgressState(g.summaries)
        p = Pointstamp(ts(0), b)
        state.update(p, +1)  # visible occurrence
        assert _may_hold_update(state, p, +1, 0)

    def test_negative_update_not_held_by_condition_b(self):
        # The liveness amendment: a decrement with no dominating frontier
        # element must flush even if the net is positive.
        g, inp, a, b, c1, c2 = simple_graph()
        state = ProgressState(g.summaries)
        p = Pointstamp(ts(0), b)
        state.update(p, +2)
        assert not _may_hold_update(state, p, -1, 0)

    def test_connector_updates_not_held_by_condition_b(self):
        g, inp, a, b, c1, c2 = simple_graph()
        state = ProgressState(g.summaries)
        p = Pointstamp(ts(0), c2)
        state.update(p, +1)
        assert not _may_hold_update(state, p, +1, 0)

    def test_in_flight_counts_toward_net(self):
        g, inp, a, b, c1, c2 = simple_graph()
        state = ProgressState(g.summaries)
        p = Pointstamp(ts(0), b)
        # Nothing visible locally, but our own +1 is in flight.
        assert _may_hold_update(state, p, +1, +1)
        assert not _may_hold_update(state, p, +1, -1)


class TestProgressView:
    def test_unblocked_active_frontier(self):
        g, inp, a, b, c1, c2 = simple_graph()
        view = ProgressView(g.summaries)
        p = Pointstamp(ts(0), a)
        view.apply([(p, +1)])
        assert view.unblocked(p)

    def test_unblocked_inactive_but_clear(self):
        g, inp, a, b, c1, c2 = simple_graph()
        view = ProgressView(g.summaries)
        # p itself is not visible (its +1 is buffered elsewhere), but
        # nothing else could produce work at or before it.
        assert view.unblocked(Pointstamp(ts(0), b))

    def test_blocked_by_upstream(self):
        g, inp, a, b, c1, c2 = simple_graph()
        view = ProgressView(g.summaries)
        view.apply([(Pointstamp(ts(0), c1), +1)])
        assert not view.unblocked(Pointstamp(ts(0), b))
        assert not view.unblocked(Pointstamp(ts(5), b))

    def test_same_pointstamp_does_not_block_itself(self):
        g, inp, a, b, c1, c2 = simple_graph()
        view = ProgressView(g.summaries)
        p = Pointstamp(ts(0), b)
        view.apply([(p, +2)])  # two workers requested the same time
        assert view.unblocked(p)

    def test_on_change_hook_fires(self):
        g, inp, a, b, c1, c2 = simple_graph()
        calls = []
        view = ProgressView(g.summaries, on_change=lambda: calls.append(1))
        view.apply([(Pointstamp(ts(0), a), +1)])
        assert calls == [1]

    def test_transient_negative_blocks(self):
        g, inp, a, b, c1, c2 = simple_graph()
        view = ProgressView(g.summaries)
        view.apply([(Pointstamp(ts(0), c2), -1)])
        assert not view.unblocked(Pointstamp(ts(0), b))
        view.apply([(Pointstamp(ts(0), c2), +1)])
        assert view.unblocked(Pointstamp(ts(0), b))


class TestModes:
    def test_mode_list(self):
        assert set(PROTOCOL_MODES) == {"none", "local", "global", "local+global"}

    def test_unknown_mode_rejected(self):
        from repro.runtime import ClusterComputation

        with pytest.raises(ValueError):
            comp = ClusterComputation(progress_mode="bogus")
            comp.new_input()
            comp.build()
