"""Tests for worker scheduling policies (section 3.2).

Workers deliver messages before notifications; within messages, the
default policy is FIFO and the alternative delivers the earliest
pointstamp first, trading throughput for end-to-end latency of early
epochs.
"""

from collections import Counter

import pytest

from repro.lib import Stream
from repro.runtime import ClusterComputation


def run(scheduling, epochs, record_completion=False):
    comp = ClusterComputation(
        num_processes=2, workers_per_process=1, scheduling=scheduling
    )
    inp = comp.new_input()
    out = Counter()
    completion = {}

    def observe(t, recs):
        out.update((t.epoch, r) for r in recs)
        completion.setdefault(t.epoch, comp.now)

    (
        Stream.from_input(inp)
        .count_by(lambda x: x % 7)
        .subscribe(observe)
    )
    comp.build()
    # Feed all epochs at once so queues actually hold a mix of epochs.
    for records in epochs:
        inp.on_next(records)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return out, completion


EPOCHS = [list(range(i, i + 40)) for i in range(5)]


class TestSchedulingPolicies:
    def test_results_identical(self):
        fifo, _ = run("fifo", EPOCHS)
        earliest, _ = run("earliest", EPOCHS)
        assert fifo == earliest

    def test_earliest_does_not_delay_epoch_zero(self):
        _, fifo = run("fifo", EPOCHS)
        _, earliest = run("earliest", EPOCHS)
        assert earliest[0] <= fifo[0] * 1.05

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ClusterComputation(scheduling="random")

    def test_epochs_complete_in_order_under_earliest(self):
        _, completion = run("earliest", EPOCHS)
        times = [completion[e] for e in sorted(completion)]
        assert times == sorted(times)
