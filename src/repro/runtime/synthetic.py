"""Synthetic record batches and serialization size models.

The paper's throughput experiments move tens of millions of records per
computer; materialising each one as a Python object would make the
simulation intractable.  A :class:`SyntheticRecords` payload stands for
``count`` records of ``bytes_per_record`` bytes each while remaining a
single Python object.  The runtime's cost and size models treat it as
that many records, so exchange benchmarks exercise the full routing,
progress-tracking and network code paths at the paper's data scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from ..columnar import ColumnarBatch


@dataclass(frozen=True)
class SyntheticRecords:
    """A stand-in for ``count`` fixed-size records.

    ``dest`` is an opaque routing tag: exchange connectors in benchmarks
    use ``partitioner=lambda batch: batch.dest`` to address a specific
    downstream vertex, mirroring a pre-partitioned exchange.
    """

    count: int
    bytes_per_record: int = 8
    dest: int = 0

    @property
    def total_bytes(self) -> int:
        return self.count * self.bytes_per_record


def record_count(records: List[Any]) -> int:
    """Number of logical records in a batch."""
    if type(records) is ColumnarBatch:
        return len(records)
    total = 0
    for record in records:
        if isinstance(record, SyntheticRecords):
            total += record.count
        else:
            total += 1
    return total


def batch_bytes(records: List[Any], default_record_bytes: int) -> int:
    """Serialized size of a batch.

    Three record classes: :class:`SyntheticRecords` report their modeled
    payload; records exposing a ``wire_bytes`` attribute (e.g. AllReduce
    vector chunks) report their own serialized size; everything else
    counts as ``default_record_bytes``.
    """
    if type(records) is ColumnarBatch:
        # O(1), and identical to the record-list model for the same
        # records — columnar encoding never changes virtual time.
        return len(records) * default_record_bytes
    total = 0
    for record in records:
        if isinstance(record, SyntheticRecords):
            total += record.total_bytes
        else:
            wire = getattr(record, "wire_bytes", None)
            total += default_record_bytes if wire is None else wire
    return total
