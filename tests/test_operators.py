"""Semantics tests for repro.lib operators against naive-Python oracles."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import Computation
from repro.core.timestamp import Timestamp
from repro.lib import Stream
from repro.lib.operators import (
    AggregateByVertex,
    CountByVertex,
    UnaryBufferingVertex,
)


def run_unary(build, epochs):
    """Build `stream -> stream` pipeline, feed epochs, return per-epoch output."""
    comp = Computation()
    inp = comp.new_input()
    out = {}
    build(Stream.from_input(inp)).subscribe(
        lambda t, records: out.setdefault(t.epoch, []).extend(records)
    )
    comp.build()
    for epoch in epochs:
        inp.on_next(list(epoch))
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return out


small_records = st.lists(st.integers(min_value=-10, max_value=10), max_size=20)
epoch_lists = st.lists(small_records, min_size=1, max_size=4)


class TestStatelessOperators:
    @given(epoch_lists)
    @settings(max_examples=30, deadline=None)
    def test_select(self, epochs):
        out = run_unary(lambda s: s.select(lambda x: x * 2), epochs)
        for e, records in enumerate(epochs):
            assert sorted(out.get(e, [])) == sorted(x * 2 for x in records)

    @given(epoch_lists)
    @settings(max_examples=30, deadline=None)
    def test_where(self, epochs):
        out = run_unary(lambda s: s.where(lambda x: x % 2 == 0), epochs)
        for e, records in enumerate(epochs):
            assert sorted(out.get(e, [])) == sorted(x for x in records if x % 2 == 0)

    @given(epoch_lists)
    @settings(max_examples=30, deadline=None)
    def test_select_many(self, epochs):
        out = run_unary(lambda s: s.select_many(lambda x: [x, x]), epochs)
        for e, records in enumerate(epochs):
            assert sorted(out.get(e, [])) == sorted(
                y for x in records for y in (x, x)
            )

    def test_inspect_passthrough(self):
        probes = []
        out = run_unary(
            lambda s: s.inspect(lambda t, r: probes.append((t.epoch, list(r)))),
            [[1, 2], [3]],
        )
        assert sorted(out[0]) == [1, 2]
        assert sorted(out[1]) == [3]
        assert probes


class TestCoordinatedOperators:
    @given(epoch_lists)
    @settings(max_examples=30, deadline=None)
    def test_distinct(self, epochs):
        out = run_unary(lambda s: s.distinct(), epochs)
        for e, records in enumerate(epochs):
            assert sorted(out.get(e, [])) == sorted(set(records))

    @given(epoch_lists)
    @settings(max_examples=30, deadline=None)
    def test_count_by(self, epochs):
        out = run_unary(lambda s: s.count_by(lambda x: x % 3), epochs)
        for e, records in enumerate(epochs):
            expected = Counter(x % 3 for x in records)
            assert dict(out.get(e, [])) == dict(expected)

    @given(epoch_lists)
    @settings(max_examples=30, deadline=None)
    def test_group_by(self, epochs):
        out = run_unary(
            lambda s: s.group_by(lambda x: x % 2, lambda k, vs: [(k, sorted(vs))]),
            epochs,
        )
        for e, records in enumerate(epochs):
            expected = {}
            for x in records:
                expected.setdefault(x % 2, []).append(x)
            assert dict(out.get(e, [])) == {k: sorted(v) for k, v in expected.items()}

    @given(epoch_lists)
    @settings(max_examples=30, deadline=None)
    def test_aggregate_by_sum(self, epochs):
        out = run_unary(
            lambda s: s.aggregate_by(
                lambda x: x % 2, lambda x: x, lambda a, b: a + b
            ),
            epochs,
        )
        for e, records in enumerate(epochs):
            expected = {}
            for x in records:
                expected[x % 2] = expected.get(x % 2, 0) + x
            assert dict(out.get(e, [])) == expected

    @given(epoch_lists)
    @settings(max_examples=20, deadline=None)
    def test_count(self, epochs):
        out = run_unary(lambda s: s.count(), epochs)
        for e, records in enumerate(epochs):
            if records:
                assert out[e] == [len(records)]
            else:
                assert e not in out

    def test_buffered_generic(self):
        out = run_unary(lambda s: s.buffered(lambda rs: [sum(rs)]), [[1, 2, 3]])
        assert out[0] == [6]

    def test_epochs_are_independent(self):
        # distinct() is per-timestamp: a record reappearing in a later
        # epoch is emitted again.
        out = run_unary(lambda s: s.distinct(), [[7], [7]])
        assert out[0] == [7]
        assert out[1] == [7]


class TestBinaryOperators:
    def run_binary(self, build, left_epochs, right_epochs):
        comp = Computation()
        left = comp.new_input()
        right = comp.new_input()
        out = {}
        build(Stream.from_input(left), Stream.from_input(right)).subscribe(
            lambda t, records: out.setdefault(t.epoch, []).extend(records)
        )
        comp.build()
        for lhs, rhs in zip(left_epochs, right_epochs):
            left.on_next(list(lhs))
            right.on_next(list(rhs))
        left.on_completed()
        right.on_completed()
        comp.run()
        assert comp.drained()
        return out

    @given(epoch_lists, epoch_lists)
    @settings(max_examples=30, deadline=None)
    def test_concat(self, lefts, rights):
        n = min(len(lefts), len(rights))
        lefts, rights = lefts[:n], rights[:n]
        out = self.run_binary(lambda a, b: a.concat(b), lefts, rights)
        for e in range(n):
            assert sorted(out.get(e, [])) == sorted(lefts[e] + rights[e])

    @given(epoch_lists, epoch_lists)
    @settings(max_examples=30, deadline=None)
    def test_join(self, lefts, rights):
        n = min(len(lefts), len(rights))
        lefts, rights = lefts[:n], rights[:n]
        out = self.run_binary(
            lambda a, b: a.join(
                b, lambda x: x % 3, lambda y: y % 3, lambda x, y: (x, y)
            ),
            lefts,
            rights,
        )
        for e in range(n):
            expected = sorted(
                (x, y) for x in lefts[e] for y in rights[e] if x % 3 == y % 3
            )
            assert sorted(out.get(e, [])) == expected

    def test_join_does_not_cross_epochs(self):
        out = self.run_binary(
            lambda a, b: a.join(b, lambda x: x, lambda y: y, lambda x, y: (x, y)),
            [[1], [2]],
            [[2], [1]],
        )
        assert out == {}

    def test_binary_buffered(self):
        out = self.run_binary(
            lambda a, b: a.binary_buffered(
                b, lambda left, right: [(sum(left), sum(right))],
                partitioner=lambda r: 0,
            ),
            [[1, 2], [4]],
            [[10], [20, 30]],
        )
        assert out == {0: [(3, 10)], 1: [(4, 50)]}

    def test_binary_buffered_context_mismatch_rejected(self):
        comp = Computation()
        a = Stream.from_input(comp.new_input())
        b = Stream.from_input(comp.new_input())
        with a.scoped_loop() as loop:
            loop.feed(loop.entered)
            with pytest.raises(ValueError):
                loop.entered.binary_buffered(b, lambda lhs, rhs: [])

    def test_concat_context_mismatch_rejected(self):
        comp = Computation()
        a = Stream.from_input(comp.new_input())
        b = Stream.from_input(comp.new_input())
        with a.scoped_loop() as loop:
            loop.feed(loop.entered)
            with pytest.raises(ValueError):
                loop.entered.concat(b)


class TestIterate:
    def test_fixed_point_collatz_style(self):
        # Halve even numbers until odd; emits the trajectory, converges.
        out = run_unary(
            lambda s: s.iterate(
                lambda body: body.select(lambda x: x // 2).where(lambda x: x % 2 == 0)
            ),
            [[16]],
        )
        assert sorted(out[0]) == [2, 4, 8]  # 8,4,2 emitted; 1 is odd, filtered

    def test_max_iterations_bounds_loop(self):
        # x -> x forever; bounded by max_iterations.
        out = run_unary(
            lambda s: s.iterate(lambda body: body.select(lambda x: x + 1),
                                max_iterations=5),
            [[0]],
        )
        assert sorted(out[0]) == [1, 2, 3, 4, 5]

    def test_iterate_multiple_epochs(self):
        out = run_unary(
            lambda s: s.iterate(
                lambda body: body.select(lambda x: x - 1).where(lambda x: x > 0)
            ),
            [[2], [3]],
        )
        assert sorted(out[0]) == [1]
        assert sorted(out[1]) == [1, 2]

    def test_nested_iterate(self):
        # Outer loop decrements; inner loop burns each value to zero.
        def inner(body):
            return body.select(lambda x: x - 1).where(lambda x: x > 0)

        def outer(body):
            return body.iterate(inner).where(lambda x: x > 1)

        out = run_unary(lambda s: s.iterate(outer), [[3]])
        # Outer iteration 0: inner(3) -> {2, 1}, where(>1) keeps {2} (the
        # egress carries the body output, which is also fed back).
        # Outer iteration 1: inner(2) -> {1}, where(>1) -> {} (loop ends).
        assert sorted(out[0]) == [2]

    def test_leave_outside_loop_rejected(self):
        comp = Computation()
        s = Stream.from_input(comp.new_input())
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            s.leave()

    def test_feedback_double_connect_rejected(self):
        from repro.lib import Loop

        comp = Computation()
        s = Stream.from_input(comp.new_input())
        with pytest.warns(DeprecationWarning):
            loop = Loop(comp)
            entered = s.enter(loop)
        loop.connect_feedback(entered)
        with pytest.raises(ValueError):
            loop.connect_feedback(entered)

    def test_feedback_from_outside_rejected(self):
        from repro.lib import Loop

        comp = Computation()
        s = Stream.from_input(comp.new_input())
        with pytest.warns(DeprecationWarning):
            loop = Loop(comp)
        with pytest.raises(ValueError):
            loop.connect_feedback(s)


class TestSubscribeOrdering:
    def test_epochs_notified_in_order(self):
        comp = Computation()
        inp = comp.new_input()
        seen = []
        Stream.from_input(inp).subscribe(lambda t, r: seen.append(t.epoch))
        comp.build()
        for e in range(5):
            inp.on_next([e])
        inp.on_completed()
        comp.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_collect_helper(self):
        comp = Computation()
        inp = comp.new_input()
        sink = Stream.from_input(inp).select(lambda x: x + 1).collect()
        comp.build()
        inp.on_next([1, 2])
        inp.on_completed()
        comp.run()
        assert [(t.epoch, sorted(r)) for t, r in sink] == [(0, [2, 3])]


class _NullHarness:
    """Absorbs send_by/notify_at so buffering vertices run standalone."""

    total_workers = 1

    def send(self, vertex, port, records, timestamp):
        pass

    def request_notification(self, vertex, timestamp, capability=True):
        pass


class TestBufferFlushLeavesNoSnapshotResidue:
    """Per-timestamp buffers must disappear from the vertex — and hence
    from any later checkpoint — once ``on_notify`` flushed them.  A
    flushed buffer lingering in a snapshot would be resurrected by a
    rollback and double-emitted on replay."""

    @pytest.mark.parametrize(
        "make,records,attr",
        [
            (
                lambda: UnaryBufferingVertex(lambda rs: sorted(rs)),
                [3, 1, 2],
                "buffers",
            ),
            (lambda: CountByVertex(lambda r: r), [5, 5, 9], "counts"),
            (
                lambda: AggregateByVertex(lambda r: r % 2, lambda r: r, max),
                [4, 7, 8],
                "state",
            ),
        ],
    )
    def test_flush_then_checkpoint_is_empty(self, make, records, attr):
        vertex = make()
        vertex._harness = _NullHarness()
        ts = Timestamp(0, ())
        vertex.on_recv(0, records, ts)
        # Mid-epoch: the buffered state is in the snapshot (it must be —
        # a rollback to this point needs it to replay correctly).
        assert vertex.checkpoint()[attr]
        vertex.on_notify(ts)
        # Flushed: the buffer is gone from the vertex...
        assert getattr(vertex, attr) == {}
        # ...and from every checkpoint taken after the flush.
        assert vertex.checkpoint()[attr] == {}
