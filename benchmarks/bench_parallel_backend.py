"""Inline versus multiprocessing vertex execution on the flagship run.

WCC on the 64-computer Figure 6 preset, executed twice: once with
vertex callbacks inline on the DES thread and once with their bodies
offloaded to a 4-child fork pool (`repro.parallel`).  The two runs must
be bit-identical in virtual time and event count — the pool changes
only wall-clock time.  The report records both wall clocks and the
work split; EXPERIMENTS.md discusses the speedup model (the offload
only pays on multi-core hosts — on a single hardware core the pipe
round-trips are pure overhead).
"""

import time

from repro.algorithms import weakly_connected_components
from repro.lib import Stream
from repro.parallel import fork_available
from repro.runtime import ClusterComputation, CostModel
from repro.workloads import uniform_random_graph

from bench_harness import format_table, human_time, profile_lines, report

COMPUTERS = 64
POOL_WORKERS = 4
GRAPH = uniform_random_graph(2000, 4000, seed=2)
#: The Figure 6 blocked cost model (see bench_fig6d_strong_scaling).
BLOCKED = CostModel(per_record_cost=2e-5, record_bytes=800)


def run_wcc(backend: str):
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=2,
        progress_mode="local+global",
        cost_model=BLOCKED,
        backend=backend,
        pool_workers=POOL_WORKERS,
    )
    out = []
    inp = comp.new_input()
    weakly_connected_components(Stream.from_input(inp)).subscribe(
        lambda t, recs: out.extend(recs)
    )
    comp.build()
    inp.on_next(GRAPH)
    inp.on_completed()
    started = time.perf_counter()
    comp.run()
    wall = time.perf_counter() - started
    assert comp.drained(), comp.debug_state()
    observables = (comp.sim.now, comp.sim.events_executed, sorted(out))
    offloaded = 0 if comp.pool is None else comp.pool.tasks_offloaded
    comp.close()
    return comp, wall, observables, offloaded


def test_parallel_backend_wcc64(benchmark):
    if not fork_available():
        import pytest

        pytest.skip("mp backend requires the fork start method")

    def experiment():
        inline_comp, inline_wall, inline_obs, _ = run_wcc("inline")
        _, mp_wall, mp_obs, offloaded = run_wcc("mp")
        return inline_comp, inline_wall, inline_obs, mp_wall, mp_obs, offloaded

    inline_comp, inline_wall, inline_obs, mp_wall, mp_obs, offloaded = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )

    # The tentpole guarantee: the pool must not perturb the simulation.
    assert inline_obs == mp_obs
    assert offloaded > 0

    rows = [
        ("inline", human_time(inline_wall), "%.6f s" % inline_obs[0], "-"),
        (
            "mp x%d" % POOL_WORKERS,
            human_time(mp_wall),
            "%.6f s" % mp_obs[0],
            "%d tasks" % offloaded,
        ),
    ]
    lines = format_table(
        ["backend", "wall clock", "virtual time", "offloaded"], rows
    )
    lines.append(
        "wall-clock ratio inline/mp: %.2fx" % (inline_wall / mp_wall)
    )
    lines.append("-- inline DES self-profile --")
    lines.extend(profile_lines(inline_comp))
    report("parallel_backend_wcc64", lines)
