"""The interactive-recovery example, run under pytest.

``examples/interactive_recover.py`` kills a process while the Figure 1
application has queries in flight and asserts every response batch is
identical to a failure-free run.  This wrapper executes the same
scenario so the example is exercised (and its invariant enforced) by
the test suite, not just by hand.
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")
)

import interactive_recover  # noqa: E402


@pytest.fixture(scope="module")
def clean_run():
    return interactive_recover.run()


def test_failure_free_run_answers_every_query(clean_run):
    responses, comp = clean_run
    assert sorted(responses) == list(range(interactive_recover.EPOCHS))
    for epoch, batch in responses.items():
        assert [qid for qid, _, _ in batch] == ["q%d" % epoch]


def test_mid_query_kill_answers_identically(clean_run):
    expected, clean = clean_run
    kill_at = clean.now * 0.5
    responses, comp = interactive_recover.run(kill=(2, kill_at))
    assert responses == expected
    (failure,) = comp.recovery.failures
    assert failure["process"] == 2
    assert failure["mode"] in ("partial", "skip")


def test_kill_during_first_epochs_recovers(clean_run):
    expected, clean = clean_run
    responses, comp = interactive_recover.run(kill=(1, clean.now * 0.2))
    assert responses == expected
    assert len(comp.recovery.failures) == 1
