"""Unit and property tests for repro.core.pathsummary.

The key property test checks the decision procedure for the summary
partial order against a brute-force evaluation over a grid of probe
timestamps: whenever ``s1.less_equal(s2)`` the pointwise relation must
hold everywhere, and whenever it fails there must be a witness timestamp.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PathSummary, Antichain, Timestamp, minimal_summaries


def ts(epoch, *counters):
    return Timestamp(epoch, tuple(counters))


SOURCE_DEPTH = 3


def summaries_between(source_depth, target_depth):
    """Strategy for summaries from source_depth to target_depth."""

    def build(keep, delta, append_bits):
        if keep == 0:
            delta = 0
        append = tuple(append_bits[: target_depth - keep])
        return PathSummary(keep, delta, append)

    return st.builds(
        build,
        st.integers(min_value=0, max_value=min(source_depth, target_depth)),
        st.integers(min_value=0, max_value=3),
        st.lists(st.integers(min_value=0, max_value=3), min_size=target_depth, max_size=target_depth),
    )


def summaries_at(target_depth):
    """Strategy for summaries from SOURCE_DEPTH to target_depth."""
    return summaries_between(SOURCE_DEPTH, target_depth)


def probe_timestamps(depth=SOURCE_DEPTH, bound=4):
    """A grid of timestamps dense enough to witness order violations."""
    for counters in itertools.product(range(bound + 1), repeat=depth):
        yield Timestamp(0, counters)


class TestConstruction:
    def test_identity(self):
        s = PathSummary.identity(2)
        assert s.apply(ts(4, 1, 2)) == ts(4, 1, 2)

    def test_ingress(self):
        assert PathSummary.ingress(1).apply(ts(4, 7)) == ts(4, 7, 0)

    def test_egress(self):
        assert PathSummary.egress(2).apply(ts(4, 7, 9)) == ts(4, 7)

    def test_feedback(self):
        assert PathSummary.feedback(2).apply(ts(4, 7, 9)) == ts(4, 7, 10)

    def test_egress_at_depth_zero_raises(self):
        with pytest.raises(ValueError):
            PathSummary.egress(0)

    def test_feedback_at_depth_zero_raises(self):
        with pytest.raises(ValueError):
            PathSummary.feedback(0)

    def test_epoch_increment_rejected(self):
        with pytest.raises(ValueError):
            PathSummary(0, 1, ())

    def test_apply_requires_enough_counters(self):
        with pytest.raises(ValueError):
            PathSummary(2, 0, ()).apply(ts(0, 1))

    def test_immutable_and_hashable(self):
        s = PathSummary(1, 2, (3,))
        with pytest.raises(AttributeError):
            s.keep = 0
        assert hash(s) == hash(PathSummary(1, 2, (3,)))

    def test_callable(self):
        assert PathSummary.identity(1)(ts(2, 3)) == ts(2, 3)


class TestComposition:
    def test_loop_roundtrip(self):
        # ingress ; feedback ; feedback ; egress == identity (the loop
        # counters added and incremented are dropped on the way out).
        path = (
            PathSummary.ingress(1)
            .then(PathSummary.feedback(2))
            .then(PathSummary.feedback(2))
            .then(PathSummary.egress(2))
        )
        assert path == PathSummary.identity(1)

    def test_ingress_then_feedback(self):
        path = PathSummary.ingress(0).then(PathSummary.feedback(1))
        assert path.apply(ts(3)) == ts(3, 1)
        assert path == PathSummary(0, 0, (1,))

    def test_feedback_then_ingress(self):
        path = PathSummary.feedback(1).then(PathSummary.ingress(1))
        assert path.apply(ts(3, 0)) == ts(3, 1, 0)

    def test_identity_left_and_right(self):
        s = PathSummary(1, 2, (3, 0))
        assert PathSummary.identity(SOURCE_DEPTH).then(s) == s
        assert s.then(PathSummary.identity(s.target_depth)) == s

    def test_compose_overdeep_raises(self):
        with pytest.raises(ValueError):
            PathSummary.egress(1).then(PathSummary.feedback(2))

    @settings(max_examples=200)
    @given(summaries_at(2), summaries_between(2, 3))
    def test_composition_matches_sequential_application(self, s1, s2):
        composed = s1.then(s2)
        for t in itertools.islice(probe_timestamps(), 64):
            assert composed.apply(t) == s2.apply(s1.apply(t))


class TestOrderDecisionProcedure:
    @settings(max_examples=300)
    @given(summaries_at(3), summaries_at(3))
    def test_less_equal_matches_pointwise(self, s1, s2):
        decided = s1.less_equal(s2)
        pointwise = all(
            s1.apply(t).less_equal(s2.apply(t)) for t in probe_timestamps(bound=4)
        )
        assert decided == pointwise, (s1, s2, decided, pointwise)

    @settings(max_examples=200)
    @given(summaries_at(2), summaries_at(2))
    def test_less_equal_matches_pointwise_depth2(self, s1, s2):
        decided = s1.less_equal(s2)
        pointwise = all(
            s1.apply(t).less_equal(s2.apply(t)) for t in probe_timestamps(bound=4)
        )
        assert decided == pointwise, (s1, s2, decided, pointwise)

    def test_depth_mismatch_raises(self):
        with pytest.raises(ValueError):
            PathSummary.identity(1).less_equal(PathSummary.identity(2))

    def test_feedback_dominated_by_identity(self):
        assert PathSummary.identity(1).less_equal(PathSummary.feedback(1))
        assert not PathSummary.feedback(1).less_equal(PathSummary.identity(1))

    def test_strictness(self):
        s = PathSummary.identity(1)
        assert not s.less_than(s)
        assert s.less_than(PathSummary.feedback(1))


class TestAntichain:
    def test_insert_keeps_minimal(self):
        chain = Antichain()
        assert chain.insert(PathSummary.feedback(1))
        assert chain.insert(PathSummary.identity(1))
        assert list(chain) == [PathSummary.identity(1)]

    def test_insert_rejects_dominated(self):
        chain = Antichain([PathSummary.identity(1)])
        assert not chain.insert(PathSummary.feedback(1))
        assert len(chain) == 1

    def test_insert_rejects_duplicate(self):
        chain = Antichain([PathSummary.identity(1)])
        assert not chain.insert(PathSummary.identity(1))

    def test_incomparable_coexist(self):
        # identity vs constant-1: t -> t vs t -> 1, incomparable.
        a = PathSummary(1, 0, ())
        b = PathSummary(0, 0, (1,))
        chain = Antichain([a, b])
        assert len(chain) == 2

    def test_dominates(self):
        chain = Antichain([PathSummary.feedback(1)])
        assert chain.dominates(ts(0, 0), ts(0, 1))
        assert not chain.dominates(ts(0, 0), ts(0, 0))

    def test_bool_and_eq(self):
        assert not Antichain()
        assert Antichain([PathSummary.identity(1)]) == Antichain([PathSummary.identity(1)])


class TestMinimalSummaries:
    def test_straight_line(self):
        # a -> b -> c at depth 0.
        links = [
            ("a", "b", PathSummary.identity(0)),
            ("b", "c", PathSummary.identity(0)),
        ]
        table = minimal_summaries(["a", "b", "c"], links, {"a": 0, "b": 0, "c": 0})
        assert table[("a", "c")] == Antichain([PathSummary.identity(0)])
        assert ("c", "a") not in table
        assert table[("a", "a")] == Antichain([PathSummary.identity(0)])

    def test_loop_converges_to_minimal(self):
        # in -> ingress -> body -> feedback -> body (cycle), body -> egress -> out
        depth = {"in": 0, "ing": 0, "body": 1, "fb": 1, "eg": 1, "out": 0}
        links = [
            ("in", "ing", PathSummary.identity(0)),
            ("ing", "body", PathSummary.ingress(0)),
            ("body", "fb", PathSummary.identity(1)),
            ("fb", "body", PathSummary.feedback(1)),
            ("body", "eg", PathSummary.identity(1)),
            ("eg", "out", PathSummary.egress(1)),
        ]
        nodes = list(depth)
        table = minimal_summaries(nodes, links, depth)
        # Body reaches itself around the cycle with exactly one increment.
        assert table[("body", "body")] == Antichain(
            [PathSummary.identity(1), PathSummary.feedback(1)]
        ) or list(table[("body", "body")]) == [PathSummary.identity(1)]
        # The identity dominates feedback, so only identity remains.
        assert list(table[("body", "body")]) == [PathSummary.identity(1)]
        # From outside, entering costs a pushed zero counter.
        assert list(table[("in", "body")]) == [PathSummary(0, 0, (0,))]
        # Through the whole loop and out: identity at depth 0.
        assert list(table[("in", "out")]) == [PathSummary.identity(0)]
