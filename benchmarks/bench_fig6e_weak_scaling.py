"""Figure 6e: weak scaling of WCC and WordCount.

Input grows with the cluster (constant nodes/edges — or lines — per
computer); perfect weak scaling would keep the running time flat.  The
paper: WCC degrades to ~1.44x the single-computer time at 64 computers
(explained entirely by the growing fraction of remote data exchange:
(n-1)/n of each computer's 360 MB crosses the network), WordCount only
to ~1.23x thanks to combiners shrinking its exchange.

Same construction here: per-computer workload held constant, slowdown
measured against one computer, WordCount using its combiner variant.
"""

from repro.lib import Stream
from repro.algorithms import weakly_connected_components, wordcount_with_combiner
from repro.runtime import ClusterComputation
from repro.workloads import generate_corpus, weak_scaling_graph

from repro.runtime import CostModel

from bench_harness import format_table, human_time, report

# The ladder reaches the paper's full 64 computers in powers of four;
# per-computer sizes are rescaled so the largest configuration stays
# CI-tolerable (the 64-computer WCC run alone walks ~1M simulator
# events) while WordCount keeps enough per-worker work that compute,
# not control traffic, dominates its weak-scaling curve.
COMPUTERS = [1, 4, 16, 64]
NODES_PER_COMPUTER = 100
EDGES_PER_COMPUTER = 200
LINES_PER_COMPUTER = 1000

#: Records model blocks of the paper-scale input (18.2M edges / 2 GB of
#: text per computer); see bench_fig6d_strong_scaling.BLOCKED.
BLOCKED = CostModel(per_record_cost=2e-5, record_bytes=800)


def run_wcc(num_computers: int) -> float:
    edges = weak_scaling_graph(
        num_computers, NODES_PER_COMPUTER, EDGES_PER_COMPUTER, seed=3
    )
    comp = ClusterComputation(
        num_processes=num_computers, workers_per_process=2,
        progress_mode="local+global", cost_model=BLOCKED,
    )
    inp = comp.new_input()
    weakly_connected_components(Stream.from_input(inp)).subscribe(
        lambda t, recs: None
    )
    comp.build()
    inp.on_next(edges)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return comp.now


def run_wordcount(num_computers: int) -> float:
    corpus = generate_corpus(
        LINES_PER_COMPUTER * num_computers,
        words_per_line=8,
        vocabulary_size=500,
        seed=3,
    )
    comp = ClusterComputation(
        num_processes=num_computers, workers_per_process=2,
        progress_mode="local+global", cost_model=BLOCKED,
    )
    inp = comp.new_input()
    wordcount_with_combiner(Stream.from_input(inp)).subscribe(
        lambda t, recs: None
    )
    comp.build()
    inp.on_next(corpus)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return comp.now


def test_fig6e_weak_scaling(benchmark):
    def experiment():
        return {
            c: {"wcc": run_wcc(c), "wordcount": run_wordcount(c)}
            for c in COMPUTERS
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    base = results[1]
    rows = [
        (
            c,
            human_time(results[c]["wcc"]),
            "%.2fx" % (results[c]["wcc"] / base["wcc"]),
            human_time(results[c]["wordcount"]),
            "%.2fx" % (results[c]["wordcount"] / base["wordcount"]),
        )
        for c in COMPUTERS
    ]
    report(
        "fig6e_weak_scaling",
        format_table(
            ["computers", "wcc", "slowdown", "wordcount", "slowdown"], rows
        ),
    )

    top = COMPUTERS[-1]
    wcc_slowdown = results[top]["wcc"] / base["wcc"]
    wc_slowdown = results[top]["wordcount"] / base["wordcount"]
    # Both degrade from perfect weak scaling, WCC more than WordCount
    # (the paper: 1.44x vs 1.23x at 64 computers).
    assert wcc_slowdown > 1.0
    assert wc_slowdown > 0.95
    assert wc_slowdown < wcc_slowdown
    # Degradation stays within a small constant factor.
    assert wcc_slowdown < 4.0
