"""The columnar data plane (opt-in via ``REPRO_COLUMNAR=1``).

A :class:`ColumnarBatch` is an array-backed, schema-tagged batch of
records: one ``array.array`` per column instead of one Python tuple per
record.  It is the unit that flows through exchanges, coalesced
worker-queue deliveries and fused chains when the cluster runtime is
built with ``columnar=True`` — the per-record Python costs the WCC/64
critical path pays today (tuple construction, per-record partitioner
calls, per-record size models, per-record pickling between the DES
coordinator and pool children) collapse to per-batch array operations.

The plane is strictly an *encoding* of the same record streams:

- ``ColumnarBatch.from_records`` only accepts records that conform
  exactly to the schema (plain tuples of plain ints/floats, or bare
  ints/floats for scalar schemas); anything else falls back to the
  record-list path, so arbitrary user data is never coerced.
- ``to_records`` reproduces the original records bit-for-bit (Python
  ints/floats, plain tuples), so a vertex without a columnar kernel
  receives exactly what it would have received — the automatic
  record-list shim in :meth:`repro.core.vertex.Vertex.on_recv_batch`.
- The simulator's byte model treats a batch as ``len(batch)`` records
  of ``default_record_bytes`` each — identical to the record-list
  model — so virtual time is bit-identical with the plane on or off.
"""

from .batch import (
    INT64,
    INT64_PAIR,
    ColumnarBatch,
    PairSink,
    Schema,
    combine_payloads,
    route,
)

__all__ = [
    "ColumnarBatch",
    "PairSink",
    "Schema",
    "INT64",
    "INT64_PAIR",
    "combine_payloads",
    "route",
]
