"""Metrics-driven elastic autoscaling for the simulated cluster.

Closes the loop the ISSUE's related work sketches (SnailTrail-style
online analysis feeding placement decisions): an :class:`Autoscaler`
samples the live trace stream on a fixed virtual-time interval,
computes per-host utilization from the worker callback spans
(:mod:`repro.obs.metrics`'s span vocabulary), and calls
:meth:`ClusterComputation.add_process` /
:meth:`~ClusterComputation.remove_process` when the load stays beyond
its thresholds for ``sustain`` consecutive samples — hysteresis plus a
post-decision cooldown keep it from flapping while a migration's
replay is still draining.

The controller is entirely passive with respect to correctness: it
only ever requests the same planned membership changes a human
operator could, and those ride the async-cut migration path, so
per-epoch outputs are bit-identical with the controller on or off —
only the virtual-time performance profile changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import _SPAN_KINDS
from ..obs.trace import TraceSink


class Hysteresis:
    """Sustained-threshold detector: the anti-flap core of the
    :class:`Autoscaler`, factored out so other control loops (the
    serving layer's admission controller, :mod:`repro.serve.admission`)
    reuse the same machinery.

    ``update(value)`` returns ``"high"`` once the value has stayed at or
    above ``high`` for ``sustain`` consecutive samples, ``"low"`` once it
    has stayed at or below ``low`` as long, and ``None`` otherwise.  A
    sample in the dead band between the thresholds resets both streaks.
    After acting on a signal, call :meth:`acknowledge` to restart that
    side's streak (the caller typically also applies a cooldown).
    """

    __slots__ = ("high", "low", "sustain", "high_streak", "low_streak")

    def __init__(self, high: float, low: float, sustain: int):
        if low >= high:
            raise ValueError(
                "Hysteresis low threshold (%r) must be below high (%r)"
                % (low, high)
            )
        if sustain < 1:
            raise ValueError("Hysteresis sustain must be >= 1 (got %r)" % (sustain,))
        self.high = high
        self.low = low
        self.sustain = sustain
        self.high_streak = 0
        self.low_streak = 0

    def update(self, value: float) -> Optional[str]:
        if value >= self.high:
            self.high_streak += 1
            self.low_streak = 0
        elif value <= self.low:
            self.low_streak += 1
            self.high_streak = 0
        else:
            self.high_streak = 0
            self.low_streak = 0
        if self.high_streak >= self.sustain:
            return "high"
        if self.low_streak >= self.sustain:
            return "low"
        return None

    def acknowledge(self, side: str) -> None:
        """Reset one side's streak after its signal was acted upon."""
        if side == "high":
            self.high_streak = 0
        else:
            self.low_streak = 0


@dataclass
class AutoscalePolicy:
    """Thresholds and pacing for the autoscaling control loop.

    Utilization is measured per sample window as the total worker busy
    time divided by ``live_hosts * interval`` — i.e. "busy workers per
    host".  With the default thresholds a host carrying most of a
    worker's load sustains a grow, and a mostly idle fleet sustains a
    shrink.
    """

    #: Virtual-time sampling interval, seconds.
    interval: float = 0.005
    #: Grow when utilization stays at or above this for ``sustain``
    #: consecutive samples.
    high_utilization: float = 0.75
    #: Shrink when utilization stays at or below this for ``sustain``
    #: consecutive samples.
    low_utilization: float = 0.35
    #: Consecutive out-of-band samples required before acting.
    sustain: int = 3
    #: Virtual time after a decision during which no new decision is
    #: taken (lets the migration blip and its replay drain).
    cooldown: float = 0.02
    #: Never shrink below this many live hosts.
    min_processes: int = 1
    #: Never grow beyond this many live hosts.
    max_processes: int = 16


class Autoscaler:
    """Watches a :class:`repro.obs.TraceSink` and rescales the cluster.

    ::

        sink = TraceSink()
        comp.attach_trace_sink(sink)
        Autoscaler(comp, sink).start()   # before driving inputs

    Sampling rides :meth:`Simulator.schedule_background`, so the
    controller only observes while foreground work exists and never
    keeps an otherwise finished simulation alive.  Decisions are
    recorded in :attr:`decisions`; utilization samples in
    :attr:`samples` as ``(t, utilization, live_hosts)``.
    """

    def __init__(
        self,
        cluster,
        sink: TraceSink,
        policy: Optional[AutoscalePolicy] = None,
    ) -> None:
        cluster._check_built()
        cluster._check_rescalable("Autoscaler")
        self.cluster = cluster
        self.sink = sink
        self.policy = policy or AutoscalePolicy()
        if self.policy.low_utilization >= self.policy.high_utilization:
            raise ValueError(
                "AutoscalePolicy.low_utilization (%r) must be below "
                "high_utilization (%r) — equal or inverted thresholds "
                "make every sample both a grow and a shrink signal"
                % (self.policy.low_utilization, self.policy.high_utilization)
            )
        self._cursor = len(sink.events)
        self._hysteresis = Hysteresis(
            self.policy.high_utilization,
            self.policy.low_utilization,
            self.policy.sustain,
        )
        self._cooldown_until = 0.0
        self._started = False
        #: ``(t, utilization, live_hosts)`` per sample window.
        self.samples: List[Tuple[float, float, int]] = []
        #: One dict per add/remove decision taken.
        self.decisions: List[Dict[str, Any]] = []

    def start(self) -> "Autoscaler":
        """Arm the sampling loop (idempotent)."""
        if not self._started:
            self._started = True
            self._arm()
        return self

    def _arm(self) -> None:
        self.cluster.sim.schedule_background(
            self.policy.interval, self._sample
        )

    def _utilization(self, hosts: int) -> float:
        """Busy-workers-per-host over the spans since the last sample."""
        events = self.sink.events
        busy = 0.0
        for event in events[self._cursor :]:
            if event.kind in _SPAN_KINDS and event.worker >= 0:
                busy += event.dur
        self._cursor = len(events)
        if hosts <= 0:
            return 0.0
        return busy / (hosts * self.policy.interval)

    def backfill(self, reason: str = "backfill") -> bool:
        """Replace an evicted host immediately (the supervisor's
        crash-loop quarantine calls this after ``_evict_process``).

        Bypasses the utilization hysteresis — the fleet just lost a
        host through no fault of the load — but still respects the
        policy ceiling and the one-migration-at-a-time queue.  Returns
        True when a grow was submitted.
        """
        cluster = self.cluster
        now = cluster.sim.now
        hosting = cluster._live_hosts()
        if len(hosting) >= self.policy.max_processes:
            return False
        if cluster.total_workers // (len(hosting) + 1) < 1:
            return False
        cluster.add_process(at=now)
        self.decisions.append(
            {
                "kind": "add",
                "at": now,
                "utilization": None,
                "hosts": len(hosting),
                "reason": reason,
            }
        )
        self._cooldown_until = now + self.policy.cooldown
        return True

    def _sample(self) -> None:
        cluster = self.cluster
        policy = self.policy
        now = cluster.sim.now
        hosting = cluster._live_hosts()
        utilization = self._utilization(len(hosting))
        self.samples.append((now, utilization, len(hosting)))
        signal = self._hysteresis.update(utilization)
        if (
            now >= self._cooldown_until
            and cluster._rescale_active is None
            and not cluster._rescale_queue
        ):
            if (
                signal == "high"
                and len(hosting) < policy.max_processes
                and cluster.total_workers // (len(hosting) + 1) >= 1
            ):
                cluster.add_process(at=now)
                self.decisions.append(
                    {
                        "kind": "add",
                        "at": now,
                        "utilization": utilization,
                        "hosts": len(hosting),
                    }
                )
                self._cooldown_until = now + policy.cooldown
                self._hysteresis.acknowledge("high")
            elif signal == "low" and len(hosting) > max(
                1, policy.min_processes
            ):
                # Shed the highest-numbered removable host; process 0
                # (controller + accumulator) can never leave.
                candidates = [p for p in hosting if p != 0]
                if candidates:
                    victim = max(candidates)
                    cluster.remove_process(victim, at=now)
                    self.decisions.append(
                        {
                            "kind": "remove",
                            "process": victim,
                            "at": now,
                            "utilization": utilization,
                            "hosts": len(hosting),
                        }
                    )
                    self._cooldown_until = now + policy.cooldown
                    self._hysteresis.acknowledge("low")
        self._arm()
