"""The serving matrix: session scale x SLO class x backend x plan.

Sweeps the serving layer across {16, 100} concurrent sessions,
{fresh, stale} SLO classes, {inline, mp} execution backends and
{unfused, fused} plans, asserting the invariants that must hold in
every configuration: fresh answers bit-identical to the plain-Python
oracle, stale answers within their measured-staleness bound, and the
arrangement footprint identical across session counts (O(state), not
O(sessions x state)).

Like the chaos matrix, these runs are heavier than the unit suite and
form their own CI leg::

    PYTHONPATH=src python -m pytest -m serve_matrix -q
"""

import pytest

from repro.algorithms import hashtag_component_app
from repro.lib.stream import Stream
from repro.runtime import ClusterComputation
from tests.test_serve import fig8_workload, serve_run

SESSIONS = (16, 100)
SLOS = ("fresh", "stale")
BACKENDS = ("inline", "mp")
PLANS = ("unfused", "fused")

MATRIX = [
    (slo, backend, plan)
    for slo in SLOS
    for backend in BACKENDS
    for plan in PLANS
]

_oracles = {}


def queryvertex_oracle(tweet_epochs, query_epochs, sessions):
    """Fresh answers from the pre-serving design (one QueryVertex fed
    the same queries), cached per session count."""
    if sessions not in _oracles:
        comp = ClusterComputation(2, 2)
        ti, qi = comp.new_input(), comp.new_input()
        responses = []
        hashtag_component_app(
            Stream.from_input(ti),
            Stream.from_input(qi),
            lambda t, recs: responses.extend(recs),
            fresh=True,
        )
        comp.build()
        for tweets, queries in zip(tweet_epochs, query_epochs):
            ti.on_next(tweets)
            qi.on_next(queries)
            comp.run()
        ti.on_completed()
        qi.on_completed()
        comp.run()
        _oracles[sessions] = sorted(responses)
    return _oracles[sessions]


@pytest.mark.serve_matrix
@pytest.mark.parametrize("slo,backend,plan", MATRIX)
def test_serving_matrix(slo, backend, plan):
    kwargs = {}
    if backend == "mp":
        kwargs["backend"] = "mp"
        kwargs["pool_workers"] = 2
    if plan == "fused":
        kwargs["optimize"] = True
    tweet_epochs, _ = fig8_workload(epochs=6, sessions=0)
    footprints = {}
    for sessions in SESSIONS:
        _, query_epochs = fig8_workload(epochs=6, sessions=sessions)
        comp = ClusterComputation(2, 2, **kwargs)
        try:
            manager, arrangements = serve_run(
                comp, tweet_epochs, query_epochs, slo=slo, bound=3
            )
            assert len(manager.answers) == 6 * sessions
            if slo == "fresh":
                answers = sorted(
                    (a.query_id, a.user, a.value) for a in manager.answers
                )
                assert answers == queryvertex_oracle(
                    tweet_epochs, query_epochs, sessions
                )
                assert all(a.staleness == 0 for a in manager.answers)
            else:
                assert all(a.staleness <= 3 for a in manager.answers)
                assert all(a.state_epoch >= -1 for a in manager.answers)
            footprints[sessions] = manager.arrangement_entries()
        finally:
            comp.close()
    # O(state), not O(sessions x state): 16 and 100 sessions over the
    # same tweet stream leave the arrangement footprint identical.
    assert footprints[SESSIONS[0]] == footprints[SESSIONS[1]], footprints
