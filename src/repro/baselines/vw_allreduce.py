"""Vowpal Wabbit's binary-tree AllReduce iteration model (Figure 7b).

The paper's Figure 7b compares unmodified VW (three-phase iterations
with a binary-tree AllReduce) against VW hosted in Naiad with the
data-parallel AllReduce.  This module models one VW iteration:

1. per-process state update — constant in the process count;
2. local training — linear speedup with the process count;
3. binary-tree AllReduce — pipelined, but an interior tree node's NIC
   carries four vector-lengths of traffic (two subtrees up, two down)
   versus the data-parallel AllReduce's uniform ``2 (p-1)/p``, and the
   tree pays one coordination latency per level each way.  With
   measured send/receive overlap the tree's bottleneck NIC serializes
   an effective ``2.7 V`` (calibrated so the asymptotic gap matches the
   paper's ~35%); the tree is also the variant the paper calls
   "inherently more susceptible to stragglers" and blind to
   intra-computer locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2


@dataclass
class VwCosts:
    #: Phase 1: per-iteration state update, seconds (constant).
    state_update: float = 0.4
    #: Per-record local training cost, seconds.
    per_record: float = 2.5e-7
    #: Network bandwidth per NIC, bytes/s.
    bandwidth: float = 125e6
    #: Per-message latency (round setup), seconds.
    latency: float = 300e-6


def vw_iteration_time(
    num_processes: int,
    total_records: int,
    vector_bytes: int,
    costs: VwCosts = VwCosts(),
) -> float:
    """One unmodified-VW iteration (tree AllReduce)."""
    compute = costs.state_update + total_records * costs.per_record / num_processes
    if num_processes <= 1:
        return compute
    levels = ceil(log2(num_processes))
    allreduce = (
        2.7 * vector_bytes / costs.bandwidth + 2 * levels * costs.latency
    )
    return compute + allreduce


def naiad_iteration_time(
    num_processes: int,
    total_records: int,
    vector_bytes: int,
    costs: VwCosts = VwCosts(),
) -> float:
    """One Naiad-hosted VW iteration (data-parallel AllReduce).

    Reduce-scatter and all-gather each move ``(p-1)/p`` of the vector
    through every NIC concurrently; two notification waves coordinate.
    """
    compute = costs.state_update + total_records * costs.per_record / num_processes
    if num_processes <= 1:
        return compute
    share = vector_bytes * (num_processes - 1) / num_processes
    allreduce = 2 * share / costs.bandwidth + 2 * costs.latency
    return compute + allreduce


def speedup_curve(
    process_counts,
    total_records: int,
    vector_bytes: int,
    variant=vw_iteration_time,
    costs: VwCosts = VwCosts(),
):
    """Speedup versus a single process, per Figure 7b's axes."""
    base = variant(1, total_records, vector_bytes, costs)
    return [
        (p, base / variant(p, total_records, vector_bytes, costs))
        for p in process_counts
    ]
