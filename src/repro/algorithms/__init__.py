"""Applications from the paper's evaluation (sections 5 and 6).

Every algorithm runs unchanged on the reference runtime
(:class:`repro.core.Computation`) and the simulated cluster
(:class:`repro.runtime.ClusterComputation`); each module also ships a
plain-Python oracle used by the tests.
"""

from .connectivity import (
    MinLabelVertex,
    label_propagation,
    wcc_oracle,
    weakly_connected_components,
)
from .hashtag_components import (
    QueryVertex,
    app_oracle,
    component_top_resolver,
    hashtag_component_app,
    hashtag_component_arrangements,
    top_hashtags_by_component,
)
from .kexposure import k_exposure
from .logistic import (
    TrainVertex,
    local_gradient,
    logistic_oracle,
    logistic_regression,
    make_dataset,
)
from .pagerank import (
    PageRankVertex,
    pagerank_edge,
    pagerank_oracle,
    pagerank_pregel,
    pagerank_vertex,
)
from .scc import scc_oracle, strongly_connected_components
from .shortest_paths import (
    MultiSourceBfsVertex,
    approximate_shortest_paths,
    asp_oracle,
)
from .wordcount import wordcount, wordcount_with_combiner

__all__ = [
    "MinLabelVertex",
    "MultiSourceBfsVertex",
    "PageRankVertex",
    "QueryVertex",
    "TrainVertex",
    "app_oracle",
    "approximate_shortest_paths",
    "asp_oracle",
    "component_top_resolver",
    "hashtag_component_app",
    "hashtag_component_arrangements",
    "k_exposure",
    "label_propagation",
    "local_gradient",
    "logistic_oracle",
    "logistic_regression",
    "make_dataset",
    "pagerank_edge",
    "pagerank_oracle",
    "pagerank_pregel",
    "pagerank_vertex",
    "scc_oracle",
    "strongly_connected_components",
    "top_hashtags_by_component",
    "wcc_oracle",
    "weakly_connected_components",
    "wordcount",
    "wordcount_with_combiner",
]
