"""The chaos matrix: kill injection across every runtime configuration.

Sweeps {barrier, async} checkpointing x {inline, mp} execution backends
x {fused, unfused} plans, killing a process at three schedule points in
each configuration, and asserts the one invariant that must hold
everywhere: the per-epoch output multisets are bit-identical to a
failure-free run.  This is the composition test — the marker protocol,
partial rollback, the vertex pool's drain/re-seed, composite fused
checkpoints and exactly-once journal replay all have to agree.

These runs are deliberately heavier than the unit suite, so they are
marked ``chaos`` and run as a separate CI leg::

    PYTHONPATH=src python -m pytest -m chaos -q

Fault schedules (kill/rescale points) are drawn from one seeded RNG so
a CI failure is reproducible locally: every assertion echoes the seed,
and ``REPRO_CHAOS_SEED=<n>`` replays that exact schedule.
"""

import os
import random

import pytest

from tests.test_recovery import baseline, make_ft, run_cluster

#: One seed governs every drawn fault schedule in this module (export
#: ``REPRO_CHAOS_SEED`` to replay a failure's schedule exactly).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def chaos_rng(*scope):
    """An independent RNG per case, derived from the module seed plus
    the case's identity.  String-seeded so the stream depends only on
    ``(CHAOS_SEED, scope)`` — never on draw order elsewhere, interpreter
    hash randomization, or which subset of the matrix runs."""
    return random.Random(
        "chaos:%d:%s" % (CHAOS_SEED, ":".join(str(part) for part in scope))
    )


def kill_points(rng, n=3):
    """Early / mid / late kill fractions, jittered within their bands
    so repeated CI runs with different seeds sweep the schedule space.
    """
    bands = ((0.15, 0.35), (0.4, 0.6), (0.65, 0.85))
    return [rng.uniform(lo, hi) for lo, hi in bands[:n]]

CHECKPOINT_MODES = ("barrier", "async")
BACKENDS = ("inline", "mp")
PLANS = ("unfused", "fused")

MATRIX = [
    (mode, backend, plan)
    for mode in CHECKPOINT_MODES
    for backend in BACKENDS
    for plan in PLANS
]


def _ids(config):
    return "-".join(config)


@pytest.mark.chaos
@pytest.mark.parametrize("mode,backend,plan", MATRIX, ids=_ids)
def test_kill_matrix_outputs_bit_identical(mode, backend, plan):
    expected, duration = baseline("wordcount", (2, 2))
    kwargs = {}
    if backend == "mp":
        kwargs["backend"] = "mp"
        kwargs["pool_workers"] = 2
    if plan == "fused":
        kwargs["optimize"] = True
    rng = chaos_rng("kill", mode, backend, plan)
    for frac in kill_points(rng):
        ft = make_ft("checkpoint")
        ft.checkpoint_mode = mode
        out, comp = run_cluster(
            "wordcount",
            (2, 2),
            ft=ft,
            kill=(1, duration * frac),
            **kwargs
        )
        scenario = (mode, backend, plan, frac, "seed=%d" % CHAOS_SEED)
        assert out == expected, scenario
        assert len(comp.recovery.failures) == 1, scenario
        if mode == "async":
            # Async recovery must not silently degrade: the single kill
            # is handled without a whole-cluster rollback.
            assert comp.recovery.failures[0]["mode"] in (
                "partial",
                "skip",
            ), scenario


#: Planned membership changes injected at the same schedule points as
#: the kills: grow by one process, drain one out, or both in sequence.
RESCALE_EVENTS = ("add", "remove", "add-remove")

RESCALE_MATRIX = [
    (event, backend, plan)
    for event in RESCALE_EVENTS
    for backend in BACKENDS
    for plan in PLANS
]


def _rescale_ops(event, duration, frac):
    at = duration * frac
    if event == "add":
        return [("add", at)]
    if event == "remove":
        return [("remove", 2, at)]
    # Grow, then drain a founding member shortly after: the remove's
    # cut must cope with the add's migration replay still in the past.
    return [("add", at), ("remove", 1, duration * (frac + 0.1))]


@pytest.mark.chaos
@pytest.mark.parametrize("event,backend,plan", RESCALE_MATRIX, ids=_ids)
def test_rescale_matrix_outputs_bit_identical(event, backend, plan):
    expected, duration = baseline("wordcount", (3, 2))
    kwargs = {}
    if backend == "mp":
        kwargs["backend"] = "mp"
        kwargs["pool_workers"] = 2
    if plan == "fused":
        kwargs["optimize"] = True
    rng = chaos_rng("rescale", event, backend, plan)
    for frac in kill_points(rng):
        ft = make_ft("checkpoint", policy="reassign")
        ft.checkpoint_mode = "async"
        out, comp = run_cluster(
            "wordcount",
            (3, 2),
            ft=ft,
            rescale=_rescale_ops(event, duration, frac),
            **kwargs
        )
        scenario = (event, backend, plan, frac, "seed=%d" % CHAOS_SEED)
        assert out == expected, scenario
        kinds = [r["kind"] for r in comp.rescales]
        assert kinds == event.split("-"), (kinds,) + scenario
        # Planned changes are not failures: nothing may escalate to a
        # whole-cluster rollback.
        assert not comp.recovery.failures, scenario


def _serving_run(ft, kill=None, rescale=None, shape=(2, 2)):
    """The Figure 8 serving workload with mixed-SLO open sessions."""
    from repro.runtime import ClusterComputation
    from tests.test_serve import fig8_workload, serve_run

    tweet_epochs, query_epochs = fig8_workload(epochs=8, sessions=20)
    fresh_half = [q[:10] for q in query_epochs]
    stale_half = [q[10:] for q in query_epochs]
    comp = ClusterComputation(shape[0], shape[1], fault_tolerance=ft)
    manager, _ = serve_run(
        comp,
        tweet_epochs,
        [f + s for f, s in zip(fresh_half, stale_half)],
        slo="mixed",
        bound=3,
        kill=kill,
        rescale=rescale,
    )
    fresh = sorted(
        (a.query_id, a.user, a.value)
        for a in manager.answers
        if a.slo == "fresh"
    )
    stale = [a for a in manager.answers if a.slo == "stale"]
    return fresh, stale, comp


@pytest.mark.chaos
@pytest.mark.parametrize("mode", CHECKPOINT_MODES)
def test_kill_matrix_serving_case(mode):
    # Open query sessions across a mid-run kill: fresh answers are
    # bit-identical to the failure-free run, stale answers never exceed
    # their measured-staleness bound.
    def ft():
        out = make_ft("checkpoint")
        out.checkpoint_mode = mode
        return out

    base_fresh, base_stale, comp0 = _serving_run(ft())
    duration = comp0.sim.now
    rng = chaos_rng("serving", mode)
    for frac in kill_points(rng, n=2):
        scenario = (mode, frac, "seed=%d" % CHAOS_SEED)
        fresh, stale, comp = _serving_run(ft(), kill=(1, duration * frac))
        assert len(comp.recovery.failures) == 1, scenario
        assert fresh == base_fresh, scenario
        assert len(stale) == len(base_stale), scenario
        assert all(answer.staleness <= 3 for answer in stale), scenario


@pytest.mark.chaos
def test_rescale_matrix_serving_case():
    # Live membership changes with open sessions: same invariants, and
    # planned changes never escalate to a failure.
    def ft():
        out = make_ft("checkpoint", policy="reassign")
        out.checkpoint_mode = "async"
        return out

    base_fresh, base_stale, comp0 = _serving_run(ft(), shape=(3, 2))
    duration = comp0.sim.now
    for ops in (
        [("add", duration * 0.4)],
        [("remove", 2, duration * 0.4)],
        [("add", duration * 0.3), ("remove", 1, duration * 0.6)],
    ):
        fresh, stale, comp = _serving_run(ft(), rescale=ops, shape=(3, 2))
        assert fresh == base_fresh, ops
        assert all(answer.staleness <= 3 for answer in stale), ops
        assert not comp.recovery.failures, ops
        assert len(comp.rescales) == len(ops)


@pytest.mark.chaos
@pytest.mark.parametrize("mode", CHECKPOINT_MODES)
def test_kill_matrix_iteration_case(mode):
    # The loop case exercises in-flight feedback-channel messages in
    # the cut; one kill point per mode keeps the leg bounded.
    expected, duration = baseline("iterate", (4, 1))
    ft = make_ft("checkpoint")
    ft.checkpoint_mode = mode
    frac = chaos_rng("iterate", mode).uniform(0.3, 0.7)
    out, comp = run_cluster(
        "iterate", (4, 1), ft=ft, kill=(2, duration * frac)
    )
    scenario = (mode, frac, "seed=%d" % CHAOS_SEED)
    assert out == expected, scenario
    assert len(comp.recovery.failures) == 1, scenario
