"""Figure 7c: k-exposure throughput and latency under fault tolerance.

The paper streams tweets through the k-exposure computation on 32
computers, comparing three fault-tolerance configurations: none
(483 K tweets/s), periodic checkpoints every 100 epochs (322 K t/s) and
continual logging (274 K t/s).  Median response latencies are 40 ms /
40 ms / 85 ms: logging taxes every batch, while checkpointing shows up
only as occasional multi-second stalls in the tail.  Kineograph on the
same stream needs ~10-90 s to reflect input in output.

Reproduction: the incremental k-exposure dataflow on a simulated
cluster; tweets injected at epoch intervals in virtual time; latency is
epoch injection -> subscribed diff delivery.  The Kineograph baseline
replays the same stream through its snapshot pipeline.
"""

from repro.lib import Collection, Stream
from repro.algorithms.kexposure import k_exposure_incremental
from repro.baselines import KineographEngine
from repro.runtime import ClusterComputation, FaultTolerance
from repro.workloads import TweetGenerator, TweetStreamConfig

from bench_harness import format_table, human_time, percentile, report

COMPUTERS = 8
EPOCHS = 60
TWEETS_PER_EPOCH = 150
EPOCH_INTERVAL = 5e-3  # one epoch of tweets every 5 ms of virtual time

FT_MODES = {
    "none": FaultTolerance(mode="none"),
    "checkpoint": FaultTolerance(
        mode="checkpoint",
        checkpoint_every=20,
        state_bytes_per_worker=2 << 20,
        disk_bandwidth=200e6,
    ),
    "logging": FaultTolerance(
        mode="logging", disk_bandwidth=100e6, log_bytes_per_batch=4096
    ),
}


def make_stream():
    generator = TweetGenerator(
        TweetStreamConfig(num_users=2000, num_hashtags=100, seed=4)
    )
    follower_edges = [
        ((generator.query(), generator.query()), +1) for _ in range(3000)
    ]
    epochs = []
    for _ in range(EPOCHS):
        batch = [
            ((tweet.user, tag), +1)
            for tweet in generator.batch(TWEETS_PER_EPOCH)
            for tag in tweet.hashtags or ("#none",)
        ]
        epochs.append(batch)
    return follower_edges, epochs


def _build(fault_tolerance: FaultTolerance, observe):
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=1,
        progress_mode="local+global",
        fault_tolerance=fault_tolerance,
    )
    tweets_in = comp.new_input()
    followers_in = comp.new_input()
    k_exposure_incremental(
        Collection(Stream.from_input(tweets_in)),
        Collection(Stream.from_input(followers_in)),
    ).subscribe(observe)
    comp.build()
    return comp, tweets_in, followers_in


def run_mode(fault_tolerance: FaultTolerance):
    follower_edges, epochs = make_stream()

    # Saturated run: epochs back-to-back, for sustained throughput.
    comp, tweets_in, followers_in = _build(fault_tolerance, lambda t, d: None)
    followers_in.on_next(follower_edges)
    followers_in.on_completed()
    for batch in epochs:
        tweets_in.on_next(batch)
    tweets_in.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    throughput = EPOCHS * TWEETS_PER_EPOCH / comp.now

    # Paced run: one epoch every EPOCH_INTERVAL, for response latency.
    arrivals = {}
    latencies = []
    holder = {}

    def observe(timestamp, diffs):
        epoch = timestamp.epoch
        if epoch in arrivals:
            latencies.append(holder["comp"].now - arrivals[epoch])

    comp, tweets_in, followers_in = _build(fault_tolerance, observe)
    holder["comp"] = comp
    followers_in.on_next(follower_edges)
    followers_in.on_completed()

    def inject(epoch_index):
        arrivals[epoch_index] = comp.now
        tweets_in.on_next(epochs[epoch_index])
        if epoch_index + 1 == EPOCHS:
            tweets_in.on_completed()

    for index in range(EPOCHS):
        comp.sim.schedule_at(index * EPOCH_INTERVAL, lambda i=index: inject(i))
    comp.run()
    assert comp.drained(), comp.debug_state()
    return {
        "throughput": throughput,
        "median": percentile(latencies, 0.5),
        "p95": percentile(latencies, 0.95),
        "max": max(latencies),
    }


def test_fig7c_kexposure(benchmark):
    def experiment():
        results = {name: run_mode(ft) for name, ft in FT_MODES.items()}
        follower_edges, epochs = make_stream()
        kineograph = KineographEngine(num_machines=COMPUTERS)
        tweets = [(u, t) for batch in epochs for (u, t), _ in batch]
        kineograph.replay(
            tweets,
            [edge for edge, _ in follower_edges],
            arrival_rate=TWEETS_PER_EPOCH / EPOCH_INTERVAL,
            duration=40.0,
        )
        results["kineograph delay"] = kineograph.mean_result_delay()
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    kineograph_delay = results.pop("kineograph delay")

    rows = [
        (
            name,
            "%.0f t/s" % r["throughput"],
            human_time(r["median"]),
            human_time(r["p95"]),
            human_time(r["max"]),
        )
        for name, r in results.items()
    ]
    report(
        "fig7c_kexposure",
        format_table(
            ["fault tolerance", "throughput", "median", "p95", "max"], rows
        )
        + ["", "Kineograph mean result delay: %s" % human_time(kineograph_delay)],
    )

    # Throughput ordering: none >= checkpoint > logging (the paper:
    # 483K / 322K / 274K tweets per second).
    assert results["none"]["throughput"] >= results["checkpoint"]["throughput"]
    assert results["checkpoint"]["throughput"] > results["logging"]["throughput"]
    # Median latency: logging taxes every batch; checkpointing does not.
    assert results["logging"]["median"] > results["none"]["median"]
    assert results["checkpoint"]["median"] < 2 * results["none"]["median"]
    # Checkpoint stalls appear only in the tail.
    assert results["checkpoint"]["max"] > 5 * results["checkpoint"]["median"]
    # Every Naiad configuration beats Kineograph's staleness by orders
    # of magnitude.
    for r in results.values():
        assert r["median"] < kineograph_delay / 100
