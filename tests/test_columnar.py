"""The columnar data plane is a pure encoding (opt-in, invisible).

The contract from DESIGN.md "The columnar data plane": with
``columnar=True`` the runtime moves array-backed batches instead of
record lists wherever connector schemas allow, but the observable
execution — per-epoch outputs, virtual time, recovery behaviour — is
bit-identical to the record path, across backends (inline/mp), plan
shapes (unfused/fused) and mid-run process kills.  These tests pin that
sweep, the exact-conformance encoding rules, the automatic record-list
shim, the kernel accumulator's overflow demotion, and the
shared-memory effect ring.
"""

import pickle
import random
from array import array

import pytest

from repro.columnar import (
    INT64,
    INT64_PAIR,
    ColumnarBatch,
    PairSink,
    Schema,
    combine_payloads,
)
from repro import Vertex
from repro.lib import Stream
from repro.parallel import fork_available
from repro.parallel.shm_ring import EffectRing, shared_memory_available
from repro.runtime import ClusterComputation
from repro.algorithms import weakly_connected_components
from repro.algorithms.connectivity import wcc_oracle
from repro.workloads import uniform_random_graph

from tests.test_recovery import make_ft


# ----------------------------------------------------------------------
# Encoding: exact conformance, bit-exact round trips.
# ----------------------------------------------------------------------


class TestBatchEncoding:
    def test_pair_round_trip_is_bit_exact(self):
        records = [(3, -7), (0, 2**60), (-(2**62), 5)]
        batch = ColumnarBatch.from_records(records, INT64_PAIR)
        out = batch.to_records()
        assert out == records
        for rec in out:
            assert type(rec) is tuple
            assert all(type(v) is int for v in rec)

    def test_scalar_round_trip_is_bit_exact(self):
        records = [4, -1, 0, 2**61]
        batch = ColumnarBatch.from_records(records, INT64)
        out = batch.to_records()
        assert out == records
        assert all(type(v) is int for v in out)

    def test_float_column(self):
        schema = Schema(("q", "d"))
        records = [(1, 0.5), (2, -3.25)]
        batch = ColumnarBatch.from_records(records, schema)
        assert batch.to_records() == records

    @pytest.mark.parametrize(
        "records",
        [
            [(1, 2), (3,)],  # wrong arity
            [(1, 2), [3, 4]],  # list is not a tuple
            [(1, True)],  # bool is not exactly int
            [(1, 2.0)],  # float in an int column
            [(1, 2**63)],  # outside int64
            [(1, 2), None],
        ],
    )
    def test_nonconforming_records_reject_the_whole_batch(self, records):
        assert ColumnarBatch.from_records(records, INT64_PAIR) is None

    def test_tuple_subclass_rejected(self):
        class Point(tuple):
            pass

        assert ColumnarBatch.from_records([Point((1, 2))], INT64_PAIR) is None

    def test_empty_batch(self):
        batch = ColumnarBatch.from_records([], INT64_PAIR)
        assert len(batch) == 0 and batch.to_records() == []

    def test_pickle_round_trip_preserves_schema(self):
        batch = ColumnarBatch.from_records([(1, 2), (3, 4)], INT64_PAIR)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone == batch
        assert clone.schema == INT64_PAIR
        assert clone.to_records() == [(1, 2), (3, 4)]

    def test_combine_payloads_same_schema_concatenates(self):
        a = ColumnarBatch.from_records([(1, 2)], INT64_PAIR)
        b = ColumnarBatch.from_records([(3, 4)], INT64_PAIR)
        merged = combine_payloads([a, b])
        assert type(merged) is ColumnarBatch
        assert merged.to_records() == [(1, 2), (3, 4)]

    def test_combine_payloads_mixed_flattens_to_records(self):
        a = ColumnarBatch.from_records([(1, 2)], INT64_PAIR)
        merged = combine_payloads([a, ["x", "y"]])
        assert merged == [(1, 2), "x", "y"]

    @pytest.mark.parametrize("total", [1, 2, 5])
    def test_partition_matches_record_hash_routing(self, total):
        rng = random.Random(7)
        records = [
            (rng.randrange(-50, 2**62), rng.randrange(100)) for _ in range(200)
        ]
        batch = ColumnarBatch.from_records(records, INT64_PAIR)
        shares = batch.partition(0, total)
        expected = {}
        for rec in records:
            expected.setdefault(hash(rec[0]) % total, []).append(rec)
        assert {d: s.to_records() for d, s in shares} == expected


class TestPairSink:
    def test_fast_path_yields_batch(self):
        sink = PairSink()
        sink.emit(1, 2)
        sink.emit(3, 4)
        payload = sink.payload()
        assert type(payload) is ColumnarBatch
        assert payload.to_records() == [(1, 2), (3, 4)]

    def test_empty_sink_yields_none(self):
        assert PairSink().payload() is None

    def test_overflow_demotes_to_records_without_losing_pairs(self):
        # The first out-of-int64 value can strike on either column; the
        # half-appended pair must not be dropped or duplicated.
        for bad in [(2**63, 5), (5, 2**63)]:
            sink = PairSink()
            sink.emit(1, 2)
            sink.emit(*bad)
            sink.emit(3, 4)
            payload = sink.payload()
            assert type(payload) is list
            assert payload == [(1, 2), bad, (3, 4)]


# ----------------------------------------------------------------------
# The automatic record-list shim: vertices without a kernel see the
# exact records the record path would have delivered.
# ----------------------------------------------------------------------


class TestRecordListShim:
    def test_default_on_recv_batch_materializes_records(self):
        seen = []

        class Plain(Vertex):
            def on_recv(self, port, records, timestamp):
                seen.append((port, records, timestamp))

        batch = ColumnarBatch.from_records([(1, 2), (3, 4)], INT64_PAIR)
        Plain().on_recv_batch(1, batch, "t0")
        assert seen == [(1, [(1, 2), (3, 4)], "t0")]
        assert all(type(r) is tuple for r in seen[0][1])


# ----------------------------------------------------------------------
# The shared-memory effect ring (zero-copy child -> coordinator).
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not shared_memory_available(), reason="no multiprocessing.shared_memory"
)
class TestEffectRing:
    def test_put_get_round_trip(self):
        ring = EffectRing(size=4096)
        try:
            batch = ColumnarBatch.from_records([(1, 2), (3, -4)], INT64_PAIR)
            ref = ring.put(batch)
            assert ref is not None
            assert ring.get(ref) == batch
        finally:
            ring.close(unlink=True)

    def test_arena_full_falls_back_to_none(self):
        ring = EffectRing(size=64)
        try:
            big = ColumnarBatch.from_records(
                [(i, i) for i in range(100)], INT64_PAIR
            )
            assert ring.put(big) is None  # pickle fallback, not an error
            small = ColumnarBatch.from_records([(1, 2)], INT64_PAIR)
            assert ring.put(small) is not None
        finally:
            ring.close(unlink=True)

    def test_reset_reclaims_the_arena(self):
        ring = EffectRing(size=48)
        try:
            batch = ColumnarBatch.from_records([(9, 9), (8, 8)], INT64_PAIR)
            first = ring.put(batch)
            assert first is not None
            assert ring.put(batch) is None  # full
            ring.reset()
            again = ring.put(batch)
            assert again is not None and ring.get(again) == batch
        finally:
            ring.close(unlink=True)


# ----------------------------------------------------------------------
# The sweep: columnar on/off is invisible across backends, plan shapes
# and kill points, on the workload whose connectors actually carry
# schemas (WCC: select_many -> minlabel loop -> aggregate_by).
# ----------------------------------------------------------------------

EDGES = uniform_random_graph(200, 400, seed=13)


def run_wcc(columnar, backend="inline", optimize=False, ft=None, kill=None):
    comp = ClusterComputation(
        num_processes=2,
        workers_per_process=2,
        backend=backend,
        pool_workers=2,
        columnar=columnar,
        optimize=optimize,
        fault_tolerance=ft,
    )
    out = []
    inp = comp.new_input()
    weakly_connected_components(Stream.from_input(inp)).subscribe(
        lambda t, recs: out.extend(recs)
    )
    comp.build()
    if kill is not None:
        comp.kill_process(kill[0], at=kill[1])
    inp.on_next(EDGES)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    info = {
        "columnar_connectors": comp.columnar_connectors,
        "failures": len(comp.recovery.failures),
        "ring_batches": comp.pool.ring_batches if comp.pool is not None else 0,
    }
    result = (sorted(out), comp.now, info)
    comp.close()
    return result


_MP_PARAMS = [
    "inline",
    pytest.param(
        "mp",
        marks=pytest.mark.skipif(
            not fork_available(), reason="mp backend requires fork"
        ),
    ),
]


class TestColumnarIsInvisible:
    @pytest.mark.parametrize("backend", _MP_PARAMS)
    @pytest.mark.parametrize("optimize", [False, True])
    def test_outputs_and_virtual_time_identical(self, backend, optimize):
        plain, plain_now, _ = run_wcc(False, backend=backend, optimize=optimize)
        cols, cols_now, info = run_wcc(True, backend=backend, optimize=optimize)
        assert cols == plain == sorted(wcc_oracle(EDGES).items())
        assert cols_now == plain_now
        assert info["columnar_connectors"] > 0  # the plane was actually on

    @pytest.mark.parametrize("fraction", [0.3, 0.7])
    @pytest.mark.parametrize("optimize", [False, True])
    def test_kill_recovery_identical(self, optimize, fraction):
        # Schemas survive checkpoint/restore: the recovered execution
        # keeps delivering columnar batches and the outputs stay equal.
        expected, duration, _ = run_wcc(False, optimize=optimize)
        out, _, info = run_wcc(
            True,
            optimize=optimize,
            ft=make_ft("checkpoint"),
            kill=(1, duration * fraction),
        )
        assert out == expected
        assert info["failures"] == 1
        assert info["columnar_connectors"] > 0

    @pytest.mark.skipif(
        not fork_available() or not shared_memory_available(),
        reason="needs fork and shared memory",
    )
    def test_mp_effects_ride_the_shared_ring(self):
        _, _, info = run_wcc(True, backend="mp", optimize=True)
        assert info["ring_batches"] > 0


# ----------------------------------------------------------------------
# Kernel-carrying operators agree with the record path on plans that
# exercise count_by/aggregate_by/join columns.
# ----------------------------------------------------------------------


def run_keyed(columnar, backend="inline", optimize=False):
    comp = ClusterComputation(
        num_processes=2,
        workers_per_process=2,
        backend=backend,
        pool_workers=2,
        columnar=columnar,
        optimize=optimize,
    )
    inp = comp.new_input()
    out = {}
    pairs = Stream.from_input(inp).select(
        lambda x: (x % 11, x), schema=INT64
    )
    counted = pairs.count_by(lambda r: r[0], key_col=0, schema=INT64_PAIR)
    folded = pairs.aggregate_by(
        lambda r: r[0],
        lambda r: r[1],
        max,
        key_col=0,
        value_col=1,
        schema=INT64_PAIR,
    )
    joined = counted.join(
        folded,
        lambda r: r[0],
        lambda r: r[0],
        lambda l, r: (l[0], l[1], r[1]),
        left_key_col=0,
        right_key_col=0,
        schema=INT64_PAIR,
    )
    joined.subscribe(lambda t, recs: out.setdefault(t.epoch, sorted(recs)))
    comp.build()
    inp.on_next(list(range(64)))
    inp.on_next([7, 7, 7, 2**62, 5])
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    comp.close()
    return out


class TestKeyedKernels:
    @pytest.mark.parametrize("backend", _MP_PARAMS)
    @pytest.mark.parametrize("optimize", [False, True])
    def test_columnar_matches_record_path(self, backend, optimize):
        plain = run_keyed(False, backend=backend, optimize=optimize)
        cols = run_keyed(True, backend=backend, optimize=optimize)
        assert cols == plain
