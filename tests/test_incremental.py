"""Tests for incremental collections against batch oracles.

The core property (DESIGN.md invariant 6): accumulating an incremental
operator's output diffs over all epochs equals recomputing the operator
on the accumulated input.
"""

from collections import Counter

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro import Computation
from repro.lib import Collection, Stream, consolidate_diffs
from repro.runtime import ClusterComputation


def run_collection(build, diff_epochs, cluster=False):
    comp = (
        ClusterComputation(num_processes=2, workers_per_process=2)
        if cluster
        else Computation()
    )
    inp = comp.new_input()
    live = {}
    build(Collection(Stream.from_input(inp))).accumulate_into(live)
    comp.build()
    for diffs in diff_epochs:
        inp.on_next(diffs)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return live


def accumulate_input(diff_epochs):
    acc = Counter()
    for diffs in diff_epochs:
        for record, multiplicity in diffs:
            acc[record] += multiplicity
    return +acc


# Epochs of diffs over a small record space; deletions only retract
# records that exist (multiplicities stay non-negative) for operators
# with set semantics.
records = st.integers(min_value=0, max_value=6)


@st.composite
def diff_epoch_lists(draw):
    epochs = []
    counts = Counter()
    for _ in range(draw(st.integers(1, 4))):
        diffs = []
        for _ in range(draw(st.integers(0, 6))):
            record = draw(records)
            if counts[record] > 0 and draw(st.booleans()):
                diffs.append((record, -1))
                counts[record] -= 1
            else:
                diffs.append((record, +1))
                counts[record] += 1
        epochs.append(diffs)
    return epochs


class TestConsolidate:
    def test_cancellation(self):
        assert consolidate_diffs([(1, +1), (1, -1), (2, +1)]) == [(2, 1)]

    def test_sums(self):
        assert dict(consolidate_diffs([(1, 1), (1, 1)])) == {1: 2}


class TestIncrementalDistinct:
    @given(diff_epoch_lists())
    @settings(max_examples=25, deadline=None)
    def test_matches_batch_distinct(self, epochs):
        live = run_collection(lambda c: c.distinct(), epochs)
        expected = {record: 1 for record in accumulate_input(epochs)}
        assert live == expected

    def test_retraction_emits_negative(self):
        live = run_collection(
            lambda c: c.distinct(), [[(5, 1)], [(5, -1)]]
        )
        assert live == {}

    def test_duplicates_suppressed(self):
        live = run_collection(lambda c: c.distinct(), [[(5, 1), (5, 1)]])
        assert live == {5: 1}


class TestIncrementalCount:
    @given(diff_epoch_lists())
    @settings(max_examples=25, deadline=None)
    def test_matches_batch_count(self, epochs):
        live = run_collection(lambda c: c.count_by(lambda r: r % 2), epochs)
        acc = accumulate_input(epochs)
        expected = Counter()
        for record, m in acc.items():
            expected[record % 2] += m
        assert live == {(k, v): 1 for k, v in expected.items() if v > 0}

    def test_cluster_matches_reference(self):
        epochs = [[(1, 1), (2, 1)], [(1, 1), (2, -1)], [(3, 1)]]
        ref = run_collection(lambda c: c.count_by(lambda r: r), epochs)
        clu = run_collection(lambda c: c.count_by(lambda r: r), epochs, cluster=True)
        assert ref == clu


class TestIncrementalReduce:
    def test_group_sum_maintained(self):
        def build(c):
            return c.reduce_by(
                lambda r: r[0], lambda k, vs: [(k, sum(v for _, v in vs))]
            )

        live = run_collection(
            build,
            [
                [(("a", 1), 1), (("a", 2), 1)],
                [(("a", 1), -1), (("b", 5), 1)],
            ],
        )
        assert live == {("a", 2): 1, ("b", 5): 1}

    def test_group_vanishes_on_empty(self):
        def build(c):
            return c.reduce_by(lambda r: r[0], lambda k, vs: [(k, len(vs))])

        live = run_collection(build, [[(("a", 1), 1)], [(("a", 1), -1)]])
        assert live == {}


class TestIncrementalJoin:
    @given(diff_epoch_lists(), diff_epoch_lists())
    @settings(max_examples=20, deadline=None)
    def test_matches_batch_join(self, left_epochs, right_epochs):
        n = max(len(left_epochs), len(right_epochs))
        left_epochs += [[]] * (n - len(left_epochs))
        right_epochs += [[]] * (n - len(right_epochs))

        comp = Computation()
        a, b = comp.new_input(), comp.new_input()
        live = {}
        ca, cb = Collection(Stream.from_input(a)), Collection(Stream.from_input(b))
        ca.join(
            cb, lambda x: x % 3, lambda y: y % 3, lambda x, y: (x, y)
        ).accumulate_into(live)
        comp.build()
        for lhs, rhs in zip(left_epochs, right_epochs):
            a.on_next(lhs)
            b.on_next(rhs)
        a.on_completed()
        b.on_completed()
        comp.run()

        left_acc = accumulate_input(left_epochs)
        right_acc = accumulate_input(right_epochs)
        expected = Counter()
        for x, mx in left_acc.items():
            for y, my in right_acc.items():
                if x % 3 == y % 3:
                    expected[(x, y)] += mx * my
        assert live == +expected


class TestLinearOperators:
    def test_map_carries_diffs(self):
        live = run_collection(
            lambda c: c.map(lambda r: r * 10), [[(1, 1), (2, -1)], [(2, 1)]]
        )
        assert live == {10: 1}

    def test_filter(self):
        live = run_collection(
            lambda c: c.filter(lambda r: r % 2 == 0), [[(1, 1), (2, 1)]]
        )
        assert live == {2: 1}

    def test_flat_map(self):
        live = run_collection(
            lambda c: c.flat_map(lambda r: [r, r + 100]), [[(1, 1)]]
        )
        assert live == {1: 1, 101: 1}

    def test_concat_and_negate(self):
        comp = Computation()
        a, b = comp.new_input(), comp.new_input()
        live = {}
        ca, cb = Collection(Stream.from_input(a)), Collection(Stream.from_input(b))
        ca.concat(cb.negate()).accumulate_into(live)
        comp.build()
        a.on_next([(1, 1), (2, 1)])
        b.on_next([(2, 1)])
        a.on_completed()
        b.on_completed()
        comp.run()
        assert live == {1: 1}


class TestUnionFind:
    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)),
            min_size=1,
            max_size=20,
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx_components(self, edges, num_epochs):
        chunks = [edges[i::num_epochs] for i in range(num_epochs)]
        live = run_collection(
            lambda c: c.connected_components(),
            [[(e, 1) for e in chunk] for chunk in chunks],
        )
        g = nx.Graph(edges)
        expected = {}
        for component in nx.connected_components(g):
            label = min(component)
            for node in component:
                expected[(node, label)] = 1
        assert live == expected

    def test_deletion_rejected(self):
        with pytest.raises(ValueError):
            run_collection(
                lambda c: c.connected_components(), [[((1, 2), -1)]]
            )

    def test_windowed_cc_matches_networkx_with_deletions(self):
        # Sliding window: edges enter and leave; the live labels must
        # always equal a batch recomputation over the surviving edges.
        window = [
            [((1, 2), 1), ((3, 4), 1)],
            [((2, 3), 1)],           # merge everything
            [((2, 3), -1)],          # split again
            [((1, 2), -1), ((5, 1), 1)],
        ]
        comp = Computation()
        inp = comp.new_input()
        live = {}
        Collection(Stream.from_input(inp)).connected_components(
            allow_deletions=True
        ).accumulate_into(live)
        comp.build()
        edges = Counter()
        for diffs in window:
            inp.on_next(diffs)
            comp.run()
            for edge, m in diffs:
                edges[edge] += m
            g = nx.Graph(list(+edges))
            expected = {}
            for component in nx.connected_components(g):
                label = min(component)
                for node in component:
                    expected[(node, label)] = 1
            assert live == expected, (diffs, live, expected)
        inp.on_completed()
        comp.run()
        assert comp.drained()

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=1, max_size=16
        ),
        st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_windowed_cc_random_add_remove(self, edge_pool, seed):
        import random

        rng = random.Random(seed)
        comp = Computation()
        inp = comp.new_input()
        live = {}
        Collection(Stream.from_input(inp)).connected_components(
            allow_deletions=True
        ).accumulate_into(live)
        comp.build()
        present = Counter()
        for _ in range(4):
            diffs = []
            for edge in edge_pool:
                if present[edge] and rng.random() < 0.4:
                    diffs.append((edge, -1))
                    present[edge] -= 1
                elif rng.random() < 0.5:
                    diffs.append((edge, 1))
                    present[edge] += 1
            inp.on_next(diffs)
        inp.on_completed()
        comp.run()
        assert comp.drained()
        g = nx.Graph(list(+present))
        expected = {}
        for component in nx.connected_components(g):
            label = min(component)
            for node in component:
                expected[(node, label)] = 1
        assert live == expected

    def test_windowed_cc_over_retraction_raises(self):
        with pytest.raises(ValueError):
            run_collection(
                lambda c: c.connected_components(allow_deletions=True),
                [[((1, 2), -1)]],
            )

    def test_incremental_merging_emits_relabels(self):
        comp = Computation()
        inp = comp.new_input()
        per_epoch = {}
        Collection(Stream.from_input(inp)).connected_components().subscribe(
            lambda t, diffs: per_epoch.setdefault(t.epoch, []).extend(diffs)
        )
        comp.build()
        inp.on_next([((5, 6), 1)])
        inp.on_next([((1, 5), 1)])
        inp.on_completed()
        comp.run()
        assert sorted(per_epoch[0]) == [((5, 5), 1), ((6, 5), 1)]
        # Epoch 1: node 1 appears, and 5/6 relabel from 5 to 1.
        assert dict(per_epoch[1]) == {
            (1, 1): 1,
            (5, 5): -1,
            (5, 1): 1,
            (6, 5): -1,
            (6, 1): 1,
        }
