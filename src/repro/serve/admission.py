"""Admission control for the serving layer (`repro.serve`).

Protects the update path from query bursts: when the outstanding-query
depth or the publish-frontier lag stays beyond its threshold, the
controller *degrades* fresh queries to ``stale(degrade_bound)`` (they
stop riding the dataflow and read the newest compacted snapshot), and
under sustained overload it *sheds* (rejects) new queries outright.
Signals feed the same :class:`~repro.runtime.rescale.Hysteresis`
machinery the :class:`~repro.runtime.rescale.Autoscaler` uses, plus a
virtual-time cooldown, so one burst sample never flips the mode and
recovery is sticky rather than oscillating.

The controller is evaluated synchronously at submit time (no sampler
thread): every ``submit()`` updates the detectors with the current
depth and lag, so the mode tracks the offered load exactly as fast as
queries arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, NamedTuple, Optional

from ..runtime.rescale import Hysteresis


class AdmissionVerdict(NamedTuple):
    #: "admit" | "degrade" | "reject"
    action: str
    #: Staleness bound applied when ``action == "degrade"``.
    bound: Optional[int]


@dataclass
class AdmissionPolicy:
    """Thresholds and pacing for serving-layer admission control.

    Depth thresholds count outstanding queries (submitted, not yet
    answered or rejected); lag thresholds count epochs the slowest
    arrangement trails the injected input frontier.
    """

    #: Degrade fresh -> stale once depth sustains at or above this.
    degrade_depth: int = 64
    #: Reject once depth sustains at or above this (> degrade_depth).
    shed_depth: int = 256
    #: Leave degrade/shed once depth sustains at or below this.
    recover_depth: int = 16
    #: Degrade once the publish frontier sustains this many epochs behind.
    lag_degrade: int = 8
    #: Lag recovery watermark (< lag_degrade).
    lag_recover: int = 2
    #: Consecutive out-of-band submissions before changing mode.
    sustain: int = 3
    #: Virtual time a new mode is held before de-escalation is allowed.
    cooldown: float = 0.002
    #: Bound (epochs) granted to degraded fresh queries.
    degrade_bound: int = 8

    def validate(self) -> None:
        if not (self.recover_depth < self.degrade_depth < self.shed_depth):
            raise ValueError(
                "AdmissionPolicy depths must order recover (%r) < degrade "
                "(%r) < shed (%r)"
                % (self.recover_depth, self.degrade_depth, self.shed_depth)
            )
        if self.lag_recover >= self.lag_degrade:
            raise ValueError(
                "AdmissionPolicy.lag_recover (%r) must be below lag_degrade (%r)"
                % (self.lag_recover, self.lag_degrade)
            )
        if self.degrade_bound < 0:
            raise ValueError(
                "AdmissionPolicy.degrade_bound must be >= 0 (got %r)"
                % (self.degrade_bound,)
            )


class AdmissionController:
    """Depth- and staleness-driven degrade/shed state machine.

    Modes escalate ``normal -> degrade -> shed`` on sustained high
    signals and de-escalate one step at a time on sustained low signals
    after the cooldown.  In ``degrade`` mode fresh queries are served as
    ``stale(degrade_bound)``; in ``shed`` mode new queries are rejected.
    Stale-class queries are never degraded (they are already off the
    update path) but are shed like any other under full overload.
    """

    def __init__(self, manager, policy: Optional[AdmissionPolicy] = None):
        self.manager = manager
        self.policy = policy or AdmissionPolicy()
        self.policy.validate()
        p = self.policy
        self._depth_degrade = Hysteresis(p.degrade_depth, p.recover_depth, p.sustain)
        self._depth_shed = Hysteresis(p.shed_depth, p.recover_depth, p.sustain)
        self._lag = Hysteresis(p.lag_degrade, p.lag_recover, p.sustain)
        self.mode = "normal"
        self._mode_since = 0.0
        #: One dict per mode transition: kind, at, depth, lag.
        self.transitions: List[Dict[str, Any]] = []
        self.admitted = 0
        self.degraded = 0
        self.shed = 0

    def _set_mode(self, mode: str, now: float, depth: int, lag: int) -> None:
        if mode == self.mode:
            return
        self.transitions.append(
            {"mode": mode, "from": self.mode, "at": now, "depth": depth, "lag": lag}
        )
        self.mode = mode
        self._mode_since = now

    def decide(self, session) -> AdmissionVerdict:
        """Update the detectors with the current load and classify one
        submission under the (possibly newly changed) mode."""
        manager = self.manager
        now = manager.now
        depth = manager.outstanding
        lag = manager.staleness_lag()
        shed_signal = self._depth_shed.update(depth)
        degrade_signal = self._depth_degrade.update(depth)
        lag_signal = self._lag.update(lag)

        if shed_signal == "high" and self.mode != "shed":
            self._set_mode("shed", now, depth, lag)
            self._depth_shed.acknowledge("high")
        elif (
            (degrade_signal == "high" or lag_signal == "high")
            and self.mode == "normal"
        ):
            self._set_mode("degrade", now, depth, lag)
            self._depth_degrade.acknowledge("high")
            self._lag.acknowledge("high")
        elif (
            self.mode != "normal"
            and degrade_signal == "low"
            and lag_signal != "high"
            and now >= self._mode_since + self.policy.cooldown
        ):
            # De-escalate one step at a time: shed -> degrade -> normal.
            self._set_mode(
                "degrade" if self.mode == "shed" else "normal", now, depth, lag
            )
            self._depth_degrade.acknowledge("low")
            self._depth_shed.acknowledge("low")

        if self.mode == "shed":
            self.shed += 1
            return AdmissionVerdict("reject", None)
        if self.mode == "degrade" and session.slo == "fresh":
            self.degraded += 1
            return AdmissionVerdict("degrade", self.policy.degrade_bound)
        self.admitted += 1
        return AdmissionVerdict("admit", None)

    def __repr__(self) -> str:
        return "AdmissionController(mode=%r, %d admitted, %d degraded, %d shed)" % (
            self.mode, self.admitted, self.degraded, self.shed,
        )
