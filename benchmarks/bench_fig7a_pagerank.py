"""Figure 7a: PageRank per-iteration time on a social graph.

The paper compares per-iteration PageRank times on the Twitter follower
graph for PowerGraph (published numbers) and three Naiad variants,
finding (top to bottom in the figure):

    Naiad Pregel  >  Naiad Vertex  >  PowerGraph  >  Naiad Edge

The Pregel port pays for its abstraction (graph mutation support,
message boxing); the Vertex variant is the plain source-partitioned
matvec; the Edge variant partitions edges on a space-filling curve —
approximating PowerGraph's vertex cut — and aggregates partial sums per
edge block before the exchange, beating PowerGraph.

Reproduction: a scaled power-law graph, virtual per-iteration times on
an 8-computer simulated cluster, PowerGraph from the GAS engine.  The
Pregel stage carries a calibrated per-record overhead multiplier for
the abstraction costs the paper describes.
"""

from repro.lib import Stream
from repro.algorithms import pagerank_edge, pagerank_pregel, pagerank_vertex
from repro.baselines import PowerGraphEngine
from repro.runtime import ClusterComputation
from repro.workloads import power_law_graph

from bench_harness import format_table, human_time, report

COMPUTERS = 8
ITERATIONS = 8
GRAPH = power_law_graph(1500, edges_per_node=6, seed=5)

#: Pregel's NodeContext construction, vote bookkeeping and mutation
#: support cost roughly 2x the raw vertex path per record (measured on
#: this implementation's Python hot path, and consistent with the gap
#: the paper shows).
PREGEL_OVERHEAD = 2.0


def run_variant(builder, pregel_stage_names=()):
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=1,
        progress_mode="local+global",
    )
    inp = comp.new_input()
    builder(Stream.from_input(inp)).subscribe(lambda t, recs: None)
    for stage in comp.graph.stages:
        if stage.name in pregel_stage_names:
            comp.set_stage_cost(
                stage, comp.cost_model.per_record_cost * PREGEL_OVERHEAD
            )
    comp.build()
    inp.on_next(GRAPH)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return comp.now / ITERATIONS


def test_fig7a_pagerank_variants(benchmark):
    def experiment():
        results = {
            "Naiad Vertex": run_variant(
                lambda s: pagerank_vertex(s, iterations=ITERATIONS)
            ),
            "Naiad Pregel": run_variant(
                lambda s: pagerank_pregel(s, iterations=ITERATIONS),
                pregel_stage_names=("pagerank_pregel",),
            ),
            "Naiad Edge": run_variant(
                lambda s: pagerank_edge(s, iterations=ITERATIONS)
            ),
        }
        engine = PowerGraphEngine(num_machines=COMPUTERS)
        engine.pagerank(GRAPH, iterations=ITERATIONS)
        results["PowerGraph"] = engine.elapsed / (ITERATIONS - 1)
        results["_replication"] = engine.replication_factor()
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    replication = results.pop("_replication")

    order = ["Naiad Pregel", "Naiad Vertex", "PowerGraph", "Naiad Edge"]
    report(
        "fig7a_pagerank",
        format_table(
            ["variant", "time/iteration"],
            [(name, human_time(results[name])) for name in order],
        )
        + ["", "PowerGraph replication factor: %.2f" % replication],
    )

    # The figure's vertical ordering.
    assert (
        results["Naiad Pregel"]
        > results["Naiad Vertex"]
        > results["Naiad Edge"]
    )
    assert results["PowerGraph"] > results["Naiad Edge"]
    # All variants are within two orders of magnitude (same figure).
    assert results["Naiad Pregel"] / results["Naiad Edge"] < 100
