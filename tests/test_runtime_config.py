"""Tests for cluster runtime configuration knobs."""

import pytest

from repro.lib import Stream
from repro.runtime import (
    ClusterComputation,
    CostModel,
    FaultTolerance,
    SyntheticRecords,
    batch_bytes,
    record_count,
)


def run_wordcount(**kwargs):
    comp = ClusterComputation(num_processes=2, workers_per_process=2, **kwargs)
    inp = comp.new_input()
    out = []
    (
        Stream.from_input(inp)
        .select_many(str.split)
        .count_by(lambda w: w)
        .subscribe(lambda t, recs: out.extend(recs))
    )
    comp.build()
    inp.on_next(["a b c d" * 20] * 10)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return comp, out


class TestCostModel:
    def test_higher_per_record_cost_slows_execution(self):
        fast, _ = run_wordcount(cost_model=CostModel(per_record_cost=100e-9))
        slow, _ = run_wordcount(cost_model=CostModel(per_record_cost=10e-6))
        assert slow.now > fast.now

    def test_stage_cost_override(self):
        comp = ClusterComputation(2, 1)
        inp = comp.new_input()
        stream = Stream.from_input(inp).select(lambda x: x)
        stream.subscribe(lambda t, r: None)
        target = stream.stage
        comp.set_stage_cost(target, 1e-3)
        assert comp.stage_record_cost(target) == 1e-3
        other = comp.graph.stages[0]
        assert comp.stage_record_cost(other) == comp.cost_model.per_record_cost

    def test_synthetic_record_accounting(self):
        records = [SyntheticRecords(1000, 8), "plain", SyntheticRecords(5, 100)]
        assert record_count(records) == 1006
        assert batch_bytes(records, default_record_bytes=16) == 8000 + 16 + 500

    def test_wire_bytes_attribute_respected(self):
        class Payload:
            wire_bytes = 4096

        assert batch_bytes([Payload()], default_record_bytes=8) == 4096


class TestFaultTolerancePolicies:
    def test_logging_slows_execution(self):
        plain, out_a = run_wordcount()
        logged, out_b = run_wordcount(
            fault_tolerance=FaultTolerance(
                mode="logging", disk_bandwidth=10e6, log_bytes_per_batch=4096
            )
        )
        assert logged.now > plain.now
        assert sorted(out_a) == sorted(out_b)

    def test_checkpoint_pause_injected(self):
        plain, _ = run_wordcount()
        checked, _ = run_wordcount(
            fault_tolerance=FaultTolerance(
                mode="checkpoint",
                checkpoint_every=1,
                state_bytes_per_worker=10 << 20,
                disk_bandwidth=100e6,
            )
        )
        # The single input epoch forces one ~100 ms checkpoint pause.
        assert checked.now > plain.now + 0.09

    def test_cluster_checkpoint_api_matches_reference_runtime(self):
        # checkpoint() -> snapshot dict and restore(snapshot) -> None,
        # the same signatures as repro.core.Computation.
        comp, out = run_wordcount()
        snapshot = comp.checkpoint()
        for key in ("vertices", "occurrence", "pending", "epochs"):
            assert key in snapshot
        before = sorted(out)
        comp.restore(snapshot)
        comp.run()
        # The snapshot covered the fully drained run: nothing replays,
        # no output is duplicated, and the cluster drains again.
        assert comp.drained()
        assert sorted(out) == before


class TestDeterminism:
    def test_same_seed_same_virtual_time(self):
        a, _ = run_wordcount(seed=5)
        b, _ = run_wordcount(seed=5)
        assert a.now == b.now
        assert (
            a.network.stats.bytes_by_kind == b.network.stats.bytes_by_kind
        )

    def test_debug_state_mentions_pending_work(self):
        comp = ClusterComputation(2, 1)
        inp = comp.new_input()
        Stream.from_input(inp).count_by(lambda x: x).subscribe(lambda t, r: None)
        comp.build()
        inp.on_next([1, 2, 3])
        comp.run(max_steps=3)  # stop midway
        text = comp.debug_state()
        assert "t=" in text
        inp.on_completed()
        comp.run()
        assert comp.drained()

    def test_max_events_spelling_is_deprecated_but_works(self):
        comp = ClusterComputation(2, 1)
        inp = comp.new_input()
        Stream.from_input(inp).count_by(lambda x: x).subscribe(lambda t, r: None)
        comp.build()
        inp.on_next([1, 2, 3])
        with pytest.warns(DeprecationWarning, match="max_steps"):
            comp.run(max_events=3)
        inp.on_completed()
        comp.run()
        assert comp.drained()
