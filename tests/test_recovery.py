"""Failure recovery on the simulated cluster (paper section 3.4).

The load-bearing property is DESIGN.md invariant 5, now enforced on the
distributed runtime: a checkpoint-failure-restore cycle is invisible in
the outputs.  A run that loses a whole process at a random virtual time
must release exactly the same epoch-by-epoch output multisets as a run
with no failure — for every fault-tolerance mode (``none`` replays the
input journal from scratch, ``checkpoint`` rolls back to the last
periodic checkpoint, ``logging`` additionally pays for and reads the
message log), for both recovery placements (restart the process, or
reassign its workers across survivors), across cluster shapes, on
fixed and randomized dataflow graphs.
"""

import random
from collections import Counter

import pytest

from repro.lib import Stream
from repro.runtime import ClusterComputation, FaultTolerance
from repro.sim import NetworkConfig

FT_MODES = ["none", "checkpoint", "logging"]
SHAPES = [(2, 2), (4, 1)]


def make_ft(mode, policy="restart"):
    return FaultTolerance(
        mode=mode,
        checkpoint_every=2,
        state_bytes_per_worker=1 << 20,
        disk_bandwidth=200e6,
        recovery=policy,
        restart_delay=0.02,
    )


def collect_per_epoch(out):
    def callback(t, recs):
        out.setdefault(t.epoch, Counter()).update(recs)

    return callback


# ----------------------------------------------------------------------
# Programs: two fixed shapes (keyed aggregation, a loop) plus randomized
# operator chains, all deterministic for a given seed.
# ----------------------------------------------------------------------


def wordcount_program(comp):
    inp = comp.new_input("lines")
    out = {}
    (
        Stream.from_input(inp)
        .select_many(str.split)
        .count_by(lambda w: w)
        .subscribe(collect_per_epoch(out))
    )
    return inp, out


WORDCOUNT_EPOCHS = [
    ["a b a c", "d d"],
    ["b b b"],
    [],
    ["a c d e f g"],
    ["a a e"],
    ["f g f"],
]


def iterate_program(comp):
    inp = comp.new_input()
    out = {}
    (
        Stream.from_input(inp)
        .iterate(
            lambda s: s.select(lambda x: x - 1).where(lambda x: x > 0),
            partitioner=lambda x: x,
        )
        .subscribe(collect_per_epoch(out))
    )
    return inp, out


ITERATE_EPOCHS = [list(range(8)), [3, 3, 12], [5, 1]]


def random_case(seed):
    """A random keyed operator chain and input, fixed by ``seed``."""
    rng = random.Random(seed)
    ops = [
        (rng.choice(["select", "where", "count_by"]), rng.randint(1, 7))
        for _ in range(rng.randint(2, 4))
    ]
    epochs = [
        [rng.randint(0, 50) for _ in range(rng.randint(3, 12))]
        for _ in range(rng.randint(3, 6))
    ]

    def program(comp):
        inp = comp.new_input()
        out = {}
        s = Stream.from_input(inp)
        for kind, k in ops:
            if kind == "select":
                s = s.select(lambda x, k=k: x + k if isinstance(x, int) else x)
            elif kind == "where":
                s = s.where(
                    lambda x, k=k: not isinstance(x, int) or x % 3 != k % 3
                )
            else:
                # Only ints and tuples of ints flow here, so hash() is
                # deterministic across processes and runs.
                s = s.count_by(lambda x, k=k: hash(x) % k)
        s.subscribe(collect_per_epoch(out))
        return inp, out

    return program, epochs


CASES = {
    "wordcount": (wordcount_program, WORDCOUNT_EPOCHS),
    "iterate": (iterate_program, ITERATE_EPOCHS),
    "random-a": random_case(101),
    "random-b": random_case(202),
}


def run_cluster(
    case, shape, ft=None, kill=None, crash=None, supervise=None,
    autoscale=None, network=None, seed=0, trace=None, rescale=None,
    partitions=None, epochs=None, **kwargs
):
    program, case_epochs = CASES[case]
    epochs = case_epochs if epochs is None else epochs
    procs, wpp = shape
    comp = ClusterComputation(
        num_processes=procs,
        workers_per_process=wpp,
        fault_tolerance=ft,
        network=network,
        seed=seed,
        **kwargs
    )
    if trace is not None:
        comp.attach_trace_sink(trace)
    inp, out = program(comp)
    comp.build()
    autoscaler = None
    if autoscale is not None:
        from repro.obs import TraceSink
        from repro.runtime import Autoscaler

        autoscaler = Autoscaler(
            comp, trace if trace is not None else TraceSink(), autoscale
        ).start()
    if supervise is not None:
        comp.attach_supervisor(
            None if supervise is True else supervise, autoscaler=autoscaler
        )
    for op in rescale or ():
        if op[0] == "add":
            comp.add_process(at=op[1])
        else:
            comp.remove_process(op[1], at=op[2])
    if kill is not None:
        process, at = kill
        comp.kill_process(process, at=at)
    for process, at in crash or ():
        comp.crash_process(process, at=at)
    for spec in partitions or ():
        comp.network.partition(**spec)
    for epoch in epochs:
        inp.on_next(epoch)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return out, comp


def baseline_epochs(case, shape, epochs):
    """Like :func:`baseline` but for a custom (extended) input."""
    out, comp = run_cluster(case, shape, epochs=epochs)
    return out, comp.now


_baselines = {}


def baseline(case, shape):
    """Per-epoch outputs and duration of the no-failure run (cached)."""
    key = (case, shape)
    if key not in _baselines:
        out, comp = run_cluster(case, shape)
        _baselines[key] = (out, comp.now)
    return _baselines[key]


class TestInvariant5:
    """Epoch-by-epoch outputs survive a random process kill unchanged."""

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("mode", FT_MODES)
    def test_kill_and_recover_matches_unfailed_run(self, case, shape, mode):
        expected, duration = baseline(case, shape)
        rng = random.Random(
            1000 * FT_MODES.index(mode)
            + 100 * SHAPES.index(shape)
            + sorted(CASES).index(case)
        )
        process = rng.randrange(shape[0])
        kill_at = duration * rng.uniform(0.1, 0.9)
        out, comp = run_cluster(
            case, shape, ft=make_ft(mode), kill=(process, kill_at)
        )
        assert out == expected
        assert len(comp.recovery.failures) == 1
        failure = comp.recovery.failures[0]
        assert failure["process"] == process
        assert failure["ready"] >= failure["at"]

    @pytest.mark.parametrize("mode", FT_MODES)
    def test_reassign_policy_matches_unfailed_run(self, mode):
        shape = (3, 2)
        expected, _ = baseline("wordcount", shape)
        out, comp = run_cluster(
            "wordcount",
            shape,
            ft=make_ft(mode, policy="reassign"),
            kill=(1, 0.002),
        )
        assert out == expected
        assert comp.recovery.dead_processes == {1}
        # Every reassigned worker now lives on a survivor.
        assert all(w.process != 1 for w in comp.workers)


class TestRecoveryMechanics:
    def test_checkpoint_bounds_replay(self):
        # With periodic checkpoints a late failure rolls back to a
        # mid-run snapshot; without them it replays the whole journal.
        _, duration = baseline("wordcount", (2, 2))
        kill = (1, duration * 0.95)
        _, with_ckpt = run_cluster(
            "wordcount", (2, 2), ft=make_ft("checkpoint"), kill=kill
        )
        _, without = run_cluster("wordcount", (2, 2), ft=make_ft("none"), kill=kill)
        ckpt_failure = with_ckpt.recovery.failures[0]
        none_failure = without.recovery.failures[0]
        assert ckpt_failure["restored_from"] > 0.0
        assert none_failure["restored_from"] == 0.0
        assert ckpt_failure["replayed_entries"] < none_failure["replayed_entries"]

    def test_multiple_failures(self):
        expected, duration = baseline("iterate", (4, 1))
        out, comp = run_cluster(
            "iterate", (4, 1), ft=make_ft("checkpoint"), kill=(0, duration * 0.3)
        )
        assert out == expected  # smoke: single kill of the controller
        out, comp = run_cluster(
            "iterate", (4, 1), ft=make_ft("checkpoint"), kill=(2, duration * 0.2)
        )
        comp2 = comp
        # Second scenario: two distinct processes die at different times.
        program, epochs = CASES["iterate"]
        comp = ClusterComputation(
            num_processes=4, workers_per_process=1, fault_tolerance=make_ft("checkpoint")
        )
        inp, out = program(comp)
        comp.build()
        comp.kill_process(1, at=duration * 0.25)
        comp.kill_process(3, at=duration * 0.8)
        for epoch in epochs:
            inp.on_next(epoch)
        inp.on_completed()
        comp.run()
        assert comp.drained(), comp.debug_state()
        assert out == expected
        assert [f["process"] for f in comp.recovery.failures] == [1, 3]

    def test_kill_central_accumulator_host(self):
        # Process 0 hosts the controller and the central accumulator;
        # killing it must still recover.
        program, epochs = CASES["wordcount"]
        expected, duration = baseline("wordcount", (2, 2))
        out, comp = run_cluster(
            "wordcount",
            (2, 2),
            ft=make_ft("checkpoint"),
            kill=(0, duration * 0.5),
            progress_mode="local+global",
        )
        assert out == expected

    def test_recovery_under_hostile_network(self):
        expected, duration = baseline("iterate", (2, 2))
        out, comp = run_cluster(
            "iterate",
            (2, 2),
            ft=make_ft("logging"),
            kill=(1, duration * 0.4),
            network=NetworkConfig(
                packet_loss_probability=0.2,
                retransmit_timeout=2e-3,
                gc_interval=1e-3,
                gc_pause=2e-3,
            ),
            seed=7,
        )
        assert out == expected

    def test_manual_checkpoint_restore_roundtrip(self):
        expected, _ = baseline("wordcount", (2, 2))
        program, epochs = CASES["wordcount"]
        comp = ClusterComputation(num_processes=2, workers_per_process=2)
        inp, out = program(comp)
        comp.build()
        for epoch in epochs[:3]:
            inp.on_next(epoch)
        comp.run()
        snapshot = comp.checkpoint()
        assert snapshot["journal_released"] == 3
        for epoch in epochs[3:]:
            inp.on_next(epoch)
        inp.on_completed()
        comp.run()
        assert out == expected
        # Roll back and replay: the journal suffix re-executes, released
        # outputs are suppressed, and the outputs remain exactly-once.
        comp.restore(snapshot)
        comp.run()
        assert comp.drained(), comp.debug_state()
        assert out == expected

    def test_recovery_before_any_checkpoint(self):
        # A kill before the first periodic checkpoint rolls back to the
        # built state and replays everything.
        expected, _ = baseline("wordcount", (2, 2))
        ft = make_ft("checkpoint")
        ft.checkpoint_every = 1000
        out, comp = run_cluster("wordcount", (2, 2), ft=ft, kill=(1, 1e-5))
        assert out == expected
        assert comp.recovery.failures[0]["restored_from"] == 0.0

    def test_debug_state_reports_fault_tolerance(self):
        _, duration = baseline("wordcount", (2, 2))
        _, comp = run_cluster(
            "wordcount", (2, 2), ft=make_ft("logging"), kill=(1, duration * 0.5)
        )
        text = comp.debug_state()
        assert "fault-tolerance: mode=logging" in text
        assert "checkpoints=" in text
        assert "failure: process 1" in text
        assert "message log:" in text

    def test_kill_validates_process_index(self):
        comp = ClusterComputation(num_processes=2, workers_per_process=1)
        comp.new_input()
        with pytest.raises(RuntimeError):
            comp.kill_process(0)  # not built yet
        comp.build()
        with pytest.raises(ValueError):
            comp.kill_process(5)

    def test_control_api_rejects_reentrant_calls(self):
        # checkpoint()/restore()/kill_process() re-run the event loop;
        # calling them from inside a vertex callback must fail cleanly
        # instead of corrupting the clock.
        comp = ClusterComputation(num_processes=2, workers_per_process=1)
        inp = comp.new_input()
        errors = []

        def reenter(t, recs):
            for call in (
                comp.checkpoint,
                lambda: comp.restore(comp.recovery.initial),
                lambda: comp.kill_process(0),
            ):
                with pytest.raises(RuntimeError, match="vertex callback"):
                    call()
                errors.append(call)

        Stream.from_input(inp).count_by(lambda x: x).subscribe(reenter)
        comp.build()
        inp.on_next([1, 2])
        inp.on_completed()
        comp.run()
        assert comp.drained()
        # The subscription fires once per worker; each firing must have
        # exercised all three guarded calls.
        assert len(errors) >= 3 and len(errors) % 3 == 0
