"""Weakly connected components (sections 5.3, 5.4, 6.1, Table 1).

The Naiad WCC implementation is asynchronous min-label propagation: each
node's label only ever decreases, improvements are forwarded to
neighbours immediately from ``on_recv`` (no coordination — the
uncoordinated-iteration style section 2.4 advocates), and the loop
drains when no label can improve.  This "does less work but takes more,
sparser iterations" — exactly the trade the paper says in-memory state
makes profitable (Table 1 discussion).

The per-epoch graph is the set of edges supplied in that epoch; for
continuously-growing graphs use
:meth:`repro.lib.incremental.Collection.connected_components`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..columnar import INT64_PAIR, PairSink
from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from ..lib.stream import Stream, hash_partitioner
from ..opt.plan import OpSpec


class MinLabelVertex(Vertex):
    """Asynchronous label propagation.

    Input 0: directed adjacency arcs ``(node, neighbour)`` (send both
    orientations for an undirected graph), partitioned by ``node``.
    Input 1: label proposals ``(node, label)`` from the feedback edge.
    Output 0: proposals to neighbours (feeds back).
    Output 1: label improvements ``(node, label)``; the minimum per node
    over the epoch is the component label.
    """

    notifies = False

    def __init__(self):
        super().__init__()
        #: epoch -> (adjacency, labels)
        self.state: Dict[int, Tuple[Dict[Any, List[Any]], Dict[Any, Any]]] = {}

    def _epoch_state(self, timestamp: Timestamp):
        state = self.state.get(timestamp.epoch)
        if state is None:
            state = self.state[timestamp.epoch] = ({}, {})
        return state

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        adjacency, labels = self._epoch_state(timestamp)
        proposals: List[Tuple[Any, Any]] = []
        improvements: List[Tuple[Any, Any]] = []
        if input_port == 0:
            for node, neighbour in records:
                edges = adjacency.get(node)
                if edges is None:
                    edges = adjacency[node] = []
                    labels[node] = node
                    improvements.append((node, node))
                edges.append(neighbour)
                # Labels flow strictly along the arc: offer this node's
                # label to the neighbour (whose own label is at most its
                # id, so only smaller labels can matter).
                label = labels[node]
                if label < neighbour:
                    proposals.append((neighbour, label))
        else:
            for node, label in records:
                current = labels.get(node)
                if current is None:
                    labels[node] = label
                    adjacency[node] = []
                    improvements.append((node, label))
                elif label < current:
                    labels[node] = label
                    improvements.append((node, label))
                    proposals.extend((other, label) for other in adjacency[node])
        if proposals:
            self.send_by(0, proposals, timestamp)
        if improvements:
            self.send_by(1, improvements, timestamp)

    def on_recv_batch(self, input_port: int, batch: Any, timestamp: Timestamp) -> None:
        """Columnar kernel: same propagation, straight off the columns.

        Mirrors :meth:`on_recv` decision-for-decision (state mutation
        order, emission order), reading node/label pairs from the
        batch's int64 columns and emitting proposals/improvements
        through :class:`~repro.columnar.PairSink` — so the loop body
        allocates arrays, not per-record tuples.
        """
        if batch.schema != INT64_PAIR:
            return Vertex.on_recv_batch(self, input_port, batch, timestamp)
        adjacency, labels = self._epoch_state(timestamp)
        proposals = PairSink()
        improvements = PairSink()
        left, right = batch.columns
        if input_port == 0:
            for node, neighbour in zip(left, right):
                edges = adjacency.get(node)
                if edges is None:
                    edges = adjacency[node] = []
                    labels[node] = node
                    improvements.emit(node, node)
                edges.append(neighbour)
                label = labels[node]
                if label < neighbour:
                    proposals.emit(neighbour, label)
        else:
            for node, label in zip(left, right):
                current = labels.get(node)
                if current is None:
                    labels[node] = label
                    adjacency[node] = []
                    improvements.emit(node, label)
                elif label < current:
                    labels[node] = label
                    improvements.emit(node, label)
                    for other in adjacency[node]:
                        proposals.emit(other, label)
        out = proposals.payload()
        if out is not None:
            self.send_by(0, out, timestamp)
        out = improvements.payload()
        if out is not None:
            self.send_by(1, out, timestamp)


def weakly_connected_components(
    edges: Stream,
    max_iterations: Optional[int] = None,
    name: str = "wcc",
) -> Stream:
    """Component labels ``(node, label)`` per epoch of undirected edges.

    ``label`` is the smallest node id in the component.
    """
    arcs = edges.select_many(
        lambda edge: [(edge[0], edge[1]), (edge[1], edge[0])],
        name="%s.arcs" % name,
        schema=INT64_PAIR,
    )
    labels = label_propagation(arcs, max_iterations=max_iterations, name=name)
    return labels.aggregate_by(
        lambda rec: rec[0],
        lambda rec: rec[1],
        min,
        name="%s.final" % name,
        key_col=0,
        value_col=1,
        schema=INT64_PAIR,
    )


def label_propagation(
    arcs: Stream,
    max_iterations: Optional[int] = None,
    name: str = "minlabel",
) -> Stream:
    """Raw min-label propagation over directed arcs.

    Returns the stream of label improvements (an over-approximation of
    the final labels — reduce with min per node).  Used directly by the
    SCC implementation, which propagates along one direction only.
    """
    computation = arcs.computation
    with computation.scope(name, max_iterations=max_iterations, parent=arcs.context) as scope:
        stage = scope.stage(name, lambda s, w: MinLabelVertex(), 2, 2)
        # Label propagation is monotone (labels only decrease) and
        # processes records one at a time, so merging adjacent
        # deliveries of arcs or proposals cannot change the labels it
        # settles on — declare it batchable so the optimizer's
        # coalescing pass can collapse the proposal fan-in, the
        # dominant source of DES events in the loop.
        stage.opspec = OpSpec(
            "minlabel", fusable=False, batchable=True, schema=INT64_PAIR
        )
        scope.enter(arcs).connect_to(
            stage, 0, partitioner=hash_partitioner(lambda arc: arc[0], key_col=0)
        )
        scope.feed(Stream(computation, stage, 0))
        scope.feedback.connect_to(
            stage, 1, partitioner=hash_partitioner(lambda rec: rec[0], key_col=0)
        )
        out = scope.leave_with(Stream(computation, stage, 1))
    return out


def wcc_oracle(edges: List[Tuple[Any, Any]]) -> Dict[Any, Any]:
    """Reference answer: min-id component labels via union-find."""
    parent: Dict[Any, Any] = {}

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for u, v in edges:
        for node in (u, v):
            if node not in parent:
                parent[node] = node
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return {node: find(node) for node in parent}
