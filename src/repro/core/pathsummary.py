"""Path summaries and the could-result-in relation (paper section 2.3).

Messages flowing along a dataflow path have their timestamps adjusted by
the ingress, egress and feedback vertices on that path.  The net effect of
any path can be summarised canonically: some suffix of the source's loop
counters is discarded (by egress vertices), the deepest surviving counter
is incremented some number of times (by feedback vertices at that depth),
and a tuple of constant counters is appended (by ingress vertices, whose
pushed zeroes may themselves be incremented by deeper feedback vertices).

:class:`PathSummary` captures exactly this normal form::

    summary = (keep, delta, append)
    summary(e, <c_1, ..., c_k>) = (e, <c_1, ..., c_{keep-1}, c_keep + delta> + append)

Summaries compose associatively, and are partially ordered pointwise:
``s1 <= s2`` iff ``s1(t) <= s2(t)`` for every timestamp ``t``.  The paper
notes that for the restricted loop structure of timely dataflow graphs one
path summary between two locations always dominates; we are slightly more
general and maintain an :class:`Antichain` of minimal summaries per
location pair, which is both robust and sufficient to evaluate
could-result-in.

:func:`minimal_summaries` runs the "straightforward graph propagation
algorithm" of section 2.3: an all-pairs shortest-path-style fixed point
over antichains of summaries.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from .timestamp import Timestamp

Location = Hashable


class PathSummary:
    """The canonical timestamp transformation along a dataflow path.

    Parameters
    ----------
    keep:
        Number of leading source loop counters that survive the path.
    delta:
        Increment applied to the last surviving counter (0 if ``keep == 0``).
    append:
        Constant loop counters appended after the surviving prefix.
    """

    __slots__ = ("keep", "delta", "append", "_hash")

    def __init__(self, keep: int, delta: int = 0, append: Tuple[int, ...] = ()):
        if keep < 0:
            raise ValueError("keep must be non-negative")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if keep == 0 and delta != 0:
            raise ValueError("cannot increment the epoch (delta at depth 0)")
        append = tuple(append)
        if any(a < 0 for a in append):
            raise ValueError("appended counters must be non-negative")
        object.__setattr__(self, "keep", keep)
        object.__setattr__(self, "delta", delta)
        object.__setattr__(self, "append", append)
        object.__setattr__(self, "_hash", hash((keep, delta, append)))

    def __setattr__(self, name, value):
        raise AttributeError("PathSummary is immutable")

    def __reduce__(self):
        return (PathSummary, (self.keep, self.delta, self.append))

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    # ------------------------------------------------------------------
    # Construction helpers for the three system vertices.
    # ------------------------------------------------------------------

    @staticmethod
    def identity(depth: int) -> "PathSummary":
        """The summary of an empty path at nesting depth ``depth``."""
        return PathSummary(depth, 0, ())

    @staticmethod
    def ingress(depth: int) -> "PathSummary":
        """Entering a loop from depth ``depth``: push a zero counter."""
        return PathSummary(depth, 0, (0,))

    @staticmethod
    def egress(depth: int) -> "PathSummary":
        """Leaving a loop whose body is at depth ``depth``: pop a counter."""
        if depth < 1:
            raise ValueError("cannot leave a loop from the streaming context")
        return PathSummary(depth - 1, 0, ())

    @staticmethod
    def feedback(depth: int) -> "PathSummary":
        """Traversing a feedback vertex at depth ``depth``: increment."""
        if depth < 1:
            raise ValueError("feedback requires a loop context")
        return PathSummary(depth, 1, ())

    # ------------------------------------------------------------------
    # Semantics.
    # ------------------------------------------------------------------

    @property
    def target_depth(self) -> int:
        """Nesting depth of timestamps produced by this summary."""
        return self.keep + len(self.append)

    def apply(self, t: Timestamp) -> Timestamp:
        """Adjust ``t`` as a message traversing this path would be."""
        if len(t.counters) < self.keep:
            raise ValueError(
                "summary %r needs at least %d counters, got %r" % (self, self.keep, t)
            )
        prefix = t.counters[: self.keep]
        if self.keep:
            prefix = prefix[:-1] + (prefix[-1] + self.delta,)
        return Timestamp(t.epoch, prefix + self.append)

    def dominates(self, t1: Timestamp, t2: Timestamp) -> bool:
        """True iff ``self(t1) <= t2``, without allocating a Timestamp.

        This is the hot operation of progress tracking (every
        could-result-in test ends here), so it works directly on the
        counter tuples.
        """
        return t1.epoch <= t2.epoch and self.dominates_counters(
            t1.counters, t2.counters
        )

    def dominates_counters(
        self, counters1: Tuple[int, ...], counters2: Tuple[int, ...]
    ) -> bool:
        """The loop-counter part of :meth:`dominates` (epoch-invariant).

        Summaries never change epochs, so could-result-in factors into
        ``epoch1 <= epoch2 AND dominates_counters(...)`` — which lets
        progress trackers memoise the counter part across epochs.
        """
        keep = self.keep
        prefix = counters1[:keep]
        if keep:
            prefix = prefix[:-1] + (prefix[-1] + self.delta,)
        return prefix + self.append <= counters2

    def __call__(self, t: Timestamp) -> Timestamp:
        return self.apply(t)

    def then(self, other: "PathSummary") -> "PathSummary":
        """Compose: first follow ``self``, then ``other``."""
        if other.keep > self.target_depth:
            raise ValueError(
                "cannot compose %r (target depth %d) with %r (keeps %d)"
                % (self, self.target_depth, other, other.keep)
            )
        if other.keep <= self.keep:
            delta = other.delta + (self.delta if other.keep == self.keep else 0)
            if other.keep == 0:
                delta = 0
            return PathSummary(other.keep, delta, other.append)
        # other.keep > self.keep: 'other' keeps some of our appended
        # constants and increments the last kept one.
        cut = other.keep - self.keep  # how many appended entries survive
        kept = self.append[: cut - 1] + (self.append[cut - 1] + other.delta,)
        return PathSummary(self.keep, self.delta, kept + other.append)

    # ------------------------------------------------------------------
    # The pointwise partial order.
    # ------------------------------------------------------------------

    def less_equal(self, other: "PathSummary") -> bool:
        """True iff ``self(t) <= other(t)`` for every timestamp ``t``.

        Both summaries must produce timestamps of the same depth (they
        summarise paths between the same pair of locations).
        """
        if self.target_depth != other.target_depth:
            raise ValueError(
                "summaries target different depths: %r vs %r" % (self, other)
            )
        m1, d1, a1 = self.keep, self.delta, self.append
        m2, d2, a2 = other.keep, other.delta, other.append
        if m1 == m2:
            return (d1,) + a1 <= (d2,) + a2
        if m1 > m2:
            # 'other' increments a counter that 'self' keeps verbatim; the
            # incremented coordinate dominates iff the increment is positive.
            return d2 > 0
        # m1 < m2: 'self' pops strictly deeper.  It can only stay below
        # 'other' if it adds nothing on the way up (delta == 0), re-enters
        # with zeros up to other's kept depth, and lands strictly below (or
        # ties into a lexicographically smaller tail at) other's increment.
        if d1 != 0:
            return False
        gap = m2 - m1
        if any(a1[i] != 0 for i in range(gap - 1)):
            return False
        pivot = a1[gap - 1]
        if pivot < d2:
            return True
        return pivot == d2 and a1[gap:] <= a2

    def less_than(self, other: "PathSummary") -> bool:
        return self != other and self.less_equal(other)

    # ------------------------------------------------------------------
    # Python protocol.
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, PathSummary):
            return NotImplemented
        return (
            self.keep == other.keep
            and self.delta == other.delta
            and self.append == other.append
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "PathSummary(keep=%d, delta=%d, append=%r)" % (
            self.keep,
            self.delta,
            self.append,
        )


class Antichain:
    """A set of mutually incomparable minimal path summaries."""

    __slots__ = ("elements",)

    def __init__(self, elements: Iterable[PathSummary] = ()):
        self.elements: List[PathSummary] = []
        for element in elements:
            self.insert(element)

    def insert(self, candidate: PathSummary) -> bool:
        """Add ``candidate`` if no current element is <= it.

        Returns True when the antichain changed (i.e. the candidate was
        genuinely new and minimal).
        """
        for element in self.elements:
            if element.less_equal(candidate):
                return False
        self.elements = [
            element for element in self.elements if not candidate.less_equal(element)
        ]
        self.elements.append(candidate)
        return True

    def dominates(self, t1: Timestamp, t2: Timestamp) -> bool:
        """True iff some summary maps ``t1`` at or below ``t2``."""
        return any(s.dominates(t1, t2) for s in self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __bool__(self) -> bool:
        return bool(self.elements)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Antichain):
            return NotImplemented
        return set(self.elements) == set(other.elements)

    def __repr__(self) -> str:
        return "Antichain(%r)" % (self.elements,)


def minimal_summaries(
    locations: Sequence[Location],
    links: Iterable[Tuple[Location, Location, PathSummary]],
    depths: Dict[Location, int],
) -> Dict[Tuple[Location, Location], Antichain]:
    """All-pairs minimal path summaries over a location graph.

    Parameters
    ----------
    locations:
        Every pointstamp location (vertices and edges, or stages and
        connectors for the projected logical graph).
    links:
        Directed one-step could-result-in links ``(src, dst, summary)``.
    depths:
        Loop-nesting depth of each location (used for identity summaries).

    Returns
    -------
    A mapping from ``(l1, l2)`` to the antichain of minimal summaries of
    paths from ``l1`` to ``l2``.  Every ``(l, l)`` entry contains at least
    the identity summary.  Pairs with no connecting path are absent.
    """
    adjacency: Dict[Location, List[Tuple[Location, PathSummary]]] = {
        location: [] for location in locations
    }
    for src, dst, summary in links:
        adjacency[src].append((dst, summary))

    table: Dict[Tuple[Location, Location], Antichain] = {}
    for source in locations:
        reached: Dict[Location, Antichain] = {
            source: Antichain([PathSummary.identity(depths[source])])
        }
        worklist = deque([source])
        while worklist:
            node = worklist.popleft()
            summaries = list(reached[node])
            for succ, link_summary in adjacency[node]:
                target = reached.setdefault(succ, Antichain())
                changed = False
                for summary in summaries:
                    if target.insert(summary.then(link_summary)):
                        changed = True
                if changed:
                    worklist.append(succ)
        for destination, antichain in reached.items():
            table[(source, destination)] = antichain
    return table
