"""Failure injection and recovery on the simulated cluster (section 3.4).

Runs a keyed word-count on a 4-computer cluster with periodic
checkpointing, kills one process mid-epoch at a chosen virtual time,
and lets the :class:`RecoveryManager` roll the survivors back to the
last checkpoint and replay the input journal.  The per-epoch outputs
are compared against a failure-free run of the same program: they must
match exactly — released epochs are never re-released (exactly-once)
and replayed epochs come out identical.

The program runs with the plan optimizer on (``optimize=True``), so the
``select -> where -> select_many`` prefix executes as one fused
super-vertex whose composite ``checkpoint()``/``restore()`` is
exercised by the rollback — the explain() inspector shows what fused.

Run:  python examples/kill_and_recover.py
"""

from collections import Counter

from repro.lib import Stream
from repro.runtime import ClusterComputation, FaultTolerance

EPOCHS = [
    ["the quick brown fox", "jumps over the lazy dog"],
    ["the dog barks"],
    ["quick quick slow"],
    ["fox and dog and fox"],
]


def build(comp):
    """Word count with a fusable clean-up prefix; per-epoch outputs."""
    lines = comp.new_input("lines")
    out = {}
    (
        Stream.from_input(lines)
        .select(str.lower)
        .where(lambda line: line.strip() != "")
        .select_many(str.split)
        .count_by(lambda word: word)
        .subscribe(lambda t, recs: out.setdefault(t.epoch, Counter()).update(recs))
    )
    return lines, out


def run(kill_process=None, kill_at=None, verbose=False):
    comp = ClusterComputation(
        num_processes=4,
        workers_per_process=2,
        fault_tolerance=FaultTolerance(
            mode="checkpoint",
            checkpoint_every=2,
            restart_delay=0.02,
        ),
        optimize=True,
    )
    lines, out = build(comp)
    comp.build()
    if verbose:
        print(comp.plan.explain())
        print()
    if kill_process is not None:
        comp.kill_process(kill_process, at=kill_at)
    for epoch in EPOCHS:
        lines.on_next(epoch)
    lines.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return out, comp


def main():
    print("== failure-free run (fused plan shown below) ==")
    expected, baseline = run(verbose=True)
    for epoch in sorted(expected):
        print("  epoch %d -> %s" % (epoch, sorted(expected[epoch].items())))
    duration = baseline.now
    print("  virtual duration: %.6f s" % duration)

    kill_at = duration * 0.6
    print()
    print("== same run, killing process 2 at t=%.6f s ==" % kill_at)
    out, comp = run(kill_process=2, kill_at=kill_at)
    failure = comp.recovery.failures[0]
    print(
        "  failure: process %d at %.6f s; rolled back to checkpoint "
        "taken at %.6f s; replayed %d journal entries; ready at %.6f s"
        % (
            failure["process"],
            failure["at"],
            failure["restored_from"],
            failure["replayed_entries"],
            failure["ready"],
        )
    )
    for epoch in sorted(out):
        print("  epoch %d -> %s" % (epoch, sorted(out[epoch].items())))

    assert out == expected, "recovery changed the outputs!"
    print()
    print("per-epoch outputs identical to the failure-free run: exactly-once.")


if __name__ == "__main__":
    main()
