"""Figure 8: interactive queries on a streaming iterative graph analysis.

The paper's culminating experiment (the Figure 1 application): a tweet
stream feeds an incremental connected-components computation that
maintains the most popular hashtag per user component, while an open
stream of queries asks for the top hashtag in a user's component.  Two
policies:

- "Fresh": a query's answer must reflect its own epoch — responses
  queue behind the 500-900 ms of update work (the "shark fin" sawtooth
  in the time series);
- "1 s delay" (here ``stale(bound)``): queries read slightly stale but
  consistent state — responses mostly under 10 ms.

Reproduction on the serving layer (``repro.serve``): the update path
publishes two shared arrangements once, a ``SessionManager`` multiplexes
N mixed-SLO sessions over one serving vertex, and queries arrive
**open-loop** — Poisson arrivals on the virtual clock, independent of
completions, so fresh latencies include real queueing behind the epoch's
update work.  The report table gives p50/p99 per SLO class at each
session count, plus the arrangement footprint (O(state), not
O(sessions x state)).

``-k budget`` selects the CI guard: the stale class's p99 must stay
under ``STALE_P99_BUDGET`` and below the fresh p99.
"""

import random

from repro.algorithms import component_top_resolver, hashtag_component_arrangements
from repro.lib import Stream
from repro.runtime import ClusterComputation
from repro.serve import SessionManager
from repro.workloads import TweetGenerator, TweetStreamConfig

from bench_harness import format_table, human_time, percentile, report

COMPUTERS = 4
EPOCHS = 40
TWEETS_PER_EPOCH = 80
EPOCH_INTERVAL = 10e-3  # 8,000 tweets/s scaled from the paper's 32,000/s

#: Open-loop Poisson arrival rate per session (queries/s of virtual time).
QUERY_RATE = 25.0
#: Staleness bound (epochs) for the stale half of the sessions.
STALE_BOUND = 3
#: Session counts swept by the report table (half fresh, half stale).
SESSION_COUNTS = (100, 250)
#: CI budget on the stale class's open-loop p99 (virtual seconds).
STALE_P99_BUDGET = 5e-3


def run_serving(num_sessions, epochs=EPOCHS, seed=11):
    """One open-loop run with ``num_sessions`` mixed-SLO sessions."""
    generator = TweetGenerator(
        TweetStreamConfig(num_users=1500, num_hashtags=80, seed=seed)
    )
    tweet_epochs = [generator.batch(TWEETS_PER_EPOCH) for _ in range(epochs)]
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=1,
        progress_mode="local+global",
    )
    tweets_in = comp.new_input()
    queries_in = comp.new_input()
    labels_arr, top_arr = hashtag_component_arrangements(Stream.from_input(tweets_in))
    manager = SessionManager(
        comp, queries_in, [labels_arr, top_arr], component_top_resolver
    )
    comp.build()

    half = num_sessions // 2
    fresh_pool = [manager.open_session("fresh") for _ in range(half)]
    stale_pool = [
        manager.open_session("stale", bound=STALE_BOUND)
        for _ in range(num_sessions - half)
    ]

    # Open loop: arrival times are drawn up front from the Poisson
    # process and scheduled on the virtual clock — they never wait for
    # earlier answers, so queueing shows up as latency, not back-pressure.
    rng = random.Random(seed * 1009 + num_sessions)
    horizon = (epochs - 1) * EPOCH_INTERVAL
    for pool in (fresh_pool, stale_pool):
        rate = QUERY_RATE * len(pool)
        t = rng.expovariate(rate)
        while t < horizon:
            session, user = rng.choice(pool), generator.query()
            comp.sim.schedule_at(t, lambda s=session, u=user: manager.submit(s, u))
            t += rng.expovariate(rate)

    def inject(epoch):
        tweets_in.on_next(tweet_epochs[epoch])
        manager.pump()  # fresh queries since the last pump join this epoch
        if epoch + 1 == epochs:
            tweets_in.on_completed()
            manager.close()

    for epoch in range(epochs):
        comp.sim.schedule_at(epoch * EPOCH_INTERVAL, lambda e=epoch: inject(e))
    comp.run()
    manager.drain()
    assert comp.drained(), comp.debug_state()
    assert manager.outstanding == 0
    return manager


def latencies_by_class(manager):
    split = {"fresh": [], "stale": []}
    for answer in manager.answers:
        split[answer.slo].append(answer.latency)
    return split


def test_fig8_serving_open_loop(benchmark):
    def experiment():
        return {count: run_serving(count) for count in SESSION_COUNTS}

    managers = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for count, manager in managers.items():
        split = latencies_by_class(manager)
        for slo in ("fresh", "stale"):
            latencies = split[slo]
            staleness = [a.staleness for a in manager.answers if a.slo == slo]
            rows.append(
                (
                    count,
                    slo,
                    len(latencies),
                    human_time(percentile(latencies, 0.5)),
                    human_time(percentile(latencies, 0.99)),
                    max(staleness),
                )
            )
    lines = format_table(
        ["sessions", "class", "answers", "p50", "p99", "max-stale"], rows
    )
    footprints = {
        count: manager.arrangement_entries() for count, manager in managers.items()
    }
    lines.append("")
    lines.append(
        "arrangement footprint: %s indexed entries at every session count"
        % " = ".join(str(footprints[count]) for count in SESSION_COUNTS)
    )
    report("fig8_serving", lines)

    # The shared index is written once by the update path: session count
    # must not change its size.
    assert len(set(footprints.values())) == 1, footprints
    for count, manager in managers.items():
        split = latencies_by_class(manager)
        fresh_median = percentile(split["fresh"], 0.5)
        stale_median = percentile(split["stale"], 0.5)
        # Stale reads are dramatically faster (the paper: <10 ms vs the
        # 500-900 ms shark fin; the factor is what must reproduce).
        assert stale_median < fresh_median / 3, count
        # Fresh answers wait behind the epoch's update work: comparable
        # to the epoch processing time, not to a network round trip.
        assert fresh_median > 1e-3, count
        # Measured staleness stays within every stale session's bound.
        assert all(
            a.staleness <= STALE_BOUND for a in manager.answers if a.slo == "stale"
        ), count


def test_fig8_serving_p99_budget():
    # The CI guard (selected with ``-k budget``): open-loop stale p99
    # holds its budget and undercuts the fresh class.
    manager = run_serving(100)
    split = latencies_by_class(manager)
    stale_p99 = percentile(split["stale"], 0.99)
    fresh_p99 = percentile(split["fresh"], 0.99)
    assert stale_p99 < STALE_P99_BUDGET, (stale_p99, STALE_P99_BUDGET)
    assert stale_p99 < fresh_p99, (stale_p99, fresh_p99)
    assert all(
        a.staleness <= STALE_BOUND for a in manager.answers if a.slo == "stale"
    )
