"""Inline versus multiprocessing vertex execution on the flagship run.

WCC on the 64-computer Figure 6 preset, executed four ways: callbacks
inline on the DES thread and offloaded to a 4-child fork pool
(`repro.parallel`), each with the plan optimizer off and on
(`repro.opt`: operator fusion + exchange elision + batch coalescing).
Within one optimizer setting the two backends must be bit-identical in
virtual time and event count — the pool changes only wall-clock time.
Across optimizer settings only the outputs must match: fusion exists
precisely to change the event count (fewer, fatter callbacks), which
raises the offloadable fraction f of the run that Amdahl lets a pool
parallelise.  The report records wall clocks, event counts, the work
split, and the measured f per setting; EXPERIMENTS.md discusses the
numbers.

A second experiment measures where fusion moves f itself: a chain of
four *heavy* user-defined select bodies over many small epochs.  There
fusion collapses four deliveries per batch into one, stripping three
quarters of the serial DES overhead while the callback CPU (the
offloadable part) is left intact — so f rises instead of merely the
event count falling.
"""

import time

from repro.algorithms import weakly_connected_components
from repro.columnar import INT64
from repro.lib import Stream
from repro.parallel import fork_available
from repro.runtime import ClusterComputation, CostModel
from repro.workloads import uniform_random_graph

from bench_harness import format_table, human_time, profile_lines, report

COMPUTERS = 64
POOL_WORKERS = 4
GRAPH = uniform_random_graph(2000, 4000, seed=2)
#: The Figure 6 blocked cost model (see bench_fig6d_strong_scaling).
BLOCKED = CostModel(per_record_cost=2e-5, record_bytes=800)

#: tag -> (optimize, columnar).  Columnar rides the optimizer's
#: coalescing hints, so it is benchmarked on top of the fused plan.
SETTINGS = {
    "plain": (False, False),
    "fused": (True, False),
    "fused+col": (True, True),
}


def run_wcc(backend: str, optimize: bool = False, columnar: bool = False):
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=2,
        progress_mode="local+global",
        cost_model=BLOCKED,
        backend=backend,
        pool_workers=POOL_WORKERS,
        optimize=optimize,
        columnar=columnar,
    )
    out = []
    inp = comp.new_input()
    weakly_connected_components(Stream.from_input(inp)).subscribe(
        lambda t, recs: out.extend(recs)
    )
    comp.build()
    inp.on_next(GRAPH)
    inp.on_completed()
    started = time.perf_counter()
    comp.run()
    wall = time.perf_counter() - started
    assert comp.drained(), comp.debug_state()
    observables = (comp.sim.now, comp.sim.events_executed, sorted(out))
    offloaded = 0 if comp.pool is None else comp.pool.tasks_offloaded
    child_cpu = 0.0 if comp.pool is None else sum(comp.pool.child_wall)
    comp.close()
    return comp, wall, observables, offloaded, child_cpu


def test_parallel_backend_wcc64(benchmark):
    if not fork_available():
        import pytest

        pytest.skip("mp backend requires the fork start method")

    def experiment():
        legs = {}
        for tag, (optimize, columnar) in SETTINGS.items():
            legs[tag, "inline"] = run_wcc("inline", optimize, columnar)
            legs[tag, "mp"] = run_wcc("mp", optimize, columnar)
        return legs

    legs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # The tentpole guarantee: within one optimizer setting the pool
    # must not perturb the simulation.
    for tag in SETTINGS:
        inline_obs = legs[tag, "inline"][2]
        mp_obs = legs[tag, "mp"][2]
        assert inline_obs == mp_obs, tag
        assert legs[tag, "mp"][3] > 0
    # Across optimizer settings: same outputs, strictly fewer events.
    assert legs["plain", "inline"][2][2] == legs["fused", "inline"][2][2]
    plain_events = legs["plain", "inline"][2][1]
    fused_events = legs["fused", "inline"][2][1]
    assert fused_events < plain_events
    # The columnar plane is a pure encoding: bit-identical virtual time
    # and event count against the fused record path.
    assert legs["fused+col", "inline"][2] == legs["fused", "inline"][2]

    rows = []
    for tag in SETTINGS:
        for backend in ("inline", "mp"):
            comp, wall, obs, offloaded, child_cpu = legs[tag, backend]
            rows.append(
                (
                    "%s/%s" % (tag, backend),
                    human_time(wall),
                    "%.6f s" % obs[0],
                    "%d" % obs[1],
                    "%d tasks" % offloaded if offloaded else "-",
                )
            )
    lines = format_table(
        ["leg", "wall clock", "virtual time", "DES events", "offloaded"], rows
    )
    lines.append(
        "fusion event reduction: %.1f%% (%d -> %d)"
        % (
            100.0 * (plain_events - fused_events) / plain_events,
            plain_events,
            fused_events,
        )
    )
    for tag in SETTINGS:
        inline_wall = legs[tag, "inline"][1]
        child_cpu = legs[tag, "mp"][4]
        lines.append(
            "%s: offloadable fraction f = child CPU / inline wall = "
            "%.2f s / %.2f s = %.2f (Amdahl bound %.2fx)"
            % (
                tag,
                child_cpu,
                inline_wall,
                child_cpu / inline_wall,
                1.0 / max(1e-9, 1.0 - child_cpu / inline_wall),
            )
        )
    lines.append(
        "wall-clock ratio inline/mp: %s"
        % ", ".join(
            "%s %.2fx" % (tag, legs[tag, "inline"][1] / legs[tag, "mp"][1])
            for tag in SETTINGS
        )
    )
    lines.append("-- inline (fused) DES self-profile --")
    lines.extend(profile_lines(legs["fused", "inline"][0]))
    report("parallel_backend_wcc64", lines)


# ----------------------------------------------------------------------
# Heavy-UDF chain: the workload shape where fusion raises f.
# ----------------------------------------------------------------------

UDF_EPOCHS = 100
UDF_RECORDS_PER_EPOCH = 6


def _burn(x):
    # ~700 us of real Python per record per stage: the "user UDF"
    # regime EXPERIMENTS.md predicts the pool needs to pay off.
    acc = 0
    for i in range(15000):
        acc += i * i
    return x + (acc & 1)


def run_udf_chain(backend: str, optimize: bool = False, columnar: bool = False):
    # One pool child: the coordinator blocks on its replies, so the
    # child's wall clock is an uncontended measure of callback CPU even
    # on a single hardware core (4 children time-slicing against each
    # other would inflate the summed child wall past the true CPU).
    comp = ClusterComputation(
        num_processes=8,
        workers_per_process=2,
        progress_mode="local+global",
        backend=backend,
        pool_workers=1,
        optimize=optimize,
        columnar=columnar,
    )
    out = []
    inp = comp.new_input()
    stream = Stream.from_input(inp)
    for _ in range(4):
        stream = stream.select(_burn, schema=INT64)
    stream.subscribe(lambda t, recs: out.extend(recs))
    comp.build()
    for epoch in range(UDF_EPOCHS):
        base = epoch * UDF_RECORDS_PER_EPOCH
        inp.on_next(list(range(base, base + UDF_RECORDS_PER_EPOCH)))
    inp.on_completed()
    started = time.perf_counter()
    comp.run()
    wall = time.perf_counter() - started
    assert comp.drained(), comp.debug_state()
    observables = (comp.sim.now, comp.sim.events_executed, sorted(out))
    offloaded = 0 if comp.pool is None else comp.pool.tasks_offloaded
    child_cpu = 0.0 if comp.pool is None else sum(comp.pool.child_wall)
    comp.close()
    return comp, wall, observables, offloaded, child_cpu


def test_fusion_raises_f_on_udf_chain(benchmark):
    if not fork_available():
        import pytest

        pytest.skip("mp backend requires the fork start method")

    def experiment():
        legs = {}
        walls = {tag: [] for tag in SETTINGS}
        for tag, (optimize, columnar) in SETTINGS.items():
            legs[tag, "inline"] = run_udf_chain("inline", optimize, columnar)
            walls[tag].append(legs[tag, "inline"][1])
            legs[tag, "mp"] = run_udf_chain("mp", optimize, columnar)
        # The f comparison divides stable child CPU by a noisy inline
        # wall clock; repeat the inline legs, interleaved so machine
        # drift hits both settings alike, and keep the minima.
        for _ in range(2):
            for tag, (optimize, columnar) in SETTINGS.items():
                walls[tag].append(run_udf_chain("inline", optimize, columnar)[1])
        return legs, walls

    legs, walls = benchmark.pedantic(experiment, rounds=1, iterations=1)

    for tag in SETTINGS:
        assert legs[tag, "inline"][2] == legs[tag, "mp"][2], tag
    assert legs["plain", "inline"][2][2] == legs["fused", "inline"][2][2]
    # Columnar batches are a pure encoding of the same execution.
    assert legs["fused+col", "inline"][2] == legs["fused", "inline"][2]

    # Both settings execute the identical callback-body work — the same
    # 4 * epochs * records calls of _burn — so calibrate that CPU once
    # and use it as the numerator for both f's.  (The mp child CPU is a
    # noisier estimate of the same quantity: it adds per-task pickle
    # overhead, which fusion removes, muddying the comparison.)
    started = time.perf_counter()
    for _ in range(200):
        _burn(0)
    body_cpu = (
        (time.perf_counter() - started)
        / 200.0
        * 4
        * UDF_EPOCHS
        * UDF_RECORDS_PER_EPOCH
    )

    rows = []
    fractions = {}
    for tag in SETTINGS:
        inline_wall = min(walls[tag])
        fractions[tag] = body_cpu / inline_wall
        for backend in ("inline", "mp"):
            comp, wall, obs, offloaded, _ = legs[tag, backend]
            if backend == "inline":
                wall = inline_wall
            rows.append(
                (
                    "%s/%s" % (tag, backend),
                    human_time(wall),
                    "%d" % obs[1],
                    "%d tasks" % offloaded if offloaded else "-",
                )
            )
    lines = format_table(["leg", "wall clock", "DES events", "offloaded"], rows)
    for tag in SETTINGS:
        lines.append(
            "%s: f = UDF body CPU / best inline wall = %.2f s / %.2f s = "
            "%.2f (Amdahl bound %.2fx; mp children measured %.2f s)"
            % (
                tag,
                body_cpu,
                min(walls[tag]),
                fractions[tag],
                1.0 / max(1e-9, 1.0 - fractions[tag]),
                legs[tag, "mp"][4],
            )
        )
    report("parallel_backend_udf_chain", lines)

    # The acceptance claim: on body-dominated chains, fusing the four
    # selects strips serial DES overhead without touching the callback
    # CPU, so the offloadable fraction rises.  The event elimination is
    # deterministic; the f gap it buys is real but small now that the
    # location-gated progress tracker cut the per-event serial cost
    # (~0.1 s on a ~3 s wall), so allow one wall-clock noise quantum —
    # the hard floor on f itself is test_udf_chain_f_budget.
    assert legs["fused", "inline"][2][1] < legs["plain", "inline"][2][1]
    assert fractions["fused"] > fractions["plain"] - 0.05


# ----------------------------------------------------------------------
# CI regression guard (mirrors the progress-traffic budget): the
# offloadable fraction of the fused+columnar UDF chain must stay above
# the recorded floor.  Kept separate from the full experiments so the
# guard leg runs in a couple of minutes (``-k budget``).
# ----------------------------------------------------------------------

#: Floor for f on the fused+columnar UDF chain.  ISSUE 8 acceptance:
#: the seed's recorded fused f was 0.76; the columnar plane plus the
#: location-gated progress tracker must keep the chain past it
#: (recorded after the change: best-pair f ~0.79-0.83, serial residue
#: ~0.6 s on a chain whose body CPU is ~2.2 s; the same box measured
#: ~0.70 before the tracker work).
F_BUDGET = 0.76


def _calibrated_body_cpu():
    started = time.perf_counter()
    for _ in range(200):
        _burn(0)
    return (
        (time.perf_counter() - started)
        / 200.0
        * 4
        * UDF_EPOCHS
        * UDF_RECORDS_PER_EPOCH
    )


def test_udf_chain_f_budget():
    """CI regression guard: fused+columnar f stays above F_BUDGET."""
    # The box's CPU rate drifts over tens of seconds, so a calibration
    # taken far from its run understates or overstates the body by more
    # than the margin under test.  Pair each run with calibrations taken
    # immediately around it and take the *best pair*: a noisy box always
    # yields at least one clean pair, while a real serial-cost
    # regression depresses every pair (the residue is paid on each run).
    fractions, runs = [], []
    for _ in range(4):
        before = _calibrated_body_cpu()
        run = run_udf_chain("inline", optimize=True, columnar=True)
        after = _calibrated_body_cpu()
        runs.append(run)
        fractions.append((before + after) / 2.0 / run[1])
    fraction = max(fractions)
    assert fraction > F_BUDGET, (fractions,)
    # And the encoding is on: the fused chain's exchange carries a schema.
    assert runs[0][0].columnar_connectors > 0
