"""Tests for the discrete-event simulator and the network model."""

import pytest

from repro.sim import Network, NetworkConfig, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_tie_break(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_schedule_during_run(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(0.5, lambda: log.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert log == ["first", "nested"]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(2.0, lambda: log.append(2))
        sim.run(until=1.5)
        assert log == [1]
        assert sim.now == 1.5
        sim.run()
        assert log == [1, 2]

    def test_run_until_fires_due_background_events(self):
        # Regression: `run(until=...)` used to jump the clock straight
        # to `until`, skipping background events whose due times the
        # clock passes through on the way there.
        sim = Simulator()
        log = []
        sim.schedule_background(1.0, lambda: log.append(("bg", sim.now)))
        sim.schedule(2.0, lambda: log.append(("fg", sim.now)))
        sim.run(until=1.5)
        assert log == [("bg", 1.0)]
        assert sim.now == 1.5
        sim.run()
        assert log == [("bg", 1.0), ("fg", 2.0)]

    def test_run_until_background_may_schedule_foreground(self):
        # A background callback that enqueues foreground work due
        # before `until` must see that work executed in the same run.
        sim = Simulator()
        log = []
        sim.schedule_background(
            1.0, lambda: sim.schedule_at(1.2, lambda: log.append(sim.now))
        )
        sim.schedule(2.0, lambda: log.append(sim.now))
        sim.run(until=1.5)
        assert log == [1.2]
        assert sim.now == 1.5

    def test_max_events(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: log.append(i))
        assert sim.run(max_events=3) == 3
        assert log == [0, 1, 2]

    def test_determinism_with_seed(self):
        values = []
        for _ in range(2):
            sim = Simulator(seed=42)
            values.append([sim.rng.random() for _ in range(5)])
        assert values[0] == values[1]


class TestNetwork:
    def make(self, procs=2, **overrides):
        sim = Simulator(seed=7)
        config = NetworkConfig(**overrides)
        return sim, Network(sim, procs, config)

    def test_remote_latency_and_bandwidth(self):
        sim, net = self.make(latency=1e-3, bandwidth=1e6, per_message_bytes=0)
        arrivals = []
        net.send(0, 1, 1000, "data", lambda: arrivals.append(sim.now))
        sim.run()
        # 1000 bytes at 1 MB/s = 1 ms transfer + 1 ms latency.
        assert arrivals == [pytest.approx(2e-3)]

    def test_local_delivery_is_fast(self):
        sim, net = self.make()
        arrivals = []
        net.send(0, 0, 10_000, "data", lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals[0] < 1e-4

    def test_fifo_per_pair(self):
        # A large message then a small one: the small one must not
        # overtake despite its shorter transfer time.
        sim, net = self.make(latency=0.0, bandwidth=1e6, per_message_bytes=0)
        log = []
        net.send(0, 1, 1_000_000, "data", lambda: log.append("big"))
        net.send(0, 1, 1, "data", lambda: log.append("small"))
        sim.run()
        assert log == ["big", "small"]

    def test_egress_contention_serialises(self):
        sim, net = self.make(procs=3, latency=0.0, bandwidth=1e6, per_message_bytes=0)
        arrivals = {}
        net.send(0, 1, 1_000_000, "data", lambda: arrivals.setdefault(1, sim.now))
        net.send(0, 2, 1_000_000, "data", lambda: arrivals.setdefault(2, sim.now))
        sim.run()
        # Both leave through process 0's NIC: second transfer waits.
        assert arrivals[1] == pytest.approx(1.0)
        assert arrivals[2] == pytest.approx(2.0)

    def test_traffic_accounting(self):
        sim, net = self.make(per_message_bytes=64)
        net.send(0, 1, 100, "data", lambda: None)
        net.send(0, 1, 50, "progress", lambda: None)
        sim.run()
        assert net.stats.bytes("data") == 164
        assert net.stats.bytes("progress") == 114
        assert net.stats.messages("data") == 1
        assert net.stats.total_bytes() == 278

    def test_packet_loss_adds_retransmit_timeout(self):
        sim, net = self.make(
            latency=0.0,
            packet_loss_probability=1.0,
            retransmit_timeout=20e-3,
            per_message_bytes=0,
        )
        arrivals = []
        net.send(0, 1, 8, "data", lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals[0] >= 20e-3

    def test_nagle_penalty_for_small_messages(self):
        sim, net = self.make(latency=0.0, nagle_delay=0.2, per_message_bytes=0)
        arrivals = {}
        net.send(0, 1, 8, "small", lambda: arrivals.setdefault("s", sim.now))
        sim.run()
        sim2, net2 = self.make(latency=0.0, nagle_delay=0.2, per_message_bytes=0)
        net2.send(0, 1, 10_000, "large", lambda: arrivals.setdefault("l", sim2.now))
        sim2.run()
        assert arrivals["s"] >= 0.2
        assert arrivals["l"] < 0.2

    def test_gc_pauses_stall_process(self):
        sim, net = self.make(gc_interval=1e-3, gc_pause=5e-3)
        # GC generators are background events: they need foreground work
        # to advance the clock, and never keep the simulation alive.
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        assert net._gc_busy_until[0] > 0  # at least one pause occurred

    def test_background_events_do_not_keep_sim_alive(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.schedule_background(0.1, tick)

        sim.schedule_background(0.1, tick)
        sim.schedule(0.35, lambda: None)
        sim.run()
        # Self-rescheduling background work ran only until the last
        # foreground event, then the simulation went quiescent.
        assert ticks == pytest.approx([0.1, 0.2, 0.3])
        assert sim.now == 0.35
