"""Tests for the comparison-system baselines: correctness + cost shape."""

import pytest

from repro.algorithms import asp_oracle, pagerank_oracle, scc_oracle, wcc_oracle
from repro.baselines import (
    DRYADLINQ,
    PDW,
    SHS,
    BatchIterativeEngine,
    KineographEngine,
    PowerGraphEngine,
    naiad_iteration_time,
    speedup_curve,
    vw_iteration_time,
)
from repro.workloads import power_law_graph, uniform_random_graph

EDGES = uniform_random_graph(60, 120, seed=13)


class TestBatchEngineCorrectness:
    def test_pagerank_matches_oracle(self):
        engine = BatchIterativeEngine()
        ranks = engine.pagerank(EDGES, iterations=6)
        expected = pagerank_oracle(EDGES, iterations=6)
        assert set(ranks) == set(expected)
        for node in expected:
            assert ranks[node] == pytest.approx(expected[node])

    def test_wcc_matches_oracle(self):
        engine = BatchIterativeEngine()
        assert engine.wcc(EDGES) == wcc_oracle(EDGES)

    def test_scc_matches_oracle(self):
        engine = BatchIterativeEngine()
        assert engine.scc(EDGES) == scc_oracle(EDGES)

    def test_asp_matches_oracle(self):
        engine = BatchIterativeEngine()
        landmarks = [0, 5]
        assert engine.asp(EDGES, landmarks) == asp_oracle(EDGES, landmarks)


class TestBatchEngineCosts:
    def test_every_iteration_pays_job_overhead(self):
        engine = BatchIterativeEngine()
        engine.pagerank(EDGES, iterations=6)
        assert engine.iterations_run == 5
        assert engine.elapsed >= 5 * engine.costs.job_overhead

    def test_more_machines_is_faster_but_overhead_remains(self):
        small = BatchIterativeEngine(num_machines=4)
        large = BatchIterativeEngine(num_machines=64)
        small.wcc(EDGES)
        large.wcc(EDGES)
        assert large.elapsed <= small.elapsed
        assert large.elapsed >= large.iterations_run * large.costs.job_overhead

    def test_personalities_are_ordered_at_paper_scale(self):
        # At ClueWeb Category A scale (1B pages, 8B edges), SHS
        # (disk-resident) is slowest and DryadLINQ fastest — the
        # ordering of Najork et al.'s PageRank row in Table 1.
        nodes, edges = 1_000_000_000, 8_000_000_000
        times = {}
        for name, costs in [("dryadlinq", DRYADLINQ), ("pdw", PDW), ("shs", SHS)]:
            engine = BatchIterativeEngine(num_machines=16, costs=costs)
            times[name] = engine.estimate_time(edges + nodes, nodes, iterations=10)
        assert times["dryadlinq"] < times["pdw"] < times["shs"]


class TestPowerGraph:
    GRAPH = power_law_graph(120, 4, seed=3)

    def test_pagerank_matches_oracle(self):
        engine = PowerGraphEngine(num_machines=8)
        ranks = engine.pagerank(self.GRAPH, iterations=5)
        expected = pagerank_oracle(self.GRAPH, iterations=5)
        for node in expected:
            assert ranks[node] == pytest.approx(expected[node])

    def test_vertex_cut_bounds_replication(self):
        engine = PowerGraphEngine(num_machines=8)
        engine.partition(self.GRAPH)
        factor = engine.replication_factor()
        assert 1.0 <= factor <= 8.0

    def test_greedy_beats_random_replication(self):
        import random

        engine = PowerGraphEngine(num_machines=8)
        engine.partition(self.GRAPH)
        greedy = engine.replication_factor()
        rng = random.Random(0)
        mirrors = {}
        for u, v in self.GRAPH:
            m = rng.randrange(8)
            mirrors.setdefault(u, set()).add(m)
            mirrors.setdefault(v, set()).add(m)
        random_factor = sum(len(s) for s in mirrors.values()) / len(mirrors)
        assert greedy < random_factor

    def test_per_iteration_time_recorded(self):
        engine = PowerGraphEngine(num_machines=8)
        engine.pagerank(self.GRAPH, iterations=4)
        assert len(engine.per_iteration) == 3
        assert engine.elapsed == pytest.approx(sum(engine.per_iteration))


class TestVwModel:
    RECORDS = 312_000_000  # the paper's input size
    VECTOR = 268 << 20     # the paper's 268 MB reduced vector

    def test_naiad_allreduce_faster_at_scale(self):
        for procs in (8, 16, 32, 64):
            assert naiad_iteration_time(procs, self.RECORDS, self.VECTOR) < (
                vw_iteration_time(procs, self.RECORDS, self.VECTOR)
            )

    def test_single_process_identical(self):
        assert vw_iteration_time(1, self.RECORDS, self.VECTOR) == (
            naiad_iteration_time(1, self.RECORDS, self.VECTOR)
        )

    def test_speedup_flattens(self):
        # The constant phases bound the speedup (paper: "prevents
        # scaling past 32 computers").
        curve = dict(speedup_curve([1, 2, 4, 8, 16, 32, 64], self.RECORDS, self.VECTOR))
        gain_small = curve[8] / curve[4]
        gain_large = curve[64] / curve[32]
        assert gain_small > gain_large
        assert curve[64] < 64 * 0.8

    def test_asymptotic_advantage_about_a_third(self):
        # The paper reports ~35% asymptotic improvement; compare the
        # AllReduce phases alone (no local compute).
        vw = vw_iteration_time(64, 0, self.VECTOR) - vw_iteration_time(1, 0, self.VECTOR)
        naiad = naiad_iteration_time(64, 0, self.VECTOR) - naiad_iteration_time(
            1, 0, self.VECTOR
        )
        assert vw / naiad == pytest.approx(1.35, abs=0.1)


class TestKineograph:
    def test_snapshot_results_are_stale(self):
        engine = KineographEngine(num_machines=32)
        tweets = [(u, "#t%d" % (u % 5)) for u in range(100)]
        followers = [(u + 1000, u) for u in range(100)]
        engine.replay(tweets, followers, arrival_rate=1000.0, duration=60.0)
        delay = engine.mean_result_delay()
        # Staleness is at least half the snapshot interval.
        assert delay >= engine.costs.snapshot_interval / 2

    def test_counts_match_streaming_semantics(self):
        engine = KineographEngine(num_machines=4)
        tweets = [(1, "#a"), (2, "#a"), (1, "#b")]
        followers = [(10, 1), (11, 1), (10, 2)]
        counts = engine.replay(tweets, followers, arrival_rate=3.0, duration=1.0)
        # duration < interval: one snapshot of ~30 tweets (cycled);
        # exposures are deduplicated, so counts match the distinct sets.
        assert counts == {"#a": 2, "#b": 2}

    def test_throughput_bound(self):
        engine = KineographEngine(num_machines=32)
        assert engine.max_throughput() > 100_000  # tweets/s, paper regime

    def test_kill_injection_adds_staleness_not_errors(self):
        tweets = [(u, "#t%d" % (u % 5)) for u in range(100)]
        followers = [(u + 1000, u) for u in range(100)]

        def replay(kill_at):
            engine = KineographEngine(num_machines=32)
            counts = engine.replay(
                tweets,
                followers,
                arrival_rate=1000.0,
                duration=60.0,
                kill_at=kill_at,
                restart_delay=20.0,
            )
            return engine, counts

        unfailed, expected = replay(None)
        failed, counts = replay(30.0)
        # Ingest is replicated: the failure never changes the results.
        assert counts == expected
        assert len(failed.failures) == 1
        # It does stall the snapshot pipeline: every snapshot from the
        # kill onward is delivered later, so staleness strictly grows.
        assert failed.mean_result_delay() > unfailed.mean_result_delay()
