"""Tracing-on smoke run of the Figure 6 workloads at a tiny preset.

Runs WordCount-with-combiner and WCC on a 4-computer simulated cluster
with a :class:`repro.obs.TraceSink` attached, then exercises the whole
observability pipeline: JSONL round-trip, per-stage timelines, the DES
self-profile and the SnailTrail-style critical-path summary.  Finishes
in a couple of seconds — CI runs it on every push (`python
benchmarks/smoke_fig6_trace.py`) so a regression in the tracing hooks or
the analyses cannot hide behind the tracing-off default.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.lib import Stream  # noqa: E402
from repro.algorithms import (  # noqa: E402
    weakly_connected_components,
    wordcount_with_combiner,
)
from repro.obs import (  # noqa: E402
    TraceSink,
    collect_profile,
    critical_path,
    event_counts,
    frontier_trace,
    stage_timelines,
)
from repro.runtime import ClusterComputation, CostModel  # noqa: E402
from repro.workloads import generate_corpus, uniform_random_graph  # noqa: E402

COMPUTERS = 4
CORPUS = generate_corpus(400, words_per_line=8, vocabulary_size=100, seed=2)
GRAPH = uniform_random_graph(120, 240, seed=2)
BLOCKED = CostModel(per_record_cost=2e-5, record_bytes=800)


def run_traced(name, builder, records):
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=2,
        progress_mode="local+global",
        cost_model=BLOCKED,
    )
    sink = TraceSink()
    comp.attach_trace_sink(sink)
    inp = comp.new_input()
    builder(Stream.from_input(inp)).subscribe(lambda t, recs: None)
    comp.build()
    inp.on_next(records)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()

    events = list(sink)
    assert events, "tracing was on; the run must have produced events"
    counts = event_counts(events)
    for kind in ("input", "activation", "deliver", "frontier"):
        assert counts.get(kind, 0) > 0, "missing %r events: %r" % (kind, counts)

    # JSONL round-trip: reloaded events must be identical and produce
    # the identical critical-path summary.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "%s.jsonl" % name)
        sink.dump_jsonl(path)
        reloaded = TraceSink.load_jsonl(path)
    assert list(reloaded) == events
    summary = critical_path(events)
    assert critical_path(list(reloaded)).lines() == summary.lines()
    assert summary.makespan > 0

    timelines = stage_timelines(events)
    assert timelines, "per-stage timelines must not be empty"
    assert frontier_trace(events), "frontier trace must not be empty"

    profile = collect_profile(comp)
    assert profile.events_executed == comp.sim.events_executed

    print("== %s @ %d computers (traced: %d events) ==" % (name, COMPUTERS, len(events)))
    for line in profile.lines():
        print(line)
    for line in summary.lines():
        print(line)
    print()


def main():
    run_traced("wordcount", wordcount_with_combiner, CORPUS)
    run_traced("wcc", weakly_connected_components, GRAPH)
    print("smoke_fig6_trace: OK")


if __name__ == "__main__":
    main()
