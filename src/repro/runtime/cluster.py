"""The simulated distributed Naiad runtime (paper section 3).

:class:`ClusterComputation` executes an unmodified timely dataflow
program on a model of the paper's cluster: ``num_processes`` processes,
each hosting ``workers_per_process`` workers, connected by the network
model of :mod:`repro.sim.network`.  The logical graph expands into a
physical graph with one vertex per (stage, worker); connectors with a
partitioning function exchange records between workers by key
(section 3.1).  Vertices *really execute* — outputs are real — while
elapsed time follows a calibrated cost model and a discrete-event
simulation, so scaling and latency experiments run in virtual time.

Progress coordination uses the distributed protocol of section 3.3
(:mod:`repro.runtime.protocol`): workers broadcast occurrence-count
deltas; notifications are delivered only when the process's local view
shows no possible earlier work, which — by the protocol's safety
property — never precedes the true global frontier.
"""

from __future__ import annotations

import os
import warnings
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..columnar import ColumnarBatch, combine_payloads, route
from ..core.computation import Computation, TimestampViolation
from ..core.graph import Connector, Stage, StageKind
from ..core.progress import Pointstamp
from ..core.runtime_api import RuntimeDebugState
from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from ..obs.trace import TraceEvent, TraceSink, timestamp_tuple
from ..sim.des import Simulator
from ..sim.network import Network, NetworkConfig
from .checkpoint import RECOVERY_POLICIES, RecoveryManager
from .protocol import (
    CentralAccumulator,
    ProgressView,
    ProtocolNode,
    net_updates,
    wire_size,
)
from .synthetic import batch_bytes, record_count


@dataclass
class CostModel:
    """Per-operation virtual-time costs, calibrated to section 5.

    The defaults were tuned so that single-computer microbenchmark
    results land in the same regime as the paper's hardware (2.1 GHz
    Opterons): roughly 5M records/s/worker of processing and ~100 MB/s
    of serialization throughput per core.
    """

    #: Fixed cost of dispatching one callback (on_recv / on_notify).
    callback_overhead: float = 2e-6
    #: CPU time per record handled in a callback.
    per_record_cost: float = 200e-9
    #: Sender-side serialization cost per byte (remote sends only).
    serialize_per_byte: float = 8e-9
    #: Receiver-side deserialization cost per byte.
    deserialize_per_byte: float = 8e-9
    #: Default serialized record size when not synthetic.
    record_bytes: int = 8
    #: Cost of delivering one notification.
    notification_cost: float = 2e-6


@dataclass
class FaultTolerance:
    """Fault-tolerance policy knobs (sections 3.4 and 6.3).

    ``mode`` selects what is durable: ``"none"`` journals only the raw
    input (the external producer can always resupply it); ``"checkpoint"``
    takes a full consistent checkpoint every ``checkpoint_every`` input
    epochs; ``"logging"`` additionally journals every cross-process
    message batch continually (and still checkpoints periodically, which
    bounds how far recovery must read the log).  All three modes survive
    :meth:`ClusterComputation.kill_process` with identical outputs —
    they differ in how much virtual time the run and the recovery cost.

    ``checkpoint_mode`` selects *how* the cut is taken: ``"barrier"``
    is the paper's stop-the-world pause-drain-snapshot-resume cycle;
    ``"async"`` is the marker-based asynchronous protocol of
    :mod:`repro.runtime.async_checkpoint` — vertices snapshot
    incrementally on marker arrival while the dataflow keeps running,
    and failures roll back only the lost process (partial rollback).
    """

    #: "none", "checkpoint" (periodic full checkpoints) or "logging"
    #: (continual logging of sent messages).
    mode: str = "none"
    #: Take a checkpoint every N input epochs ("checkpoint"/"logging").
    checkpoint_every: int = 100
    #: State written per worker at each checkpoint, bytes.
    state_bytes_per_worker: int = 4 << 20
    #: Sequential disk bandwidth for checkpoints and logs, bytes/s.
    disk_bandwidth: float = 200e6
    #: Fixed log-record overhead per message batch ("logging" mode).
    log_bytes_per_batch: int = 64
    #: Placement after a kill: "restart" the failed process in place, or
    #: "reassign" its workers round-robin across the survivors.
    recovery: str = "restart"
    #: Failure detection + process restart/failover time, seconds.
    restart_delay: float = 1.0
    #: "barrier" (stop-the-world section 3.4 cycle) or "async"
    #: (marker-based incremental snapshots + partial rollback).
    checkpoint_mode: str = "barrier"
    #: Memory bandwidth for the in-place state copy an asynchronous
    #: snapshot charges to the worker (the only pause it ever takes);
    #: the durable disk write happens in the background.
    snapshot_copy_bandwidth: float = 5e9


class _Worker:
    """One Naiad worker: a partition of vertices plus an event queue."""

    __slots__ = (
        "cluster",
        "index",
        "process",
        "queue",
        "pending_notifications",
        "pending_cleanups",
        "busy_until",
        "dead",
        "cut",
        "_cut_deferred",
        "_scheduled",
        "_commit_pending",
        "_pending_updates",
        "_frame_time",
        "_frame_stage",
        "_frame_capability",
        "_updates",
        "_dispatches",
        "delivered_messages",
        "delivered_notifications",
        "_pending_rev",
        "_notif_memo",
        "_cleanup_memo",
    )

    def __init__(self, cluster: "ClusterComputation", index: int):
        self.cluster = cluster
        self.index = index
        self.process = cluster.worker_process(index)
        self.queue: deque = deque()
        self.pending_notifications: Dict[Pointstamp, int] = {}
        self.pending_cleanups: Dict[Pointstamp, int] = {}
        self.busy_until = 0.0
        #: Set when the hosting process is killed; scheduled events that
        #: still reference this object become no-ops.
        self.dead = False
        #: Highest async-checkpoint cycle this worker has cut for (its
        #: message color: sends carry the sender's ``cut`` as a tag).
        self.cut = 0
        #: An async cut is owed but was blocked by an uncommitted
        #: callback or an unconsumed pool claim; taken at commit end.
        self._cut_deferred = False
        self._scheduled = False
        #: A _step finished but its _commit has not run yet; the cluster
        #: is not quiescent while any commit is outstanding.
        self._commit_pending = False
        #: The update list of the uncommitted callback (async partial
        #: rollback applies its retirements if the worker dies here).
        self._pending_updates: Optional[List[Tuple[Pointstamp, int]]] = None
        self._frame_time: Optional[Timestamp] = None
        self._frame_stage: Optional[Stage] = None
        self._frame_capability = True
        self._updates: Optional[List[Tuple[Pointstamp, int]]] = None
        #: (connector, dest, batch, out_time) from send(); _step's
        #: serialization pass appends the precomputed remote batch size.
        self._dispatches: Optional[List[Tuple]] = None
        self.delivered_messages = 0
        self.delivered_notifications = 0
        #: Bumped whenever the pending notification/cleanup tables gain
        #: or lose a key; with the progress view's frontier version it
        #: keys the deliverability memos below — ``activate()`` runs the
        #: full unblocked() scan once per (frontier, pending-set) state
        #: instead of once per delivery.
        self._pending_rev = 0
        self._notif_memo: Optional[Tuple] = None
        self._cleanup_memo: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # Harness interface (Vertex.send_by / Vertex.notify_at).
    # ------------------------------------------------------------------

    @property
    def total_workers(self) -> int:
        return self.cluster.total_workers

    def send(
        self, vertex: Vertex, output_port: int, records: List[Any], timestamp: Timestamp
    ) -> None:
        stage = vertex.stage
        if not self._frame_capability:
            raise TimestampViolation(
                "send_by from a capability-free (state purging) notification"
            )
        if stage.kind is StageKind.NORMAL and self._frame_time is not None:
            current = self._frame_time
            if current.depth == timestamp.depth and not current.less_equal(timestamp):
                raise TimestampViolation(
                    "send_by at %r from a callback at %r" % (timestamp, current)
                )
        out_time = stage.timestamp_action().apply(timestamp)
        total = self.cluster.total_workers
        for connector in stage.outputs[output_port]:
            shares = route(connector, records, total, self.index)
            pointstamp = Pointstamp(out_time, connector)
            for dest, batch in shares:
                self._updates.append((pointstamp, +1))
                # -1 size sentinel: "not yet computed"; _step's
                # serialization pass fills it in.  Pool children record
                # dispatches with the size precomputed instead.
                self._dispatches.append((connector, dest, batch, out_time, -1))

    def request_notification(
        self, vertex: Vertex, timestamp: Timestamp, capability: bool = True
    ) -> None:
        if not self._frame_capability:
            raise TimestampViolation(
                "notify_at from a capability-free (state purging) notification"
            )
        if self._frame_time is not None:
            current = self._frame_time
            if current.depth == timestamp.depth and not current.less_equal(timestamp):
                raise TimestampViolation(
                    "notify_at at %r from a callback at %r" % (timestamp, current)
                )
        pointstamp = Pointstamp(timestamp, vertex.stage)
        if capability:
            if vertex.stage in self.cluster._proj_table:
                raise TimestampViolation(
                    "notify_at(%r) with a capability on stage %r, which "
                    "lives inside a summarized loop scope: its vertex "
                    "class declares notifies=False, so interior "
                    "pointstamps are never disseminated and the "
                    "notification could not be coordinated. Set "
                    "notifies=True on the vertex class, or build the "
                    "cluster with progress_tracking='flat'"
                    % (timestamp, vertex.stage.name)
                )
            self._updates.append((pointstamp, +1))
            self.pending_notifications[pointstamp] = (
                self.pending_notifications.get(pointstamp, 0) + 1
            )
            self._pending_rev += 1
        else:
            # Section 2.4: guarantee-only request — no pointstamp, no
            # protocol traffic, cannot delay anything anywhere.
            self.pending_cleanups[pointstamp] = (
                self.pending_cleanups.get(pointstamp, 0) + 1
            )
            self._pending_rev += 1

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------

    def enqueue_message(
        self,
        connector: Connector,
        records: List[Any],
        timestamp: Timestamp,
        remote_bytes: int = 0,
        src: int = -1,
        sent: float = -1.0,
        tag: int = 0,
        key: Optional[int] = None,
        fence: Optional[Tuple[int, int]] = None,
    ) -> None:
        if fence is not None:
            # Generation fencing: the sender stamped its (process,
            # incarnation); a mismatch means the sender was fenced while
            # this message was in flight — it is provably stale and is
            # discarded before any journaling or delivery side effect.
            src_process, generation = fence
            cluster = self.cluster
            if cluster.generations[src_process] != generation:
                cluster.fenced_drops += 1
                trace = cluster._trace
                if trace is not None:
                    trace.emit(
                        TraceEvent(
                            "detect",
                            cluster.sim.now,
                            0.0,
                            perf_counter(),
                            self.index,
                            self.process,
                            "drop",
                            timestamp_tuple(timestamp),
                            ("stale-data", src_process, generation),
                        )
                    )
                return
        if self.dead:
            return  # message addressed to a lost worker; replay covers it
        ac = self.cluster.async_ckpt
        if ac is not None:
            # Journal the delivery, settle its in-flight ledger entry,
            # and — during an active cycle — cut this worker first if
            # the message is post-cut, or channel-log it if pre-cut.
            ac.on_delivery(self, connector, records, timestamp, remote_bytes, src, tag, key)
        self.queue.append((connector, records, timestamp, remote_bytes, tag))
        if self.cluster._proj_table:
            self.cluster._note_scope_enqueue(connector, timestamp, self.process)
        trace = self.cluster._trace
        if trace is not None:
            now = self.cluster.sim.now
            trace.emit(
                TraceEvent(
                    "deliver",
                    now,
                    now - sent if sent >= 0.0 else 0.0,
                    perf_counter(),
                    self.index,
                    self.process,
                    connector.dst.name,
                    timestamp_tuple(timestamp),
                    (src, record_count(records)),
                )
            )
        self.activate()

    def activate(self) -> None:
        if self.dead or self._scheduled:
            return
        if (
            not self.queue
            and self._deliverable_notification() is None
            and self._deliverable_cleanup() is None
        ):
            return
        self._scheduled = True
        start = max(
            self.cluster.sim.now,
            self.busy_until,
            self.cluster.network.process_available_at(self.process),
        )
        self.cluster.sim.schedule_at(start, self._step)

    def _deliverable_notification(self) -> Optional[Pointstamp]:
        if not self.pending_notifications:
            return None
        view = self.cluster.views[self.process]
        key = (id(view.state), view.state.version, self._pending_rev)
        memo = self._notif_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        # Delivery tests are needed only for per-location *minima* of
        # flat (counter-free) pointstamps: two flat notifications at the
        # same location share the counter part of every could-result-in
        # verdict, so a frontier element blocking the earlier epoch
        # blocks every later one too (it cannot *be* the later one — its
        # epoch is <= the earlier's).  Loop timestamps don't share
        # verdicts this way and are tested individually.
        candidates = {}
        loop_stamps = None
        for pointstamp in self.pending_notifications:
            if pointstamp.timestamp.counters:
                if loop_stamps is None:
                    loop_stamps = []
                loop_stamps.append(pointstamp)
                continue
            current = candidates.get(pointstamp.location)
            if current is None or pointstamp.timestamp < current.timestamp:
                candidates[pointstamp.location] = pointstamp
        best = None
        scan = (
            candidates.values()
            if loop_stamps is None
            else list(candidates.values()) + loop_stamps
        )
        for pointstamp in scan:
            if view.unblocked(pointstamp):
                if best is None or (pointstamp.timestamp, pointstamp.location.index) < (
                    best.timestamp,
                    best.location.index,
                ):
                    best = pointstamp
        self._notif_memo = (key, best)
        return best

    def _deliverable_cleanup(self) -> Optional[Pointstamp]:
        if not self.pending_cleanups:
            return None
        view = self.cluster.views[self.process]
        key = (id(view.state), view.state.version, self._pending_rev)
        memo = self._cleanup_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        # Same per-location minima argument as in
        # :meth:`_deliverable_notification`: if a flat group's earliest
        # member is blocked the whole group is, so any-unblocked can be
        # decided from the minima alone.
        candidates = {}
        loop_stamps = None
        for pointstamp in self.pending_cleanups:
            if pointstamp.timestamp.counters:
                if loop_stamps is None:
                    loop_stamps = []
                loop_stamps.append(pointstamp)
                continue
            current = candidates.get(pointstamp.location)
            if current is None or pointstamp.timestamp < current.timestamp:
                candidates[pointstamp.location] = pointstamp
        found = None
        scan = (
            candidates.values()
            if loop_stamps is None
            else list(candidates.values()) + loop_stamps
        )
        for pointstamp in scan:
            if view.unblocked(pointstamp):
                found = pointstamp
                break
        self._cleanup_memo = (key, found)
        return found

    def _select(self) -> Optional[Tuple]:
        """Dequeue this worker's next unit of work, or None if idle.

        Returns ``("recv", connector, records, timestamp, remote_bytes,
        batches)`` (``batches`` = queue entries consumed, > 1 when batch
        coalescing merged adjacent deliveries), ``("notify",
        pointstamp)`` or ``("cleanup", pointstamp)``, with the queue /
        pending tables already decremented.  Called either
        by :meth:`_step` (inline backend) or at prefetch time by the
        :class:`repro.parallel.VertexPool` dispatcher — selection state
        cannot change between prefetch and execution within one
        same-instant batch, so both call sites pick identical work.
        """
        if self.queue:
            batches = 1
            if self.cluster.scheduling == "earliest" and len(self.queue) > 1:
                # Section 3.2's alternative policy: deliver the message
                # with the earliest pointstamp to cut end-to-end latency.
                index = min(
                    range(len(self.queue)),
                    key=lambda i: self.queue[i][2],
                )
                self.queue.rotate(-index)
                connector, records, timestamp, remote_bytes, _tag = self.queue.popleft()
                self.queue.rotate(index)
            else:
                connector, records, timestamp, remote_bytes, _tag = self.queue.popleft()
                if connector.coalesce and self.queue:
                    # Batch coalescing (repro.opt hints): merge *adjacent*
                    # queue entries for the same (connector, timestamp)
                    # into one delivery, paying the callback overhead
                    # once.  Adjacency preserves the exact interleaving
                    # of deliveries from other connectors/times, and the
                    # pass only hints destinations whose record-sequence
                    # semantics are batching-insensitive.  FIFO only:
                    # "earliest" reorders the queue between selections.
                    queue = self.queue
                    parts = None
                    while queue:
                        head = queue[0]
                        if head[0] is not connector or head[2] != timestamp:
                            break
                        if parts is None:
                            parts = [records]
                        parts.append(head[1])
                        remote_bytes += head[3]
                        queue.popleft()
                        batches += 1
                        self.cluster.coalesced_batches += 1
                    if parts is not None:
                        # Same-schema columnar parts concatenate without
                        # materializing records; mixed parts flatten to
                        # one record list (the pre-columnar behaviour).
                        records = combine_payloads(parts)
            if self.cluster._proj_table:
                self.cluster._note_scope_dequeue(
                    connector, timestamp, self.process, batches
                )
            return ("recv", connector, records, timestamp, remote_bytes, batches)
        pointstamp = self._deliverable_notification()
        if pointstamp is not None:
            remaining = self.pending_notifications[pointstamp] - 1
            if remaining:
                self.pending_notifications[pointstamp] = remaining
            else:
                del self.pending_notifications[pointstamp]
            self._pending_rev += 1
            return ("notify", pointstamp)
        pointstamp = self._deliverable_cleanup()
        if pointstamp is None:
            return None
        remaining = self.pending_cleanups[pointstamp] - 1
        if remaining:
            self.pending_cleanups[pointstamp] = remaining
        else:
            del self.pending_cleanups[pointstamp]
        self._pending_rev += 1
        return ("cleanup", pointstamp)

    def _apply_effects(self, vertex: Vertex, effects: List[Tuple]) -> None:
        """Replay the effects a pool child recorded while executing a
        callback, in callback order, through the same bookkeeping the
        inline path uses — updates and dispatches come out identical."""
        stage = vertex.stage
        for effect in effects:
            if effect[0] == "send":
                _, output_port, out_time, plan = effect
                outputs = stage.outputs[output_port]
                for conn_pos, shares in plan:
                    connector = outputs[conn_pos]
                    pointstamp = Pointstamp(out_time, connector)
                    for dest, batch, nbytes in shares:
                        self._updates.append((pointstamp, +1))
                        self._dispatches.append(
                            (connector, dest, batch, out_time, nbytes)
                        )
            else:
                _, timestamp, capability = effect
                pointstamp = Pointstamp(timestamp, stage)
                if capability:
                    if stage in self.cluster._proj_table:
                        raise TimestampViolation(
                            "notify_at(%r) with a capability on stage %r "
                            "inside a summarized loop scope (see "
                            "Vertex.notifies / progress_tracking='flat')"
                            % (timestamp, stage.name)
                        )
                    self._updates.append((pointstamp, +1))
                    self.pending_notifications[pointstamp] = (
                        self.pending_notifications.get(pointstamp, 0) + 1
                    )
                    self._pending_rev += 1
                else:
                    self.pending_cleanups[pointstamp] = (
                        self.pending_cleanups.get(pointstamp, 0) + 1
                    )
                    self._pending_rev += 1

    def _step(self) -> None:
        if self.dead:
            return
        self._scheduled = False
        cluster = self.cluster
        now = cluster.sim.now
        if self._cut_deferred and cluster.async_ckpt is not None:
            # Take the owed async cut before selecting more work; the
            # copy stall lands in busy_until and delays this step.
            cluster.async_ckpt.try_deferred_cut(self)
        start = max(now, self.busy_until, cluster.network.process_available_at(self.process))
        if start > now:
            # Re-arm for later; an unconsumed pool claim (if any) stays
            # valid and is executed when the deferred step runs.
            self._scheduled = True
            cluster.sim.schedule_at(start, self._step)
            return
        pool = cluster.pool
        claim = pool.take_claim(self) if pool is not None else None
        work = claim.work if claim is not None else self._select()
        if work is None:
            return
        offloaded = claim is not None and claim.offloaded
        cost_model = cluster.cost_model
        self._updates = []
        self._dispatches = []
        cost = 0.0
        trace = cluster._trace
        wall = perf_counter() if trace is not None else 0.0
        span = None
        async_ckpt = cluster.async_ckpt
        if work[0] == "recv":
            _, connector, records, timestamp, remote_bytes, batches = work
            vertex = cluster.vertices[(connector.dst, self.index)]
            if async_ckpt is not None:
                async_ckpt.dirty.add((connector.dst.index, self.index))
            if offloaded:
                self._apply_effects(vertex, claim.effects)
            else:
                self._frame_time = timestamp
                self._frame_stage = connector.dst
                try:
                    if type(records) is ColumnarBatch:
                        vertex.on_recv_batch(connector.dst_port, records, timestamp)
                    else:
                        vertex.on_recv(connector.dst_port, records, timestamp)
                finally:
                    self._frame_time = None
                    self._frame_stage = None
            # Every coalesced queue entry carried its own +1 occurrence
            # at dispatch time; retire each one.
            pointstamp = Pointstamp(timestamp, connector)
            for _ in range(batches):
                self._updates.append((pointstamp, -1))
            self.delivered_messages += 1
            cost += (
                cost_model.callback_overhead
                + cluster.stage_record_cost(connector.dst) * record_count(records)
                + cost_model.deserialize_per_byte * remote_bytes
            )
            if trace is not None:
                span = (
                    "activation",
                    connector.dst.name,
                    timestamp,
                    (record_count(records), connector.dst_port),
                )
        else:
            kind, pointstamp = work
            vertex = cluster.vertices[(pointstamp.location, self.index)]
            if async_ckpt is not None:
                async_ckpt.dirty.add((pointstamp.location.index, self.index))
            if offloaded:
                self._apply_effects(vertex, claim.effects)
            else:
                self._frame_time = pointstamp.timestamp
                self._frame_stage = pointstamp.location
                if kind == "cleanup":
                    self._frame_capability = False
                try:
                    vertex.on_notify(pointstamp.timestamp)
                finally:
                    self._frame_time = None
                    self._frame_stage = None
                    self._frame_capability = True
            if kind == "notify":
                self._updates.append((pointstamp, -1))
            self.delivered_notifications += 1
            cost += cost_model.notification_cost
            if trace is not None:
                span = (
                    "notification" if kind == "notify" else "cleanup",
                    pointstamp.location.name,
                    pointstamp.timestamp,
                    (),
                )

        # Sender-side batch coalescing: a callback that sent several
        # times to the same (connector, dest, time) — e.g. per-record
        # emission loops feeding a coalescible destination — produced
        # adjacent dispatches that would each be charged per-message
        # network bytes and a +1/-1 occurrence round trip, even though
        # the receiver merges them on arrival.  Merge them here, before
        # sizing, so per-message costs are paid once per coalesced batch
        # (the hot-path accounting fix).  Adjacency-only, so ordering
        # relative to other connectors is untouched; runs after
        # _apply_effects, so the inline and mp backends stay identical.
        dispatches = self._dispatches
        if len(dispatches) > 1:
            merged = [dispatches[0]]
            for entry in dispatches[1:]:
                prev = merged[-1]
                connector = entry[0]
                if (
                    connector is prev[0]
                    and connector.coalesce
                    and entry[1] == prev[1]
                    and entry[3] == prev[3]
                ):
                    payload = combine_payloads([prev[2], entry[2]])
                    size = (
                        prev[4] + entry[4]
                        if prev[4] >= 0 and entry[4] >= 0
                        else -1
                    )
                    merged[-1] = (connector, prev[1], payload, prev[3], size)
                    # The receiver will consume one queue entry, not two:
                    # retire the duplicate occurrence at the source.
                    self._updates.remove((Pointstamp(entry[3], connector), 1))
                    cluster.sender_merged_dispatches += 1
                else:
                    merged.append(entry)
            if len(merged) != len(dispatches):
                dispatches = self._dispatches = merged

        # Sender-side serialization and (optionally) logging costs.  The
        # batch size is computed once here and carried on the dispatch
        # tuple, so _commit's network sends reuse it instead of paying a
        # second cost-model pass over every remote batch.  Dispatches
        # recorded by a pool child already carry their size (>= 0); the
        # coordinator then skips the O(records) sizing pass entirely.
        log_bytes = 0
        for i in range(len(dispatches)):
            connector, dest, batch, out_time, presize = dispatches[i]
            if cluster.worker_process(dest) != self.process:
                if presize >= 0:
                    size = presize
                else:
                    size = batch_bytes(batch, cost_model.record_bytes)
                    cluster.batch_bytes_calls += 1
                cost += cost_model.serialize_per_byte * size
                log_bytes += size + cluster.fault_tolerance.log_bytes_per_batch
            else:
                size = 0
            dispatches[i] = (connector, dest, batch, out_time, size)
        if cluster.fault_tolerance.mode == "logging" and dispatches:
            if log_bytes == 0:
                log_bytes = cluster.fault_tolerance.log_bytes_per_batch
            cost += log_bytes / cluster.fault_tolerance.disk_bandwidth
            cluster.recovery.note_logged(log_bytes)

        finish = start + cost
        self.busy_until = finish
        updates = self._updates
        self._updates = None
        self._dispatches = None
        self._commit_pending = True
        # The async snapshot protocol needs the uncommitted retirements
        # if this worker dies between _step and _commit (its dispatches
        # and notify requests died with it, but the retirements it was
        # about to publish must still be compensated).
        self._pending_updates = updates
        if trace is not None and span is not None:
            trace.emit(
                TraceEvent(
                    span[0],
                    start,
                    cost,
                    wall,
                    self.index,
                    self.process,
                    span[1],
                    timestamp_tuple(span[2]),
                    span[3],
                )
            )
            if offloaded:
                # Per-pool-worker timeline: which pool rank executed the
                # callback body and how much real CPU it burned there.
                trace.emit(
                    TraceEvent(
                        "pool",
                        start,
                        cost,
                        wall,
                        self.index,
                        claim.pool_rank,
                        span[1],
                        timestamp_tuple(span[2]),
                        (work[0], claim.child_wall),
                    )
                )
        cluster.sim.schedule_at(finish, lambda: self._commit(updates, dispatches))

    def _commit(
        self,
        updates: List[Tuple[Pointstamp, int]],
        dispatches: List[Tuple[Connector, int, List[Any], Timestamp, int]],
    ) -> None:
        if self.dead:
            return  # the callback's effects died with the process
        self._commit_pending = False
        self._pending_updates = None
        cluster = self.cluster
        now = cluster.sim.now
        ac = cluster.async_ckpt
        if ac is not None and ac.replay_dedup:
            # Journal replay after a partial rollback: suppress record
            # batches the surviving destinations already received.
            ac.filter_replayed(self.index, dispatches, updates)
        tag = self.cut if ac is not None else 0
        for connector, dest, batch, out_time, size in dispatches:
            dest_worker = cluster.workers[dest]
            if dest == self.index:
                dest_worker.enqueue_message(
                    connector, batch, out_time, 0, self.index, now, tag
                )
            else:
                key = None
                if ac is not None:
                    key = ac.register_inflight(
                        self.index, dest, connector, batch, out_time, size, tag
                    )
                cluster.network.send(
                    self.process,
                    cluster.worker_process(dest),
                    size,
                    "data",
                    lambda w=dest_worker, c=connector, b=batch, t=out_time, s=size, i=self.index, n=now, g=tag, k=key, f=(
                        self.process,
                        cluster.generations[self.process],
                    ): (w.enqueue_message(c, b, t, s, i, n, g, k, f)),
                )
        if cluster._proj_table:
            updates = cluster._project_updates(updates)
        cluster.nodes[self.process].submit(updates)
        if ac is not None and self._cut_deferred:
            ac.commit_hook(self)
        self.activate()

    def has_work(self) -> bool:
        return (
            bool(self.queue)
            or bool(self.pending_notifications)
            or bool(self.pending_cleanups)
        )


class _ProgressFence:
    """Generation fencing for the progress plane.

    Every in-flight progress-protocol copy (node broadcast, central
    accumulate, central deliver, controller broadcast) registers here
    before entering the network and unregisters as it delivers.  When a
    process is fenced, :meth:`settle` applies every outstanding copy
    touching it *synchronously*, in send order — equivalent to the
    network having been instantaneously fast for exactly those copies
    (progress updates commute, and occurrence accounting is exact
    either way) — so all views agree on the fenced incarnation's final
    effects and no accumulator hold waits on a dead peer forever.  The
    network copy of a settled entry that straggles in later finds its
    key gone and is dropped with a ``detect``/``drop`` trace: that is
    the deterministic discard of zombie progress traffic.
    """

    __slots__ = ("cluster", "_entries", "_next_key", "dropped")

    def __init__(self, cluster: "ClusterComputation"):
        self.cluster = cluster
        self._entries: Dict[int, Tuple[int, int, Callable[[], None]]] = {}
        self._next_key = 0
        #: Stale progress copies discarded after their entry settled.
        self.dropped = 0

    def register(
        self, src: int, dst: int, deliver: Callable[[], None]
    ) -> Callable[[], None]:
        key = self._next_key
        self._next_key += 1
        self._entries[key] = (src, dst, deliver)

        def wrapped() -> None:
            entry = self._entries.pop(key, None)
            if entry is None:
                # Settled at fence time (or cleared by a global
                # rollback): this network copy is provably stale.
                self.dropped += 1
                cluster = self.cluster
                cluster.fenced_drops += 1
                trace = cluster._trace
                if trace is not None:
                    trace.emit(
                        TraceEvent(
                            "detect",
                            cluster.sim.now,
                            0.0,
                            perf_counter(),
                            -1,
                            dst,
                            "drop",
                            (),
                            ("stale-progress", src, cluster.generations[src]),
                        )
                    )
                return
            entry[2]()

        return wrapped

    def settle(self, process: int) -> int:
        """Apply every outstanding copy from or to ``process`` now, in
        send order; returns how many were settled."""
        keys = sorted(
            key
            for key, (src, dst, _) in self._entries.items()
            if src == process or dst == process
        )
        for key in keys:
            entry = self._entries.pop(key, None)
            if entry is not None:
                # A settled deliver can trigger fresh broadcasts that
                # register (and even settle) new entries; the snapshot
                # of keys above keeps this loop over the original set.
                entry[2]()
        return len(keys)

    def clear(self) -> int:
        """Forget every entry (global rollback tore the network down:
        the guarded copies will never run, so nothing can double-apply)."""
        count = len(self._entries)
        self._entries.clear()
        return count


class ClusterComputation(Computation):
    """A timely dataflow computation on the simulated cluster.

    Use exactly like :class:`repro.core.Computation` — same graph
    construction, same :class:`repro.lib.Stream` operators — then drive
    inputs and call :meth:`run`.  Time is virtual: :attr:`now` reports
    seconds of modeled cluster time.
    """

    def __init__(
        self,
        num_processes: int = 2,
        workers_per_process: int = 2,
        network: Optional[NetworkConfig] = None,
        cost_model: Optional[CostModel] = None,
        progress_mode: str = "local",
        fault_tolerance: Optional[FaultTolerance] = None,
        scheduling: str = "fifo",
        seed: int = 0,
        backend: Optional[str] = None,
        pool_workers: Optional[int] = None,
        optimize: Optional[Any] = None,
        progress_tracking: str = "scoped",
        progress_batch_interval: float = 250e-6,
        columnar: Optional[bool] = None,
    ):
        super().__init__(optimize=optimize)
        if scheduling not in ("fifo", "earliest"):
            raise ValueError("scheduling must be 'fifo' or 'earliest'")
        self.scheduling = scheduling
        if progress_tracking not in ("scoped", "flat"):
            raise ValueError(
                "progress_tracking must be 'scoped' or 'flat' (got %r)"
                % (progress_tracking,)
            )
        # "scoped" (the default) disseminates only boundary projections
        # for loop scopes whose vertices all declare notifies=False;
        # "flat" broadcasts every interior pointstamp (the paper's
        # one-big-pile protocol), kept for conformance testing.
        self.progress_tracking = progress_tracking
        # Accumulation interval for unholdable boundary deltas under
        # scoped tracking: rather than one dissemination per callback,
        # an endpoint flushes at most once per interval (Naiad batches
        # progress updates the same way; §6 measures the resulting
        # coordination rounds at a few hundred microseconds).  Zero
        # disables batching.  Only summarized scopes are affected —
        # flat tracking and scope-free graphs never defer.
        self.progress_batch_interval = progress_batch_interval
        # Execution backend: "inline" runs vertex callbacks on the DES
        # thread; "mp" runs them in a persistent fork pool with
        # bit-identical virtual-time results (see repro.parallel).
        # Defaults come from REPRO_BACKEND / REPRO_POOL_WORKERS so CI
        # and benchmarks can switch without touching call sites.
        if backend is None:
            backend = os.environ.get("REPRO_BACKEND", "inline")
        if backend not in ("inline", "mp"):
            raise ValueError(
                "backend must be 'inline' or 'mp' (got %r)" % (backend,)
            )
        self.backend = backend
        if pool_workers is None:
            env_workers = os.environ.get("REPRO_POOL_WORKERS")
            pool_workers = int(env_workers) if env_workers else None
        self.pool_workers = pool_workers
        # The columnar data plane (repro.columnar): schema-marked
        # connectors move array-backed batches instead of record lists.
        # Strictly an encoding — outputs and virtual time are
        # bit-identical with the plane off.  Defaults to REPRO_COLUMNAR.
        if columnar is None:
            from ..opt.passes import parse_optimize_env

            columnar = parse_optimize_env(os.environ.get("REPRO_COLUMNAR"))
        self.columnar = bool(columnar)
        #: Connectors mark_columnar annotated at build time.
        self.columnar_connectors = 0
        #: The mp backend's VertexPool; created lazily on the first
        #: run()/step()/checkpoint() after build(), so the fork captures
        #: the fully constructed physical graph.
        self.pool = None
        self.num_processes = num_processes
        self.workers_per_process = workers_per_process
        self.total_workers = num_processes * workers_per_process
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, num_processes, network or NetworkConfig())
        self.cost_model = cost_model or CostModel()
        self.progress_mode = progress_mode
        self.fault_tolerance = fault_tolerance or FaultTolerance()
        if self.fault_tolerance.mode not in ("none", "checkpoint", "logging"):
            raise ValueError(
                "FaultTolerance.mode must be 'none', 'checkpoint' or "
                "'logging' (got %r)" % (self.fault_tolerance.mode,)
            )
        if self.fault_tolerance.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                "FaultTolerance.recovery must be one of %r" % (RECOVERY_POLICIES,)
            )
        if self.fault_tolerance.checkpoint_mode not in ("barrier", "async"):
            raise ValueError(
                "FaultTolerance.checkpoint_mode must be 'barrier' or 'async' "
                "(got %r)" % (self.fault_tolerance.checkpoint_mode,)
            )
        #: The marker-based asynchronous snapshot coordinator; created in
        #: build() when checkpoint_mode == "async", else stays None and
        #: every hook in the hot path is a single attribute test.
        self.async_ckpt = None
        self.views: List[ProgressView] = []
        self.nodes: List[ProtocolNode] = []
        self.central: Optional[CentralAccumulator] = None
        #: Loop contexts whose interior progress is summarized (build()).
        self.summarized_scopes: Tuple = ()
        #: location -> ScopeNode of its outermost summarized enclosing
        #: scope; empty under flat tracking (every hot-path hook is then
        #: a single truthiness test).
        self._proj_table: Dict[Any, Any] = {}
        #: Pointstamp -> projected Pointstamp memo for _project_updates.
        self._proj_cache: Dict[Pointstamp, Pointstamp] = {}
        #: (process, ScopeNode, projected time) -> interior deliveries
        #: queued on that process; the per-node boundary hold test.
        self._scope_pending: Dict[Tuple, int] = {}
        #: (ScopeNode, projected time) -> cluster-wide queued interior
        #: deliveries; the central accumulator's hold test.
        self._scope_pending_total: Dict[Tuple, int] = {}
        #: Deferred-flush scheduler shared by all protocol endpoints
        #: (None until scoped tracking configures batching).
        self._defer_flush: Optional[Callable[[Callable[[], None]], None]] = None
        self.workers: List[_Worker] = []
        self.vertices: Dict[Tuple[Stage, int], Vertex] = {}
        self._stage_costs: Dict[Stage, float] = {}
        #: Worker index -> hosting process.  Initially the contiguous
        #: block layout; failure recovery with the "reassign" policy
        #: remaps a dead process's entries onto the survivors.
        self._worker_process: List[int] = [
            index // workers_per_process for index in range(self.total_workers)
        ]
        self._process_workers: Dict[int, List[_Worker]] = {}
        #: Current cluster membership (elastic rescaling).  The list is
        #: *shared* with every protocol node and the central accumulator
        #: as their broadcast target set, so a membership change takes
        #: effect everywhere at once.  ``total_workers`` never changes —
        #: data partitioning is modulo the worker count, so rescaling
        #: only moves worker *placement* — and a process killed under
        #: the "reassign" policy stays listed (its ghost node keeps
        #: receiving broadcasts, exactly as before rescaling existed);
        #: only a planned ``remove_process`` departure leaves the list.
        self.live_processes: List[int] = list(range(num_processes))
        self._removed_processes: set = set()
        #: Per-process incarnation numbers.  Every remote data message
        #: and progress-protocol copy is stamped with its sender's
        #: current generation; fencing a process (advancing its entry)
        #: makes all traffic its old incarnation still has in flight
        #: provably stale, discarded deterministically at delivery.
        self.generations: List[int] = [0] * num_processes
        #: Stale data/progress messages discarded by generation fencing.
        self.fenced_drops = 0
        #: Silent crashes injected via :meth:`crash_process` — the
        #: coordinator is *not* told; only a supervisor can notice.
        self.crashes: List[Dict[str, Any]] = []
        self._progress_fence: Optional[_ProgressFence] = None
        #: Processes added at runtime; their views alias process 0's
        #: object (see :meth:`_execute_add`).
        self._mirror_processes: List[int] = []
        #: Monotone counter of completed membership changes, and the
        #: completed changes themselves (dicts; see :meth:`_note_rescale`).
        self.rescale_generation = 0
        self.rescales: List[Dict[str, Any]] = []
        self._rescale_queue: List[Tuple[str, Optional[int]]] = []
        self._rescale_active: Optional[Dict[str, Any]] = None
        self._rescale_pump_token = 0
        self.recovery: Optional[RecoveryManager] = None
        #: The attached self-healing supervisor, if any
        #: (:meth:`attach_supervisor`).
        self.supervisor = None
        #: DES self-profiling counters (see repro.obs.profile).
        self.batch_bytes_calls = 0
        self.stage_cost_calls = 0
        #: Queue entries merged away by batch coalescing (the
        #: optimizer's ``Connector.coalesce`` hints; see _Worker._select).
        self.coalesced_batches = 0
        #: Same-callback dispatches to one (connector, dest, time) merged
        #: into a single wire message before serialization (_Worker._step),
        #: so per-message costs are charged once per coalesced batch.
        self.sender_merged_dispatches = 0

    # ------------------------------------------------------------------
    # Configuration.
    # ------------------------------------------------------------------

    def worker_process(self, worker_index: int) -> int:
        return self._worker_process[worker_index]

    def set_stage_cost(self, stage: Stage, per_record_seconds: float) -> None:
        """Override the per-record CPU cost for one stage."""
        self._stage_costs[stage] = per_record_seconds

    def stage_record_cost(self, stage: Stage) -> float:
        self.stage_cost_calls += 1
        cost = self._stage_costs.get(stage)
        if cost is not None:
            return cost
        cost = self.cost_model.per_record_cost
        spec = stage.opspec
        if spec is not None and spec.cost_scale != 1:
            # A fused stage still runs every constituent's Python per
            # record; fusion saves per-event overhead, not CPU work.
            cost *= spec.cost_scale
        return cost

    # ------------------------------------------------------------------
    # Observability (repro.obs).
    # ------------------------------------------------------------------

    def attach_trace_sink(self, sink: Optional[TraceSink]) -> None:
        """Emit trace events into ``sink`` from now on (None detaches).

        The same sink object a :class:`repro.core.Computation` accepts;
        it is shared with the simulator kernel (``run`` spans) and the
        network model (``message`` events).
        """
        self._trace = sink
        self.sim.trace = sink
        self.network.trace = sink

    def _trace_cluster_frontier(self, _updates) -> None:
        # Registered on the process-0 view at build time; a single
        # attribute test when tracing is off.
        trace = self._trace
        if trace is None:
            return
        state = self.views[0].state
        if state.version == self._trace_version:
            return
        self._trace_version = state.version
        frontier = state.frontier()
        epochs = [p.timestamp.epoch for p in frontier]
        trace.emit(
            TraceEvent(
                "frontier",
                self.sim.now,
                0.0,
                perf_counter(),
                -1,
                0,
                "",
                (),
                (len(state), len(frontier), min(epochs) if epochs else -1),
            )
        )

    @property
    def now(self) -> float:
        """Virtual cluster time, seconds."""
        return self.sim.now

    # ------------------------------------------------------------------
    # Build: physical expansion (section 3.1).
    # ------------------------------------------------------------------

    def build(self) -> None:
        if self._built:
            return
        self._apply_optimizer()
        if self.columnar:
            # After the pass pipeline (fusion settles the final stages
            # and schemas), before freeze.  Not a compiler pass: marking
            # is runtime configuration and never appears in explain().
            from ..opt.passes import mark_columnar

            self.columnar_connectors = mark_columnar(self.graph)
        self.graph.freeze()
        summaries = self.graph.summaries
        shared_cri_cache: Dict = {}
        for process in range(self.num_processes):
            view = ProgressView(
                summaries,
                on_change=lambda p=process: self._recheck_process(p),
                cri_cache=shared_cri_cache,
            )
            self.views.append(view)
        for process in range(self.num_processes):
            node = ProtocolNode(
                process,
                self.num_processes,
                self.progress_mode,
                self.views[process],
                self.network,
                self.nodes,
                None,
                members=self.live_processes,
            )
            self.nodes.append(node)
        if self.progress_mode in ("global", "local+global"):
            self.central = CentralAccumulator(
                0,
                self.num_processes,
                self.views[0],
                self.network,
                self.nodes,
                members=self.live_processes,
            )
            for node in self.nodes:
                node.central = self.central
        self.workers = [_Worker(self, index) for index in range(self.total_workers)]
        self._rebuild_process_index()
        for stage in self.graph.stages:
            if stage.kind is StageKind.INPUT:
                continue
            for index, worker in enumerate(self.workers):
                vertex = stage.factory(stage, index)
                vertex.stage = stage
                vertex.worker = index
                vertex._harness = worker
                self.vertices[(stage, index)] = vertex
        if self.progress_tracking == "scoped":
            self._configure_scoped_tracking()
        self.views[0].listeners.append(self._trace_cluster_frontier)
        initial = [
            (Pointstamp(Timestamp(0), handle.stage), +1) for handle in self.inputs
        ]
        for view in self.views:
            view.apply(list(initial))
        # Serving layer: resolve arrangement readers and hook frontier
        # advances for parked stale queries (repro.serve).
        for manager in self.session_managers:
            manager._attach(self)
        # Generation fencing for the progress plane: every in-flight
        # protocol copy registers here so fencing a process can settle
        # (or a stale wrapper can drop) its outstanding updates.
        self._progress_fence = _ProgressFence(self)
        for node in self.nodes:
            node.fence = self._progress_fence
        if self.central is not None:
            self.central.fence = self._progress_fence
        self.recovery = RecoveryManager(self)
        self._wrap_external_outputs()
        # The rollback target before any checkpoint exists: the freshly
        # built cluster, from which the whole input journal can replay.
        self.recovery.initial = self.recovery.take_snapshot()
        if self.fault_tolerance.checkpoint_mode == "async":
            from .async_checkpoint import AsyncCheckpointManager

            self.async_ckpt = AsyncCheckpointManager(self)
        self._built = True

    # ------------------------------------------------------------------
    # Scoped progress tracking: boundary-summary dissemination.
    # ------------------------------------------------------------------

    def _configure_scoped_tracking(self) -> None:
        """Choose summarized scopes and install the projection tables.

        A loop scope qualifies when every stage in its subtree is built
        from non-notifying vertices (:attr:`Vertex.notifies` False):
        interior work then never needs a cluster-wide notification
        frontier, so interior pointstamps are projected onto the scope's
        boundary :class:`ScopeNode` (inner loop coordinates dropped)
        before dissemination, and inner-iteration churn nets away inside
        the accumulators instead of crossing the network.  The outermost
        qualifying ancestor absorbs its whole nest.
        """
        index = self.graph.summary_index
        summarized: set = set()
        for scope in index.scopes:
            if scope is None:
                continue  # the root streaming context has no boundary
            qualifies = True
            for inner in index.subtree(scope):
                for member in index.members(inner):
                    if getattr(member, "kind", None) is None:
                        continue  # a connector
                    vertex = self.vertices.get((member, 0))
                    if vertex is None or getattr(vertex, "notifies", True):
                        qualifies = False
                        break
                if not qualifies:
                    break
            if qualifies:
                summarized.add(id(scope))
        self.summarized_scopes = tuple(
            scope for scope in index.scopes if id(scope) in summarized
        )
        if not summarized:
            return
        table = self._proj_table
        for scope in index.scopes:
            if scope is None:
                continue
            # scope_chain runs innermost -> root; scan from the top so
            # the outermost summarized ancestor owns the projection.
            owner = None
            for ancestor in reversed(index.scope_chain(scope)[:-1]):
                if id(ancestor) in summarized:
                    owner = ancestor
                    break
            if owner is None:
                continue
            node = index.scope_node(owner)
            for member in index.members(scope):
                table[member] = node
        for node_ in self.nodes:
            node_.scope_pending = self._node_scope_pending(node_.process)
        if self.central is not None:
            self.central.scope_pending = self._central_scope_pending
        if self.progress_batch_interval > 0:
            interval = self.progress_batch_interval

            def defer(thunk: Callable[[], None]) -> None:
                self.sim.schedule(interval, thunk)

            self._defer_flush = defer
            for node_ in self.nodes:
                node_.defer_flush = defer
            if self.central is not None:
                self.central.defer_flush = defer

    def _node_scope_pending(self, process: int) -> Callable[[Pointstamp], bool]:
        pending = self._scope_pending

        def scope_pending(pointstamp: Pointstamp) -> bool:
            return (
                pending.get(
                    (process, pointstamp.location, pointstamp.timestamp), 0
                )
                > 0
            )

        return scope_pending

    def _central_scope_pending(self, pointstamp: Pointstamp) -> bool:
        return (
            self._scope_pending_total.get(
                (pointstamp.location, pointstamp.timestamp), 0
            )
            > 0
        )

    def _project_updates(
        self, updates: List[Tuple[Pointstamp, int]]
    ) -> List[Tuple[Pointstamp, int]]:
        """Replace interior pointstamps of summarized scopes with their
        boundary projection.  Idempotent — ScopeNode locations are never
        projection keys — so already-projected batches pass through."""
        table = self._proj_table
        if not table:
            return updates
        cache = self._proj_cache
        out: List[Tuple[Pointstamp, int]] = []
        for pointstamp, delta in updates:
            node = table.get(pointstamp.location)
            if node is not None:
                projected = cache.get(pointstamp)
                if projected is None:
                    t = pointstamp.timestamp
                    projected = Pointstamp(
                        Timestamp(t.epoch, t.counters[: node.depth]), node
                    )
                    if len(cache) > 100_000:
                        cache.clear()
                    cache[pointstamp] = projected
                pointstamp = projected
            out.append((pointstamp, delta))
        return out

    def _note_scope_enqueue(
        self, connector: Connector, timestamp: Timestamp, process: int
    ) -> None:
        node = self._proj_table.get(connector)
        if node is None:
            return
        t = Timestamp(timestamp.epoch, timestamp.counters[: node.depth])
        key = (process, node, t)
        self._scope_pending[key] = self._scope_pending.get(key, 0) + 1
        total_key = (node, t)
        self._scope_pending_total[total_key] = (
            self._scope_pending_total.get(total_key, 0) + 1
        )

    def _note_scope_dequeue(
        self,
        connector: Connector,
        timestamp: Timestamp,
        process: int,
        count: int = 1,
    ) -> None:
        node = self._proj_table.get(connector)
        if node is None:
            return
        t = Timestamp(timestamp.epoch, timestamp.counters[: node.depth])
        key = (process, node, t)
        remaining = self._scope_pending.get(key, 0) - count
        if remaining > 0:
            self._scope_pending[key] = remaining
        else:
            self._scope_pending.pop(key, None)
        total_key = (node, t)
        remaining = self._scope_pending_total.get(total_key, 0) - count
        if remaining > 0:
            self._scope_pending_total[total_key] = remaining
        else:
            self._scope_pending_total.pop(total_key, None)

    def _wrap_external_outputs(self) -> None:
        """Make subscriber callbacks exactly-once across replays."""
        from ..lib.operators import SubscribeVertex

        for (stage, index), vertex in self.vertices.items():
            if isinstance(vertex, SubscribeVertex):
                vertex.callback = self._exactly_once(
                    stage.index, index, vertex.callback
                )

    def _exactly_once(
        self, stage_index: int, worker: int, callback: Callable
    ) -> Callable:
        def release(timestamp: Timestamp, records: List[Any]) -> None:
            if self.recovery.note_release(stage_index, worker, timestamp):
                callback(timestamp, records)

        return release

    def _recheck_process(self, process: int) -> None:
        processes = [process]
        if process == 0 and self._mirror_processes:
            # Mirror processes alias process 0's view, so its changes
            # are theirs too: recheck their workers' pending tables.
            processes.extend(self._mirror_processes)
        for p in processes:
            for worker in self._process_workers.get(p, ()):
                if worker.pending_notifications or worker.pending_cleanups:
                    worker.activate()
        if process == 0:
            # A mirror node's buffered holds are evaluated against the
            # shared view, which changes without the mirror receiving
            # anything (the owner's deliveries mutate it): re-test its
            # withheld updates, exactly like the central accumulator.
            for p in self._mirror_processes:
                self.nodes[p]._maybe_flush()
        if self.central is not None and process == self.central.process:
            self.central.recheck()

    def _rebuild_process_index(self) -> None:
        index: Dict[int, List[_Worker]] = {}
        for worker in self.workers:
            index.setdefault(worker.process, []).append(worker)
        self._process_workers = index

    def _unique_views(self, live_only: bool = False) -> List[ProgressView]:
        """The distinct progress-view objects, identity-deduplicated.

        Mirror processes (added by :meth:`add_process`) alias process
        0's view object, so iterating ``self.views`` would visit it
        twice — a fence or flush applied through this helper lands on
        each object exactly once.  ``live_only`` restricts to current
        members: a removed process's view is stale by design and must
        not vote in agreement checks.
        """
        if not self.views:
            return []
        processes = (
            self.live_processes if live_only else range(len(self.views))
        )
        seen: set = set()
        unique: List[ProgressView] = []
        for process in processes:
            view = self.views[process]
            if id(view) in seen:
                continue
            seen.add(id(view))
            unique.append(view)
        return unique

    # ------------------------------------------------------------------
    # Inputs (the external producer feeds all workers' input vertices).
    # ------------------------------------------------------------------

    def _input_epoch(self, stage: Stage, records: List[Any], epoch: int) -> None:
        # Journal first (the durable replay log), then release through
        # the recovery manager — which defers the release while a
        # checkpoint barrier is draining the cluster.
        self.recovery.journal_epoch(stage, records, epoch)

    def _input_closed(self, stage: Stage, next_epoch: int) -> None:
        self.recovery.journal_close(stage, next_epoch)

    def _release_epoch(self, stage: Stage, records: List[Any], epoch: int) -> None:
        timestamp = Timestamp(epoch)
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "input",
                    self.sim.now,
                    0.0,
                    perf_counter(),
                    -1,
                    0,
                    stage.name,
                    (epoch,),
                    (record_count(records),),
                )
            )
        updates: List[Tuple[Pointstamp, int]] = []
        ac = self.async_ckpt
        for connector in stage.outputs[0]:
            for dest, batch in self._partition_input(connector, records):
                updates.append((Pointstamp(timestamp, connector), +1))
                worker = self.workers[dest]
                tag = 0
                key = None
                if ac is not None:
                    tag = ac.cycle
                    key = ac.register_inflight(
                        -1, dest, connector, batch, timestamp, 0, tag
                    )
                self.sim.schedule(
                    0.0, lambda w=worker, c=connector, b=batch, t=timestamp, g=tag, k=key: (
                        w.enqueue_message(c, b, t, 0, -1, -1.0, g, k)
                    )
                )
        updates.append((Pointstamp(Timestamp(epoch + 1), stage), +1))
        updates.append((Pointstamp(timestamp, stage), -1))
        self._controller_broadcast(updates)

    def _partition_input(
        self, connector: Connector, records: List[Any]
    ) -> List[Tuple[int, List[Any]]]:
        """Distribute one epoch of input across workers.

        Ingest itself is free (each computer reads its partition from
        local storage, as in the paper's experiments); partitioned
        connectors are honoured so keyed consumers stay correct.
        """
        if not records:
            return []
        total = self.total_workers
        buckets: Dict[int, List[Any]] = {}
        if connector.partitioner is not None:
            partitioner = connector.partitioner
            for record in records:
                buckets.setdefault(partitioner(record) % total, []).append(record)
        else:
            for offset, record in enumerate(records):
                buckets.setdefault(offset % total, []).append(record)
        shares = list(buckets.items())
        schema = connector.columnar
        if schema is not None:
            # Encode each conforming share at the ingest boundary so the
            # whole downstream path moves batches.
            encoded = []
            for dest, share in shares:
                batch = ColumnarBatch.from_records(share, schema)
                encoded.append((dest, share if batch is None else batch))
            return encoded
        return shares

    def _release_close(self, stage: Stage, next_epoch: int) -> None:
        self._controller_broadcast(
            [(Pointstamp(Timestamp(next_epoch), stage), -1)]
        )

    def _controller_broadcast(self, updates: List[Tuple[Pointstamp, int]]) -> None:
        """Low-volume control-plane updates from the controller (proc 0)."""
        size = wire_size(updates)
        fence = self._progress_fence
        for dst in list(self.live_processes):
            node = self.nodes[dst]
            deliver = lambda n=node: n.receive(updates, ())
            if fence is not None:
                deliver = fence.register(0, dst, deliver)
            self.network.send(0, dst, size, "progress", deliver)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> None:
        if self.backend != "mp" or self.pool is not None:
            return
        from ..parallel import DEFAULT_POOL_WORKERS, VertexPool

        self.pool = VertexPool(self, self.pool_workers or DEFAULT_POOL_WORKERS)
        self.sim.dispatcher = self.pool

    def close(self) -> None:
        """Shut down the execution backend (the mp pool's children)."""
        if self.pool is not None:
            self.pool.close()
            self.pool = None
            self.sim.dispatcher = None

    def step(self) -> bool:
        if self._built:
            self._ensure_pool()
        return self.sim.step()

    def run(
        self,
        max_steps: Optional[int] = None,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the simulation until idle; returns virtual elapsed time.

        ``max_steps`` bounds delivered simulator events and ``until``
        bounds virtual time — the unified :class:`TimelyRuntime`
        spellings.  ``max_events`` is the historical name for
        ``max_steps`` and is deprecated.
        """
        if max_events is not None:
            warnings.warn(
                "ClusterComputation.run(max_events=...) is deprecated; "
                "use max_steps",
                DeprecationWarning,
                stacklevel=2,
            )
            if max_steps is None:
                max_steps = max_events
        self._check_built()
        self._ensure_pool()
        start = self.sim.now
        self.sim.run(until=until, max_events=max_steps)
        return self.sim.now - start

    def drained(self) -> bool:
        return (
            all(
                len(view.state) == 0
                for view in self._unique_views(live_only=True)
            )
            and not any(worker.has_work() for worker in self.workers)
            and self.sim.pending_events == 0
        )

    def frontier(self) -> List[Pointstamp]:
        """The process-0 view's frontier (a conservative global view)."""
        self._check_built()
        return self.views[0].state.frontier()

    def debug_state(self) -> RuntimeDebugState:
        lines = ["t=%.6f pending_events=%d" % (self.sim.now, self.sim.pending_events)]
        ft = self.fault_tolerance
        lines.append(
            "  fault-tolerance: mode=%s recovery=%s%s"
            % (
                ft.mode,
                ft.recovery,
                " (checkpoint barrier draining)"
                if self.recovery is not None and self.recovery.paused
                else "",
            )
        )
        if self.recovery is not None:
            lines.extend(self.recovery.describe())
        if self.async_ckpt is not None:
            lines.extend(self.async_ckpt.describe())
        if self.rescale_generation or self.live_processes != list(
            range(self.num_processes)
        ):
            lines.append(
                "  membership: live=%r generation=%d removed=%r"
                % (
                    tuple(self.live_processes),
                    self.rescale_generation,
                    tuple(sorted(self._removed_processes)),
                )
            )
        for process, view in enumerate(self.views):
            if process in self._mirror_processes:
                continue  # aliases process 0's view; already shown
            if len(view.state):
                lines.append(
                    "  process %d view: %r" % (process, view.state.occurrence)
                )
        for worker in self.workers:
            if worker.has_work():
                lines.append(
                    "  worker %d (process %d): queue=%d pending=%r"
                    % (
                        worker.index,
                        worker.process,
                        len(worker.queue),
                        worker.pending_notifications,
                    )
                )
        for node in self.nodes:
            if node.buffer:
                lines.append("  node %d buffer: %r" % (node.process, node.buffer))
        if self.central is not None and self.central.buffer:
            lines.append("  central buffer: %r" % (self.central.buffer,))
        recovery = self.recovery
        ft_info: Dict[str, Any] = {
            "mode": ft.mode,
            "recovery": ft.recovery,
            "checkpoint_mode": ft.checkpoint_mode,
            "draining": bool(recovery is not None and recovery.paused),
            "live_processes": tuple(self.live_processes),
            "rescale_generation": self.rescale_generation,
        }
        if self.async_ckpt is not None:
            ft_info.update(
                async_cycle=self.async_ckpt.cycle,
                async_completed_cycle=self.async_ckpt.completed_cycle,
                async_durable_cycle=self.async_ckpt.durable_cycle,
                async_active=self.async_ckpt.active,
            )
        if recovery is not None:
            ft_info.update(
                checkpoints=recovery.checkpoint_count,
                last_checkpoint_time=recovery.last_checkpoint_time,
                journal_entries=len(recovery.journal),
                journal_released=recovery.released,
                logged_batches=recovery.logged_batches,
                logged_bytes=recovery.logged_bytes,
            )
        frontier: Tuple[Tuple[int, ...], ...] = ()
        if self._built:
            frontier = tuple(
                sorted(
                    timestamp_tuple(p.timestamp)
                    for p in self.views[0].state.frontier()
                )
            )
        return RuntimeDebugState(
            runtime=type(self).__name__,
            now=self.sim.now,
            pending_events=self.sim.pending_events,
            delivered_messages=sum(w.delivered_messages for w in self.workers),
            delivered_notifications=sum(
                w.delivered_notifications for w in self.workers
            ),
            queued_messages=sum(len(w.queue) for w in self.workers),
            pending_notifications=sum(
                sum(w.pending_notifications.values()) for w in self.workers
            ),
            fault_tolerance=ft_info,
            dead_processes=tuple(sorted(recovery.dead_processes))
            if recovery is not None
            else (),
            failures=tuple(dict(f) for f in recovery.failures)
            if recovery is not None
            else (),
            busy_workers=tuple(
                (w.index, w.process, len(w.queue))
                for w in self.workers
                if w.has_work()
            ),
            frontier=frontier,
            text="\n".join(lines),
        )

    # ------------------------------------------------------------------
    # Fault tolerance (section 3.4): checkpoint barrier, failure
    # injection, rollback recovery.  The cycle itself lives in
    # :class:`repro.runtime.checkpoint.RecoveryManager`.
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Take a consistent checkpoint now and return the snapshot.

        Same signature as :meth:`repro.core.Computation.checkpoint`.
        Drives the simulation to quiescence (delivering any outstanding
        work), flushes the progress-protocol accumulators so every
        process view agrees, then snapshots vertices, pending
        notifications and occurrence counts.  The snapshot becomes the
        durable rollback target for subsequent failures, and the write
        pause is charged to virtual time.
        """
        self._check_built()
        self._check_not_in_event("checkpoint")
        self._ensure_pool()
        recovery = self.recovery
        ac = self.async_ckpt
        if ac is not None:
            # Marker-based asynchronous cut: start a cycle (unless one is
            # already in flight) and step the DES — computation keeps
            # running — until that cut is assembled and durable.
            if not ac.active:
                ac.begin_cycle()
            target = ac.cycle
            while ac.durable_cycle < target:
                if not ac.active and ac.completed_cycle < target:
                    # The in-progress cycle was abandoned (a failure
                    # arrived mid-cut); start a fresh one.
                    ac.begin_cycle()
                    target = ac.cycle
                    continue
                if not self.sim.step():
                    raise RuntimeError(
                        "async checkpoint cycle stalled before completing:\n"
                        + self.debug_state().text
                    )
            return recovery.snapshot
        while True:
            self.sim.run()
            self._flush_protocol_buffers()
            for worker in self.workers:
                worker.activate()
            if self.sim.pending_events == 0 and recovery.quiescent():
                break
        return recovery.complete_checkpoint()

    def checkpoint_vertex_states(self) -> Dict[Tuple[int, int], Any]:
        """Snapshot every vertex's state, keyed ``(stage.index, worker)``.

        Under the mp backend the authoritative state of pool-executed
        vertices lives in the pool children; those are pulled over the
        pipes first and the coordinator-pinned remainder (system stages,
        ``coordinator_only`` vertices) fills in locally.  The caller
        guarantees quiescence.
        """
        states: Dict[Tuple[int, int], Any] = (
            self.pool.checkpoint_states() if self.pool is not None else {}
        )
        for (stage, index), vertex in self.vertices.items():
            key = (stage.index, index)
            if key not in states:
                states[key] = vertex.checkpoint()
        return states

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Roll the cluster back to ``snapshot`` and replay the input
        journal recorded since it was taken.

        Same signature as :meth:`repro.core.Computation.restore`, with
        recovery semantics: input supplied after the checkpoint is not
        forgotten — it re-executes from the journal, and outputs already
        released to subscribers are suppressed (exactly-once).  Call
        :meth:`run` afterwards to drive the replay to completion.
        """
        self._check_built()
        self._check_not_in_event("restore")
        self.recovery.rollback_to(snapshot)

    def kill_process(self, process: int, at: Optional[float] = None) -> None:
        """Inject a process failure (now, or at virtual time ``at``).

        The process's workers, queues and in-flight messages are lost;
        every peer rolls back to the latest durable checkpoint (the
        built state if none was taken) and the journaled input replays.
        Placement of the dead process's workers follows
        ``FaultTolerance.recovery``.
        """
        self._check_built()
        if not 0 <= process < self.num_processes:
            raise ValueError(
                "process %d out of range (cluster has %d)"
                % (process, self.num_processes)
            )
        if at is None:
            self._check_not_in_event("kill_process")
            self.recovery.fail_process(process)
        else:
            self.sim.schedule_at(at, lambda: self.recovery.fail_process(process))

    # ------------------------------------------------------------------
    # Self-healing: silent crashes, generation fencing and supervised
    # recovery (repro.runtime.supervisor).
    # ------------------------------------------------------------------

    def crash_process(self, process: int, at: Optional[float] = None) -> None:
        """Crash a process *silently* (now, or at virtual time ``at``).

        Unlike :meth:`kill_process`, nothing is told: the hosted workers
        simply stop executing (their scheduled events become no-ops) and
        no recovery runs.  The cluster will hang on the lost work unless
        a :class:`repro.runtime.supervisor.Supervisor` notices the
        missing heartbeats, fences the dead incarnation, and drives
        recovery itself.
        """
        self._check_built()
        if not 0 <= process < self.num_processes:
            raise ValueError(
                "process %d out of range (cluster has %d)"
                % (process, self.num_processes)
            )
        if process == 0:
            raise ValueError(
                "process 0 hosts the controller and the supervisor and "
                "cannot crash silently"
            )
        if at is None:
            self._check_not_in_event("crash_process")
            self._crash_now(process)
        else:
            self.sim.schedule_at(at, lambda: self._crash_now(process))

    def _crash_now(self, process: int) -> None:
        if process in self._removed_processes:
            return
        if self.recovery is not None and process in self.recovery.dead_processes:
            return
        hosted = [w for w in self.workers if w.process == process and not w.dead]
        if not hosted:
            return
        for worker in hosted:
            # Frozen, not replaced: recovery has not run, so the worker
            # object stays in place with its queue intact — exactly what
            # a machine that stops responding looks like from outside.
            worker.dead = True
        self.crashes.append(
            {
                "process": process,
                "at": self.sim.now,
                "generation": self.generations[process],
            }
        )
        if self._trace is not None:
            self._trace.emit(
                TraceEvent(
                    "detect",
                    self.sim.now,
                    0.0,
                    perf_counter(),
                    -1,
                    process,
                    "crash",
                    (),
                    (len(hosted), self.generations[process]),
                )
            )

    def _fence_process(self, process: int) -> int:
        """Advance ``process``'s incarnation and settle its outstanding
        progress copies; returns how many copies were settled.

        After this, every data message and progress copy the old
        incarnation still has in flight is provably stale and will be
        discarded at delivery — a zombie (falsely suspected, paused, or
        partitioned-away process) can keep talking forever without any
        of it being applied.
        """
        settled = 0
        if self._progress_fence is not None:
            settled = self._progress_fence.settle(process)
        self.generations[process] += 1
        if self._trace is not None:
            self._trace.emit(
                TraceEvent(
                    "detect",
                    self.sim.now,
                    0.0,
                    perf_counter(),
                    -1,
                    process,
                    "fence",
                    (),
                    (settled, self.generations[process]),
                )
            )
        return settled

    def _evict_process(self, process: int) -> None:
        """Drop a quarantined process from the membership for good.

        Only valid after a reassign recovery already moved its workers:
        eviction is then the pure-bookkeeping branch of the
        ``remove_process`` path (membership drop + rescale record)."""
        self._execute_remove(process)

    def attach_supervisor(self, config=None, autoscaler=None):
        """Attach and start a self-healing supervisor on process 0.

        Returns the started :class:`repro.runtime.supervisor.Supervisor`.
        """
        from .supervisor import Supervisor

        self.supervisor = Supervisor(self, config, autoscaler).start()
        return self.supervisor

    # ------------------------------------------------------------------
    # Elastic rescaling: grow or shrink the live process set while the
    # computation keeps running.  Both operations wait for a *fresh*
    # durable asynchronous cut and then migrate only the moving workers
    # via the partial-rollback machinery — the survivors' live state is
    # never touched (see DESIGN.md, "Elastic rescaling").
    # ------------------------------------------------------------------

    def _check_rescalable(self, name: str) -> None:
        """Eagerly reject configurations that cannot rescale, with the
        reason, instead of failing deep inside a migration cut."""
        ft = self.fault_tolerance
        if ft.checkpoint_mode != "async":
            raise ValueError(
                "%s() requires FaultTolerance(checkpoint_mode='async'): "
                "migration ships state over a marker-based cut taken "
                "under live load, which the stop-the-world 'barrier' "
                "mode cannot provide (got checkpoint_mode=%r)"
                % (name, ft.checkpoint_mode)
            )
        if ft.recovery != "reassign":
            raise ValueError(
                "%s() requires FaultTolerance(recovery='reassign'): "
                "moving workers between processes is exactly the "
                "reassign placement; recovery='restart' pins every "
                "worker to its original process (got recovery=%r)"
                % (name, ft.recovery)
            )

    def _live_hosts(self) -> List[int]:
        """Live members that can actually host workers (not dead)."""
        dead = self.recovery.dead_processes if self.recovery is not None else ()
        return [p for p in self.live_processes if p not in dead]

    def add_process(self, at: Optional[float] = None) -> Optional[int]:
        """Grow the cluster by one process while the computation runs.

        Waits for a fresh durable asynchronous cut, then migrates an
        even share of workers — drawn from the most-loaded hosts — to
        the new process by restoring *only their* cut state there and
        replaying their journal suffix; every other worker keeps its
        live state and keeps running.  Requires
        ``FaultTolerance(checkpoint_mode="async", recovery="reassign")``.

        With ``at=None`` the call is synchronous (drives the simulation
        until the migration completes) and returns the new process
        index; with ``at`` it is scheduled at that virtual time and
        returns None (the completed change appears in
        :attr:`rescales`).
        """
        self._check_built()
        self._check_rescalable("add_process")
        hosting = len(self._live_hosts())
        if self.total_workers // (hosting + 1) < 1:
            raise ValueError(
                "add_process(): %d workers across %d hosts leaves no "
                "share for a new process; grow workers_per_process "
                "instead" % (self.total_workers, hosting)
            )
        return self._submit_rescale(("add", None), at)

    def remove_process(self, process: int, at: Optional[float] = None) -> None:
        """Gracefully drain ``process`` out of the cluster.

        Planned departure, not a kill: the operation waits for a fresh
        durable cut, force-flushes the departing node's withheld
        progress updates, rehomes its workers round-robin across the
        survivors (restoring only *their* state, with replay dedup
        keeping deliveries exactly-once), and drops the process from
        the broadcast membership.  Requires
        ``FaultTolerance(checkpoint_mode="async", recovery="reassign")``.
        """
        self._check_built()
        self._check_rescalable("remove_process")
        if not 0 <= process < self.num_processes:
            raise ValueError(
                "process %d out of range (cluster has %d)"
                % (process, self.num_processes)
            )
        if process == 0:
            raise ValueError(
                "process 0 hosts the input controller and the progress "
                "accumulator and cannot be removed"
            )
        if (
            process in self._removed_processes
            or process not in self.live_processes
        ):
            raise ValueError("process %d has already been removed" % process)
        if process in self.recovery.dead_processes:
            raise ValueError(
                "process %d is dead; its workers were already reassigned "
                "to the survivors" % process
            )
        if len(self._live_hosts()) <= 1:
            raise ValueError(
                "remove_process(%d) would leave no live process to host "
                "the workers" % process
            )
        self._submit_rescale(("remove", process), at)

    def _submit_rescale(
        self, op: Tuple[str, Optional[int]], at: Optional[float]
    ) -> Optional[int]:
        if at is not None:
            def queue_op() -> None:
                self._rescale_queue.append(op)
                self._pump_rescales()

            self.sim.schedule_at(at, queue_op)
            return None
        self._check_not_in_event("add_process/remove_process")
        self._ensure_pool()
        marker = len(self.rescales)
        self._rescale_queue.append(op)
        self._arm_pump_at(self.sim.now)
        while len(self.rescales) <= marker:
            if not self.sim.step():
                raise RuntimeError(
                    "rescale stalled before completing:\n"
                    + self.debug_state().text
                )
        record = self.rescales[marker]
        return record["process"] if record["kind"] == "add" else None

    def _pump_rescales(self) -> None:
        """Drive queued rescale operations forward.

        A small state machine re-armed off the DES event stream: wait
        until no journal-replay dedup is draining (migrating mid-replay
        could not tell replayed duplicates from migrated re-sends),
        take a *fresh* durable cut so the moving workers' state and
        ledger entries are current, re-check, then execute the
        membership change.  The computation keeps running throughout.
        """
        # Invalidate any armed wake-up: this call supersedes it.  Keeping
        # at most one live pump event matters — two pump events at the
        # same instant would each see the other as the "next event" when
        # re-arming and spin at a frozen virtual time forever.
        self._rescale_pump_token += 1
        ac = self.async_ckpt
        while True:
            state = self._rescale_active
            if state is None:
                if not self._rescale_queue:
                    return
                state = self._rescale_active = {
                    "op": self._rescale_queue.pop(0),
                    "stage": "dedup",
                    "target": 0,
                }
            if state["stage"] == "dedup":
                if ac.replay_dedup:
                    # A replay is draining (pending deliveries exist):
                    # wake up when the system next moves.
                    self._rearm_rescale()
                    return
                if not ac.active:
                    ac.begin_cycle()
                state["target"] = ac.cycle
                state["stage"] = "cut"
            if ac.durable_cycle < state["target"]:
                if not ac.active and ac.completed_cycle < state["target"]:
                    # The cycle was abandoned (a failure rolled back
                    # mid-cut); start over from a clean point now —
                    # waiting for an event first could strand the op if
                    # the abandonment was the last event in the queue.
                    state["stage"] = "dedup"
                    continue
                self._rearm_rescale()
                return
            if ac.replay_dedup:
                # A failure recovered between our cut and now; its
                # replay must drain before the migration can start.
                state["stage"] = "dedup"
                self._rearm_rescale()
                return
            kind, process = state["op"]
            self._rescale_active = None
            if kind == "add":
                self._execute_add()
            else:
                self._execute_remove(process)
            # Loop: a queued follow-up op starts its own cut right away
            # (the just-finished execution may have been the final
            # pending event, leaving nothing to re-arm against).

    def _rearm_rescale(self) -> None:
        upcoming = self.sim.next_event_time
        if upcoming is None:
            raise RuntimeError(
                "rescale stalled: no pending events while waiting for "
                "the migration cut:\n" + self.debug_state().text
            )
        # Same-time events run in scheduling order, so the pump fires
        # after the event it is waiting on.
        self._arm_pump_at(max(upcoming, self.sim.now))

    def _arm_pump_at(self, time: float) -> None:
        """Schedule the rescale pump, invalidating any earlier arming.

        The pump can be armed from several places (a re-arm while it
        waits for the cut, a scheduled ``at=`` submission firing, a
        synchronous submission); the token ensures only the most recent
        arming fires, so there is never more than one live pump event.
        """
        token = self._rescale_pump_token

        def fire() -> None:
            if token == self._rescale_pump_token:
                self._pump_rescales()

        self.sim.schedule_at(time, fire)

    def _migration_delay(self, moving: List[int]) -> float:
        """Virtual-time cost of shipping the moving workers' snapshot
        state and exactly-once ledger entries to their new home."""
        ft = self.fault_tolerance
        net = self.network.config
        moving_set = set(moving)
        state_bytes = ft.state_bytes_per_worker * len(moving)
        ledger_entries = sum(
            1 for entry in self.async_ckpt.journal if entry[1] in moving_set
        )
        return (
            state_bytes / ft.disk_bandwidth
            + (state_bytes + 64 * ledger_entries) / net.bandwidth
            + 2 * net.latency
        )

    def _execute_add(self) -> None:
        now = self.sim.now
        process = self.network.add_process()
        self.num_processes += 1
        # The new process mirrors process 0's progress view: the shared
        # object already holds a consistent occurrence picture, and the
        # mirror flag on the new protocol node keeps broadcast deltas
        # from being applied to it twice.
        self.views.append(self.views[0])
        node = ProtocolNode(
            process,
            self.num_processes,
            self.progress_mode,
            self.views[0],
            self.network,
            self.nodes,
            self.central,
            members=self.live_processes,
            mirror=True,
        )
        if self._proj_table:
            node.scope_pending = self._node_scope_pending(process)
            node.defer_flush = self._defer_flush
        node.fence = self._progress_fence
        self.nodes.append(node)
        self.generations.append(0)
        for peer in self.nodes:
            peer.num_processes = self.num_processes
        if self.central is not None:
            self.central.num_processes = self.num_processes
        self.live_processes.append(process)
        self._mirror_processes.append(process)
        # Pick the migrating share: repeatedly take the highest-index
        # worker from the most-loaded donor, never draining a donor
        # below one worker.
        hosts = [p for p in self._live_hosts() if p != process]
        loads: Dict[int, List[int]] = {p: [] for p in hosts}
        for index, owner in enumerate(self._worker_process):
            if owner in loads:
                loads[owner].append(index)
        for owned in loads.values():
            owned.sort()
        share = self.total_workers // (len(hosts) + 1)
        moving: List[int] = []
        while len(moving) < share:
            donor = max(loads, key=lambda p: (len(loads[p]), -p))
            if len(loads[donor]) <= 1:
                break
            moving.append(loads[donor].pop())
        moving.sort()
        snapshot = self.recovery.snapshot or self.recovery.initial
        ready = now + self._migration_delay(moving)
        injected = self.async_ckpt.partial_rollback(
            -1,
            snapshot,
            ready,
            moving=moving,
            placement={index: process for index in moving},
            reason="rescale",
            flush_node=None,
        )
        self._note_rescale("add", process, moving, ready, injected)

    def _execute_remove(self, process: int) -> None:
        now = self.sim.now
        if process not in self.live_processes:
            return  # already gone (a queued duplicate); nothing to do
        moving = [
            index
            for index, owner in enumerate(self._worker_process)
            if owner == process
        ]
        survivors = [p for p in self._live_hosts() if p != process]
        # Leave the membership first: the departing node's view goes
        # stale by design, broadcasts stop targeting it, and agreement
        # checks (drained, snapshot assembly) no longer count it.
        self.live_processes.remove(process)
        self._removed_processes.add(process)
        if not moving:
            # It hosted nothing (e.g. it died earlier under reassign
            # and its workers already moved): pure bookkeeping.
            self._note_rescale("remove", process, moving, now, 0)
            return
        placement = {
            index: survivors[cursor % len(survivors)]
            for cursor, index in enumerate(moving)
        }
        snapshot = self.recovery.snapshot or self.recovery.initial
        ready = now + self._migration_delay(moving)
        injected = self.async_ckpt.partial_rollback(
            process,
            snapshot,
            ready,
            moving=moving,
            placement=placement,
            reason="rescale",
            flush_node=process,
        )
        self._note_rescale("remove", process, moving, ready, injected)

    def _note_rescale(
        self,
        kind: str,
        process: int,
        moving: List[int],
        ready: float,
        injected: int,
    ) -> None:
        self.rescale_generation += 1
        now = self.sim.now
        record = {
            "kind": kind,
            "process": process,
            "at": now,
            "ready": ready,
            "workers": tuple(moving),
            "injected": injected,
            "generation": self.rescale_generation,
            "live": tuple(self.live_processes),
        }
        self.rescales.append(record)
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "rescale",
                    now,
                    max(0.0, ready - now),
                    perf_counter(),
                    -1,
                    process,
                    kind,
                    (),
                    (
                        kind,
                        self.rescale_generation,
                        len(self.live_processes),
                        tuple(moving),
                        injected,
                    ),
                )
            )

    def _check_not_in_event(self, name: str) -> None:
        # Re-entering the control API from inside a simulator event (a
        # vertex callback, a subscription) would re-run the event loop
        # under the caller's feet; schedule the call instead.
        if self.sim.in_event:
            raise RuntimeError(
                "%s() may not be called from inside a vertex callback; "
                "use sim.schedule_at() or call it between run()s" % name
            )

    def _flush_protocol_buffers(self) -> None:
        """Synchronously disseminate all withheld progress updates.

        Part of the checkpoint barrier: once nothing is in flight, the
        updates held in per-process accumulators (under the section 3.3
        safety condition) and in the central accumulator are applied
        directly to every view, bringing all processes to agreement.
        """
        updates: List[Tuple[Pointstamp, int]] = []
        for node in self.nodes:
            updates.extend(node.drain_buffer())
        if self.central is not None:
            updates.extend(self.central.drain_buffer())
        merged = net_updates(updates)
        if merged:
            for view in self._unique_views():
                view.apply(list(merged))

    def _rebuild_workers(self, busy_until: float = 0.0) -> None:
        """Replace every worker object (global rollback after a kill).

        Old workers are flagged dead so their already-scheduled events
        become no-ops; vertices are re-bound to the replacements, which
        start idle at ``busy_until`` (the recovery-ready time).
        """
        for worker in self.workers:
            worker.dead = True
        # Every queue dies with its worker; re-injected deliveries pass
        # through enqueue_message and re-increment the pending tables.
        self._scope_pending.clear()
        self._scope_pending_total.clear()
        self.workers = [_Worker(self, index) for index in range(self.total_workers)]
        for worker in self.workers:
            worker.busy_until = busy_until
        self._rebuild_process_index()
        for (stage, index), vertex in self.vertices.items():
            vertex._harness = self.workers[index]
        if self.pool is not None:
            # Claims and in-flight tasks reference the dead workers;
            # drain and drop them before the snapshot is shipped back.
            self.pool.reset()

    def _replace_workers(
        self, indices: List[int], busy_until: float = 0.0
    ) -> None:
        """Replace only ``indices``'s worker objects (partial rollback).

        The survivors' workers — queues, pending notifications, claim
        protocol state — are left untouched; the named workers are
        flagged dead (their scheduled events become no-ops) and fresh
        replacements take their place, idle until ``busy_until``.
        """
        replaced = set(indices)
        if self._proj_table:
            # The dying workers' queued interior deliveries vanish;
            # their re-injections re-increment through enqueue_message.
            for index in indices:
                worker = self.workers[index]
                for entry in worker.queue:
                    self._note_scope_dequeue(entry[0], entry[2], worker.process)
        for index in indices:
            self.workers[index].dead = True
            self.workers[index] = _Worker(self, index)
            self.workers[index].busy_until = busy_until
        self._rebuild_process_index()
        for (stage, index), vertex in self.vertices.items():
            if index in replaced:
                vertex._harness = self.workers[index]

    def _restore_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Load a consistent cut into the (freshly rebuilt) cluster."""
        by_index = {stage.index: stage for stage in self.graph.stages}
        for (stage_index, worker_index), state in snapshot["vertices"].items():
            self.vertices[(by_index[stage_index], worker_index)].restore(state)
        if self.pool is not None:
            # The children's resident copies are the authoritative ones
            # for pool-executed vertices; roll those back too.
            self.pool.restore_states(snapshot["vertices"])
        for worker in self.workers:
            worker.pending_notifications = dict(
                snapshot["pending"].get(worker.index, {})
            )
            worker.pending_cleanups = dict(
                snapshot["cleanups"].get(worker.index, {})
            )
            worker._pending_rev += 1
        for node in self.nodes:
            node.reset()
        if self.central is not None:
            self.central.reset()
        occurrence = snapshot["occurrence"]
        if self._proj_table:
            # Async snapshots assemble occurrence in interior coordinates;
            # barrier snapshots copy already-projected views.  Projection
            # is idempotent, so one site restores both.
            occurrence = dict(
                net_updates(self._project_updates(list(occurrence.items())))
            )
        for view in self._unique_views():
            view.reset(occurrence)
        if self.async_ckpt is not None:
            self.async_ckpt.note_global_restore(snapshot)
        for worker in self.workers:
            worker.activate()

    def __repr__(self) -> str:
        return "ClusterComputation(%d procs x %d workers, mode=%s)" % (
            self.num_processes,
            self.workers_per_process,
            self.progress_mode,
        )
