"""Tests for the synthetic workload generators."""

from collections import Counter


from repro.workloads import (
    TweetGenerator,
    TweetStreamConfig,
    generate_corpus,
    hashtag_records,
    mention_edges,
    power_law_graph,
    undirected_adjacency,
    uniform_random_graph,
    weak_scaling_graph,
    zorder,
)


class TestGraphs:
    def test_uniform_random_shape(self):
        edges = uniform_random_graph(100, 500, seed=1)
        assert len(edges) == 500
        assert all(0 <= u < 100 and 0 <= v < 100 for u, v in edges)

    def test_deterministic_by_seed(self):
        assert uniform_random_graph(50, 100, seed=3) == uniform_random_graph(
            50, 100, seed=3
        )
        assert uniform_random_graph(50, 100, seed=3) != uniform_random_graph(
            50, 100, seed=4
        )

    def test_power_law_degree_skew(self):
        edges = power_law_graph(500, edges_per_node=3, seed=2)
        in_degree = Counter(v for _, v in edges)
        degrees = sorted(in_degree.values(), reverse=True)
        # Heavy tail: the top node dominates the median node.
        assert degrees[0] > 10 * degrees[len(degrees) // 2]

    def test_power_law_edges_point_backwards(self):
        edges = power_law_graph(100, edges_per_node=2, seed=0)
        assert all(target < node for node, target in edges)

    def test_weak_scaling_sizes(self):
        small = weak_scaling_graph(2, 100, 200, seed=5)
        large = weak_scaling_graph(8, 100, 200, seed=5)
        assert len(small) == 400
        assert len(large) == 1600
        assert max(max(e) for e in large) < 800

    def test_undirected_adjacency(self):
        adjacency = undirected_adjacency([(1, 2), (2, 3)])
        assert sorted(adjacency[2]) == [1, 3]

    def test_zorder_interleaves(self):
        assert zorder(0, 0) == 0
        assert zorder(0, 1) == 1
        assert zorder(1, 0) == 2
        assert zorder(1, 1) == 3
        # Locality: nearby coordinates map to nearby codes more often
        # than far ones (coarse check on one axis).
        assert abs(zorder(5, 5) - zorder(5, 6)) < abs(zorder(5, 5) - zorder(40, 40))


class TestText:
    def test_corpus_shape(self):
        corpus = generate_corpus(100, words_per_line=7, vocabulary_size=50, seed=1)
        assert len(corpus) == 100
        assert all(len(line.split()) == 7 for line in corpus)

    def test_zipf_head_dominates(self):
        corpus = generate_corpus(500, words_per_line=10, vocabulary_size=100, seed=1)
        counts = Counter(w for line in corpus for w in line.split())
        ranked = [c for _, c in counts.most_common()]
        assert ranked[0] > 5 * ranked[min(30, len(ranked) - 1)]

    def test_vocabulary_respected(self):
        corpus = generate_corpus(50, vocabulary_size=10, seed=2)
        words = {w for line in corpus for w in line.split()}
        assert words <= {"w%05d" % i for i in range(10)}

    def test_deterministic(self):
        assert generate_corpus(20, seed=7) == generate_corpus(20, seed=7)


class TestTweets:
    def test_batch_and_extraction(self):
        generator = TweetGenerator(TweetStreamConfig(seed=3))
        batch = generator.batch(200)
        assert len(batch) == 200
        edges = mention_edges(batch)
        tags = hashtag_records(batch)
        assert all(isinstance(u, int) and isinstance(v, int) for u, v in edges)
        assert all(tag.startswith("#") for _, tag in tags)

    def test_rates_follow_config(self):
        config = TweetStreamConfig(
            mention_probability=1.0, hashtag_probability=0.0, seed=1
        )
        batch = TweetGenerator(config).batch(50)
        assert all(tweet.mentions for tweet in batch)
        assert all(not tweet.hashtags for tweet in batch)

    def test_user_skew(self):
        generator = TweetGenerator(TweetStreamConfig(num_users=1000, seed=5))
        users = Counter(t.user for t in generator.batch(2000))
        top = users.most_common(1)[0][1]
        assert top > 20  # a celebrity exists

    def test_query_in_range(self):
        generator = TweetGenerator(TweetStreamConfig(num_users=10, seed=2))
        assert all(0 <= generator.query() < 10 for _ in range(100))

    def test_deterministic(self):
        a = TweetGenerator(TweetStreamConfig(seed=9)).batch(20)
        b = TweetGenerator(TweetStreamConfig(seed=9)).batch(20)
        assert a == b
