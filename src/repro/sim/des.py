"""A small discrete-event simulation kernel.

The distributed runtime of :mod:`repro.runtime` executes on this
simulator: workers, network links and protocol actors schedule callbacks
at points in *virtual time*.  Causality within the simulation is real —
vertices really execute and exchange real records — while elapsed time
and bytes are modeled, which is what makes laptop-scale reproduction of
the paper's cluster experiments possible (see DESIGN.md).

Events scheduled for the same instant fire in schedule order (a stable
FIFO tie-break), which keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional, Tuple


class Simulator:
    """An event queue with a virtual clock and a seeded RNG."""

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._background: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._events_executed = 0
        self.in_event = False

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(
                "cannot schedule at %r; the clock is already at %r" % (time, self.now)
            )
        heapq.heappush(self._queue, (time, self._sequence, callback))
        self._sequence += 1

    def schedule_background(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule an environment event (e.g. a GC pause generator).

        Background events fire only while foreground work remains; they
        never keep the simulation alive on their own, so perpetual
        self-rescheduling processes cannot prevent quiescence.
        """
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        heapq.heappush(self._background, (self.now + delay, self._sequence, callback))
        self._sequence += 1

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        horizon = self._queue[0][0]
        self.in_event = True
        try:
            while self._background and self._background[0][0] <= horizon:
                time, _, callback = heapq.heappop(self._background)
                self.now = max(self.now, time)
                callback()
                horizon = self._queue[0][0]
            time, _, callback = heapq.heappop(self._queue)
            self.now = max(self.now, time)
            callback()
        finally:
            self.in_event = False
        self._events_executed += 1
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when virtual time would pass
        ``until``, or after ``max_events`` events.  Returns the number of
        events executed by this call.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest pending foreground event.

        ``None`` when the queue is empty.  Used by processes that must
        wait for the system to settle (e.g. the checkpoint quiescence
        probe) to re-poll exactly when something next happens instead of
        busy-waiting in virtual time.
        """
        return self._queue[0][0] if self._queue else None

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def __repr__(self) -> str:
        return "Simulator(now=%.6f, pending=%d)" % (self.now, len(self._queue))
