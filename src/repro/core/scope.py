"""Scoped, hierarchical could-result-in summaries (timely-dataflow
scopes over the paper's section 2.3 machinery).

Naiad computes one global path-summary table over every stage and
connector — "the entire dataflow graph in a big pile".  This module
partitions the graph into *scopes* (one per loop context, plus the root
streaming context), computes a :func:`repro.core.pathsummary
.minimal_summaries` table **per scope**, and resolves arbitrary
could-result-in queries hierarchically:

* Every location (stage or connector) belongs to exactly one scope: the
  loop context of its *input* side.  A loop's ingress stage therefore
  belongs to the parent scope while its egress and feedback stages
  belong to the loop scope — exactly the boundary placement of
  timely-dataflow's ``enter``/``leave`` operators.

* Inside a scope's table, each child scope is collapsed to a single
  :class:`ScopeNode` pseudo-location carrying parent-depth timestamps.
  Interior paths of a child never change the parent-depth prefix of a
  timestamp (feedback only increments counters at child depth or
  deeper), so the child's *boundary summary* — ingress, any interior
  path, egress, composed with :meth:`PathSummary.then` — is the
  identity at parent depth; the collapse is exact, not approximate.

* A query between two locations of the same scope uses that scope's
  table at full counter precision.  A query across scopes lifts both
  endpoints to their lowest common ancestor scope — each endpoint
  replaced by the ``ScopeNode`` of the child subtree containing it —
  and consults the ancestor's table.  The resulting summaries have
  ``keep`` at ancestor depth, so applying them to full counter tuples
  compares *truncated* coordinates (Python's lexicographic tuple order
  makes a short candidate compare against the matching prefix), which
  is precisely the projected, conservative verdict the hierarchy
  promises: inner coordinates of other scopes are invisible, and only
  boundary behaviour crosses scope lines.

* Paths that leave a scope and later re-enter it (legal when the
  re-entry is fed purely through a feedback stage) are not visible in
  either endpoint scope's table.  For each child node we additionally
  compute a *reentry* antichain — summaries of non-empty paths from the
  node back to itself at the parent level — and merge it into same-node
  queries at every ancestor level, so the hierarchical relation never
  under-approximates the flat one.

The public entry point is :func:`build_summary_index`, called by
:meth:`DataflowGraph.freeze`; the returned :class:`SummaryIndex` keeps
the mapping interface the old global dict exposed (``get`` /
``in`` / ``[]``), so progress trackers and probes are unchanged
consumers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .pathsummary import Antichain, PathSummary, minimal_summaries
from .timestamp import Timestamp

#: Scopes are keyed by their LoopContext; ``None`` is the root scope.
ScopeKey = Optional["LoopContext"]  # noqa: F821 (graph imports us)


def _scope_depth(scope: ScopeKey) -> int:
    return 0 if scope is None else scope.depth


class ScopeNode:
    """A child scope collapsed to one location in its parent's table.

    Pointstamps at a ``ScopeNode`` carry parent-depth timestamps: they
    assert "work exists somewhere inside this scope at this projected
    time".  The distributed protocol uses them as the boundary-summary
    occupancy locations broadcast instead of interior pointstamps.
    """

    __slots__ = ("context", "name", "index", "depth")

    def __init__(self, context, index: int):
        self.context = context
        self.name = "scope:%s" % context.name
        #: Offset well past stage/connector indices so generic
        #: (timestamp, location.index) tiebreaks stay collision-free.
        self.index = 1_000_000 + index
        #: Depth of the *parent* scope: the depth of timestamps carried
        #: by pointstamps at this node.
        self.depth = context.depth - 1

    def __repr__(self) -> str:
        return "ScopeNode(%s)" % self.context.name


class SummarySet:
    """A small set of path summaries of possibly *different* target
    depths: full-precision same-scope entries next to truncating
    ancestor-level entries.  :class:`Antichain` insists on homogeneous
    depths (a useful invariant inside one table); merged hierarchical
    query results relax it, pruning dominated elements only within the
    same depth."""

    __slots__ = ("elements",)

    def __init__(self):
        self.elements: List[PathSummary] = []

    def insert(self, candidate: PathSummary) -> bool:
        depth = candidate.target_depth
        for element in self.elements:
            if element.target_depth == depth and element.less_equal(candidate):
                return False
        self.elements = [
            element
            for element in self.elements
            if not (
                element.target_depth == depth
                and candidate.less_equal(element)
            )
        ]
        self.elements.append(candidate)
        return True

    def dominates(self, t1: Timestamp, t2: Timestamp) -> bool:
        return any(s.dominates(t1, t2) for s in self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __bool__(self) -> bool:
        return bool(self.elements)

    def __repr__(self) -> str:
        return "SummarySet(%r)" % (self.elements,)


def location_scope(location) -> ScopeKey:
    """The scope owning ``location``'s pointstamps.

    Stages belong to their input-side context (ingress stages to the
    parent), connectors to their destination's input context, and
    ``ScopeNode`` pseudo-locations to the collapsed scope's parent.
    """
    if isinstance(location, ScopeNode):
        return location.context.parent
    dst = getattr(location, "dst", None)
    if dst is not None:  # a Connector
        return dst.input_context
    return location.input_context  # a Stage


class SummaryIndex:
    """Hierarchical could-result-in tables with the dict-like interface
    of the old global summary table.

    ``index.get((l1, l2))`` returns an :class:`Antichain` of path
    summaries (possibly truncating — see module docstring) or ``None``;
    ``(l1, l2) in index`` tests reachability.  Per-scope tables, scope
    membership, boundary stages and the version-vector plan used by
    progress-tracker memoization are exposed for the runtime layers.
    """

    def __init__(self, graph):
        self.graph = graph
        #: Root first, then every loop context in creation order.
        self.scopes: Tuple[ScopeKey, ...] = (None,) + tuple(graph.contexts)
        self._scope_pos = {id(s): i for i, s in enumerate(self.scopes)}
        self._node_by_context: Dict[int, ScopeNode] = {}
        for i, context in enumerate(graph.contexts):
            self._node_by_context[id(context)] = ScopeNode(context, i)
        #: location -> owning scope, for every stage and connector.
        self._scope_of: Dict[int, ScopeKey] = {}
        self._members: Dict[int, List[object]] = {id(s): [] for s in self.scopes}
        for stage in graph.stages:
            scope = stage.input_context
            self._scope_of[id(stage)] = scope
            self._members[id(scope)].append(stage)
        for connector in graph.connectors:
            scope = connector.dst.input_context
            self._scope_of[id(connector)] = scope
            self._members[id(connector.dst.input_context)].append(connector)
        self._children: Dict[int, List] = {id(s): [] for s in self.scopes}
        for context in graph.contexts:
            self._children[id(context.parent)].append(context)
        #: scope -> per-scope minimal-summary table (child scopes
        #: collapsed to ScopeNodes).
        self.tables: Dict[int, Dict[Tuple, Antichain]] = {}
        #: scope -> {ScopeNode: antichain of non-empty self paths}.
        self.reentry: Dict[int, Dict[ScopeNode, Antichain]] = {}
        for scope in self.scopes:
            self._build_scope_table(scope)
        self._merged: Dict[Tuple, Optional[SummarySet]] = {}
        self._version_plan: Dict[int, Tuple[Tuple[ScopeKey, bool], ...]] = {}
        self._flat: Optional[Dict[Tuple, Antichain]] = None

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def _build_scope_table(self, scope: ScopeKey) -> None:
        depth = _scope_depth(scope)
        members = self._members[id(scope)]
        children = self._children[id(scope)]
        child_nodes = [self._node_by_context[id(c)] for c in children]
        locations: List[object] = list(members) + list(child_nodes)
        depths = {location: depth for location in locations}
        # Connectors and stages keep their true (uniform) depths; the
        # assert below documents the invariant the partition guarantees.
        links: List[Tuple[object, object, PathSummary]] = []
        identity = PathSummary.identity(depth)
        member_ids = {id(m) for m in members}
        for location in members:
            dst = getattr(location, "dst", None)
            if dst is not None:
                # Connector delivery: no timestamp adjustment.
                links.append((location, dst, identity))
                continue
            stage = location
            action = stage.timestamp_action()
            for outputs in stage.outputs:
                for connector in outputs:
                    if id(connector) in member_ids:
                        links.append((stage, connector, action))
                        continue
                    child = connector.dst.input_context
                    if child is not None and child.parent is scope:
                        # An ingress stage feeding a child scope:
                        # entering never changes the parent-depth
                        # prefix, so the collapsed node is reached
                        # with the identity.
                        links.append(
                            (stage, self._node_by_context[id(child)], identity)
                        )
                    # Otherwise the connector exits upward (an egress
                    # output): the stage is a sink at this level, and
                    # the parent's table links its ScopeNode instead.
        # Child egress outputs surface at this level as edges out of the
        # collapsed node.  The interior segment (entry -> egress) is the
        # identity at this depth — see the module docstring — so the
        # boundary summary of the whole traversal is the identity too.
        for child in children:
            node = self._node_by_context[id(child)]
            for stage in self._members[id(child)]:
                if getattr(stage, "kind", None) is None:
                    continue
                if stage.kind.value != "egress":
                    continue
                for outputs in stage.outputs:
                    for connector in outputs:
                        if id(connector) in member_ids:
                            links.append((node, connector, identity))
        table = minimal_summaries(locations, links, depths)
        self.tables[id(scope)] = table
        # Non-empty self paths per child node: the node's out-links
        # composed with any path back to it.
        reentry: Dict[ScopeNode, Antichain] = {}
        for node in child_nodes:
            chain = Antichain()
            for src, dst, summary in links:
                if src is not node:
                    continue
                back = table.get((dst, node))
                if not back:
                    continue
                for tail in back:
                    chain.insert(summary.then(tail))
            if chain:
                reentry[node] = chain
        self.reentry[id(scope)] = reentry

    # ------------------------------------------------------------------
    # Scope structure queries.
    # ------------------------------------------------------------------

    def scope_of(self, location) -> ScopeKey:
        try:
            return self._scope_of[id(location)]
        except KeyError:
            if isinstance(location, ScopeNode):
                return location.context.parent
            raise

    def scope_chain(self, scope: ScopeKey) -> Tuple[ScopeKey, ...]:
        chain = [scope]
        while chain[-1] is not None:
            chain.append(chain[-1].parent)
        return tuple(chain)

    def scope_node(self, context) -> ScopeNode:
        return self._node_by_context[id(context)]

    def children(self, scope: ScopeKey):
        return tuple(self._children[id(scope)])

    def members(self, scope: ScopeKey):
        return tuple(self._members[id(scope)])

    def table(self, scope: ScopeKey) -> Dict[Tuple, Antichain]:
        return self.tables[id(scope)]

    def subtree(self, scope: ScopeKey) -> Tuple[ScopeKey, ...]:
        """``scope`` and every scope nested inside it."""
        out = [scope]
        stack = list(self._children[id(scope)])
        while stack:
            child = stack.pop()
            out.append(child)
            stack.extend(self._children[id(child)])
        return tuple(out)

    def boundary(self, scope) -> Dict[str, Tuple]:
        """Ingress / egress / feedback stages of a loop scope.

        Ingress stages live in the parent scope (their retirements are
        parent-level protocol traffic); egress and feedback stages are
        interior.  ``entry_connectors`` are the interior connectors fed
        by the ingresses — the points where parent work enters.
        """
        ingress, egress, feedback, entries = [], [], [], []
        for stage in self.graph.stages:
            if stage.context is not scope:
                continue
            kind = stage.kind.value
            if kind == "ingress":
                ingress.append(stage)
                for outputs in stage.outputs:
                    entries.extend(outputs)
            elif kind == "egress":
                egress.append(stage)
            elif kind == "feedback":
                feedback.append(stage)
        return {
            "ingress_stages": tuple(ingress),
            "egress_stages": tuple(egress),
            "feedback_stages": tuple(feedback),
            "entry_connectors": tuple(entries),
        }

    def project(self, timestamp: Timestamp, scope) -> Timestamp:
        """Project a timestamp inside ``scope`` to its boundary (parent
        depth): drop the loop coordinates ``scope`` and its descendants
        introduced."""
        keep = _scope_depth(scope) - 1
        if len(timestamp.counters) <= keep:
            return timestamp
        return Timestamp(timestamp.epoch, timestamp.counters[:keep])

    # ------------------------------------------------------------------
    # Hierarchical could-result-in resolution.
    # ------------------------------------------------------------------

    def get(self, key, default=None):
        try:
            return self._merged[key]
        except KeyError:
            pass
        entry = self._resolve(key[0], key[1])
        if entry is not None and not entry:
            entry = None
        self._merged[key] = entry
        return entry if entry is not None else default

    def _resolve(self, l1, l2) -> Optional[SummarySet]:
        s1 = self.scope_of(l1)
        s2 = self.scope_of(l2)
        result = SummarySet()
        if s1 is s2:
            base = self.tables[id(s1)].get((l1, l2))
            if base:
                for summary in base:
                    result.insert(summary)
            above = self.scope_chain(s1)
        else:
            chain1 = self.scope_chain(s1)
            chain2 = self.scope_chain(s2)
            pos2 = {id(s): i for i, s in enumerate(chain2)}
            i1 = next(i for i, s in enumerate(chain1) if id(s) in pos2)
            lca = chain1[i1]
            a1 = l1 if i1 == 0 else self._node_by_context[id(chain1[i1 - 1])]
            i2 = pos2[id(lca)]
            a2 = l2 if i2 == 0 else self._node_by_context[id(chain2[i2 - 1])]
            if a1 is a2:
                # One endpoint is (work inside) the scope the other
                # endpoint's node represents: conservatively, interior
                # work at a projected time can reach anywhere interior
                # at that projected time.
                result.insert(PathSummary.identity(_scope_depth(lca)))
                node_reentry = self.reentry[id(lca)].get(a1)
                if node_reentry:
                    for summary in node_reentry:
                        result.insert(summary)
            else:
                base = self.tables[id(lca)].get((a1, a2))
                if base:
                    for summary in base:
                        result.insert(summary)
            above = chain1[i1:]
        # Leave-and-re-enter paths at every strictly higher level: both
        # endpoints lift into the same node there.
        for i in range(1, len(above)):
            level = above[i]
            node = self._node_by_context.get(id(above[i - 1]))
            if node is None:
                continue
            node_reentry = self.reentry[id(level)].get(node)
            if node_reentry:
                for summary in node_reentry:
                    result.insert(summary)
        return result if result else None

    # Mapping interface expected by ProgressState and Probe.

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def __getitem__(self, key) -> SummarySet:
        entry = self.get(key)
        if entry is None:
            raise KeyError(key)
        return entry

    # ------------------------------------------------------------------
    # Version-vector plan for frontier-verdict memoization.
    # ------------------------------------------------------------------

    def version_plan(self, scope: ScopeKey) -> Tuple[Tuple[ScopeKey, bool], ...]:
        """Which scope versions a verdict for a pointstamp in ``scope``
        depends on: ``(scope', exact)`` pairs, exact for ``scope`` and
        its ancestors (their frontier elements are compared at full
        precision), projected for every other scope (only their
        boundary projection is visible through the LCA tables)."""
        try:
            return self._version_plan[id(scope)]
        except KeyError:
            pass
        ancestors = {id(s) for s in self.scope_chain(scope)}
        plan = tuple(
            (other, id(other) in ancestors) for other in self.scopes
        )
        self._version_plan[id(scope)] = plan
        return plan

    # ------------------------------------------------------------------
    # Flat (global single-table) view, kept for conformance testing.
    # ------------------------------------------------------------------

    def flat_table(self) -> Dict[Tuple, Antichain]:
        """The paper's one-big-pile table, computed on demand.

        The hierarchical resolution must never under-approximate this
        relation; the conformance suite checks exactly that.
        """
        if self._flat is None:
            graph = self.graph
            locations: List[object] = list(graph.stages) + list(graph.connectors)
            depths: Dict[object, int] = {}
            for stage in graph.stages:
                depths[stage] = stage.input_depth
            for connector in graph.connectors:
                depths[connector] = connector.depth
            links: List[Tuple[object, object, PathSummary]] = []
            for connector in graph.connectors:
                links.append(
                    (connector, connector.dst, PathSummary.identity(connector.depth))
                )
            for stage in graph.stages:
                action = stage.timestamp_action()
                for outputs in stage.outputs:
                    for connector in outputs:
                        links.append((stage, connector, action))
            self._flat = minimal_summaries(locations, links, depths)
        return self._flat


def build_summary_index(graph) -> SummaryIndex:
    """Partition ``graph`` into scopes and build the per-scope tables."""
    return SummaryIndex(graph)
