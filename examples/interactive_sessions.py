"""Multi-tenant interactive sessions over shared arrangements.

The Figure 1 application — incremental connected components over tweet
mentions, with "top hashtag in my component" queries — served through
``repro.serve``: the update path publishes two shared arrangements
once, and a :class:`~repro.serve.SessionManager` multiplexes 120
sessions over one serving vertex.  Half the sessions are ``fresh``
(answers reflect the query's own epoch, queueing behind the update
work), half are ``stale(3)`` (answered immediately from the newest
completed snapshot, with measured staleness enforced against the
bound).

The day has three phases:

1. **steady** — light mixed load; every query is admitted under its
   session's own SLO class.
2. **burst** — a flash crowd of fresh queries lands while the update
   path is backed up (several data epochs injected but not yet
   processed).  Admission control reacts before the update path
   starves: sustained queue depth first *degrades* fresh arrivals to
   ``stale(2)``, then *sheds* (rejects) outright.
3. **recovery** — the backlog clears and light load resumes; the
   controller steps back down shed -> degrade -> normal.

Run:  python examples/interactive_sessions.py
"""

from repro.algorithms import component_top_resolver, hashtag_component_arrangements
from repro.lib import Stream
from repro.runtime import ClusterComputation
from repro.serve import AdmissionPolicy, SessionManager
from repro.workloads import TweetGenerator, TweetStreamConfig

SESSIONS = 120  # half fresh, half stale(STALE_BOUND)
STALE_BOUND = 3
STEADY_EPOCHS = 8
BURST_BACKLOG = 4  # data epochs injected-but-unprocessed during the burst
BURST_QUERIES = 80
RECOVERY_EPOCHS = 8

#: Depth/lag thresholds tuned to the example's scale: degrade once 16
#: queries are outstanding, shed at 48, recover below 4.  Degraded
#: arrivals become stale(2) — tighter than the burst's backlog, so they
#: park instead of masking the overload.
POLICY = AdmissionPolicy(
    degrade_depth=16,
    shed_depth=48,
    recover_depth=4,
    lag_degrade=8,
    lag_recover=2,
    sustain=2,
    cooldown=0.0,
    degrade_bound=2,
)


def run():
    """The three-phase day; returns ``(manager, comp)``."""
    generator = TweetGenerator(
        TweetStreamConfig(num_users=200, num_hashtags=24, seed=13)
    )
    comp = ClusterComputation(num_processes=2, workers_per_process=2)
    tweets_in = comp.new_input("tweets")
    queries_in = comp.new_input("queries")
    labels_arr, top_arr = hashtag_component_arrangements(Stream.from_input(tweets_in))
    manager = SessionManager(
        comp,
        queries_in,
        [labels_arr, top_arr],
        component_top_resolver,
        policy=POLICY,
    )
    comp.build()

    fresh = [manager.open_session("fresh") for _ in range(SESSIONS // 2)]
    stale = [
        manager.open_session("stale", bound=STALE_BOUND)
        for _ in range(SESSIONS - SESSIONS // 2)
    ]

    # Phase 1: steady mixed load, one epoch at a time.
    for epoch in range(STEADY_EPOCHS):
        for session in (fresh + stale)[:: max(1, SESSIONS // 12)]:
            manager.submit(session, generator.query())
        tweets_in.on_next(generator.batch(6))
        manager.pump()
        comp.run()

    # Phase 2: the update path backs up (epochs injected, not yet
    # processed), then a flash crowd of fresh queries arrives.
    for _ in range(BURST_BACKLOG):
        tweets_in.on_next(generator.batch(6))
        manager.pump()
    for i in range(BURST_QUERIES):
        manager.submit(fresh[i % len(fresh)], generator.query())

    # Phase 3: clear the backlog, then light load while the controller
    # steps back down to normal.
    manager.pump()
    comp.run()
    for _ in range(RECOVERY_EPOCHS):
        manager.submit(fresh[0], generator.query())
        manager.submit(stale[0], generator.query())
        tweets_in.on_next(generator.batch(2))
        manager.pump()
        comp.run()

    tweets_in.on_completed()
    manager.close()
    comp.run()
    manager.drain()
    assert comp.drained(), comp.debug_state()
    assert manager.outstanding == 0
    return manager, comp


def _percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def main():
    manager, comp = run()
    admission = manager.admission

    print("== per-class service (%d sessions, one serving vertex) ==" % SESSIONS)
    for slo in ("fresh", "stale"):
        answers = [a for a in manager.answers if a.slo == slo]
        latencies = [a.latency for a in answers]
        print(
            "  %-5s  %4d answers  p50 %8.0f us  p99 %8.0f us  "
            "max staleness %d epoch(s)"
            % (
                slo,
                len(answers),
                _percentile(latencies, 0.5) * 1e6,
                _percentile(latencies, 0.99) * 1e6,
                max(a.staleness for a in answers),
            )
        )
    print(
        "  shared arrangements: %d indexed entries total "
        "(independent of session count)" % manager.arrangement_entries()
    )

    print()
    print("== admission under the burst ==")
    for change in admission.transitions:
        print(
            "  t=%.6f s: depth %3d, lag %d epoch(s) -> %s"
            % (change["at"], change["depth"], change["lag"], change["mode"])
        )
    degraded = [a for a in manager.answers if a.degraded]
    print(
        "  %d fresh arrivals degraded to stale(%d), %d rejected, "
        "%d admitted untouched"
        % (
            len(degraded),
            POLICY.degrade_bound,
            len(manager.rejections),
            admission.admitted,
        )
    )

    modes = [change["mode"] for change in admission.transitions]
    assert "degrade" in modes and "shed" in modes, modes
    assert admission.mode == "normal", admission.mode
    print()
    print(
        "the flash crowd was absorbed by degrading and shedding instead "
        "of starving the update path, and the controller stepped back to "
        "normal once the backlog cleared."
    )


if __name__ == "__main__":
    main()
