"""Asynchronous incremental checkpoints and partial rollback.

The marker protocol (``FaultTolerance(checkpoint_mode="async")``) must
assemble a consistent global cut *without pausing the cluster*: the only
per-worker pause is the incremental state copy, orders of magnitude
smaller than the barrier's stop-the-world drain + synchronous write.
Recovery from the asynchronous cut is *partial*: only the killed
process's workers restore state and replay their journal suffix while
survivors keep running behind a frontier fence — and the per-epoch
outputs stay bit-identical to a failure-free run (DESIGN.md
invariant 5, unchanged).
"""

from collections import Counter

import pytest

from repro.lib import Collection, Stream
from repro.obs import TraceSink, checkpoint_pause_stats
from repro.runtime import ClusterComputation, FaultTolerance

from tests.test_recovery import CASES, baseline, make_ft, run_cluster


def make_async_ft(mode="checkpoint", policy="restart", every=2):
    ft = make_ft(mode, policy)
    ft.checkpoint_every = every
    ft.checkpoint_mode = "async"
    return ft


# ----------------------------------------------------------------------
# The cut itself: cycles complete and become durable with no barrier.
# ----------------------------------------------------------------------


class TestAsyncCycle:
    def test_cycles_complete_and_become_durable(self):
        expected, _ = baseline("wordcount", (2, 2))
        out, comp = run_cluster("wordcount", (2, 2), ft=make_async_ft())
        assert out == expected
        ac = comp.async_ckpt
        assert ac is not None
        assert ac.completed_cycle >= 1
        assert ac.durable_cycle == ac.completed_cycle
        assert not ac.active
        assert comp.recovery.snapshot is not None

    def test_no_barrier_pause_events(self):
        # Async mode must never emit a stop-the-world pause: every
        # ``checkpoint`` event is a zero-drain durable-commit parity
        # record, and the cluster never pauses input release.
        sink = TraceSink()
        out, comp = run_cluster("wordcount", (2, 2), ft=make_async_ft(), trace=sink)
        stats = checkpoint_pause_stats(sink)
        assert stats.barrier_pauses == ()
        assert len(stats.async_max_stalls) >= 1
        assert not comp.recovery.paused

    def test_snapshot_events_schema(self):
        sink = TraceSink()
        run_cluster("wordcount", (2, 2), ft=make_async_ft(), trace=sink)
        summaries = [
            e for e in sink if e.kind == "snapshot" and e.worker == -1
        ]
        workers = [e for e in sink if e.kind == "snapshot" and e.worker >= 0]
        assert summaries and workers
        for event in summaries:
            cycle, fresh, reused, channel_entries, max_stall, lag = event.detail
            assert cycle >= 1
            assert fresh >= 0 and reused >= 0 and channel_entries >= 0
            assert max_stall >= 0.0 and lag >= 0.0
            assert event.dur >= 0.0  # marker latency: cut start -> cut
        for event in workers:
            cycle, n_fresh, total = event.detail
            assert 0 <= n_fresh <= total

    def test_incremental_snapshots_reuse_clean_state(self):
        # Later cycles must re-serialize only dirty vertices: across all
        # cycles some snapshots are reused from the cache (a cluster
        # where every vertex is dirty every cycle would re-copy all).
        # Epochs are paced so successive triggers start distinct cycles
        # instead of coalescing into one.
        expected, _ = baseline("wordcount", (4, 1))
        program, epochs = CASES["wordcount"]
        comp = ClusterComputation(
            num_processes=4, workers_per_process=1,
            fault_tolerance=make_async_ft(),
        )
        sink = TraceSink()
        comp.attach_trace_sink(sink)
        inp, out = program(comp)
        comp.build()

        def inject(index):
            inp.on_next(epochs[index])
            if index + 1 == len(epochs):
                inp.on_completed()

        for index in range(len(epochs)):
            comp.sim.schedule_at(index * 2e-3, lambda i=index: inject(i))
        comp.run()
        assert comp.drained(), comp.debug_state()
        assert out == expected
        stats = checkpoint_pause_stats(sink)
        assert len(stats.async_increments) >= 2
        assert any(reused > 0 for _fresh, reused in stats.async_increments)

    def test_manual_checkpoint_restore_roundtrip_async(self):
        # The async twin of the barrier manual-roundtrip test: an
        # explicit checkpoint() drives one marker cycle to durability,
        # restore() rolls back to it, and replay is exactly-once.
        expected, _ = baseline("wordcount", (2, 2))
        program, epochs = CASES["wordcount"]
        ft = make_async_ft(every=10 ** 9)  # manual cycles only
        comp = ClusterComputation(
            num_processes=2, workers_per_process=2, fault_tolerance=ft
        )
        inp, out = program(comp)
        comp.build()
        for epoch in epochs[:3]:
            inp.on_next(epoch)
        comp.run()
        snapshot = comp.checkpoint()
        assert snapshot["journal_released"] == 3
        assert snapshot["cycle"] == comp.async_ckpt.durable_cycle
        for epoch in epochs[3:]:
            inp.on_next(epoch)
        inp.on_completed()
        comp.run()
        assert out == expected
        comp.restore(snapshot)
        comp.run()
        assert comp.drained(), comp.debug_state()
        assert out == expected


# ----------------------------------------------------------------------
# The headline number: async pauses are >= 5x smaller than the barrier's
# on the Figure 7c workload (k-exposure under periodic checkpoints).
# ----------------------------------------------------------------------


def run_kexposure(checkpoint_mode, sink):
    from repro.algorithms.kexposure import k_exposure_incremental
    from repro.workloads import TweetGenerator, TweetStreamConfig

    ft = FaultTolerance(
        mode="checkpoint",
        checkpoint_every=4,
        checkpoint_mode=checkpoint_mode,
        state_bytes_per_worker=3 << 20,
        disk_bandwidth=200e6,
    )
    comp = ClusterComputation(
        num_processes=4, workers_per_process=1, fault_tolerance=ft
    )
    comp.attach_trace_sink(sink)
    tweets_in = comp.new_input()
    followers_in = comp.new_input()
    out = {}
    k_exposure_incremental(
        Collection(Stream.from_input(tweets_in)),
        Collection(Stream.from_input(followers_in)),
    ).subscribe(
        lambda t, diffs: out.setdefault(t.epoch, Counter()).update(diffs)
    )
    comp.build()
    generator = TweetGenerator(
        TweetStreamConfig(num_users=400, num_hashtags=40, seed=4)
    )
    followers_in.on_next(
        [((generator.query(), generator.query()), +1) for _ in range(600)]
    )
    followers_in.on_completed()
    for _ in range(12):
        tweets_in.on_next(
            [
                ((tweet.user, tag), +1)
                for tweet in generator.batch(40)
                for tag in tweet.hashtags or ("#none",)
            ]
        )
    tweets_in.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return out


class TestPauseComparison:
    def test_async_pause_at_least_5x_smaller_than_barrier(self):
        barrier_sink, async_sink = TraceSink(), TraceSink()
        barrier_out = run_kexposure("barrier", barrier_sink)
        async_out = run_kexposure("async", async_sink)
        assert async_out == barrier_out  # same cut protocol, same answers
        barrier = checkpoint_pause_stats(barrier_sink)
        asynchronous = checkpoint_pause_stats(async_sink)
        assert barrier.max_barrier_pause > 0.0
        assert asynchronous.async_max_stalls  # cycles actually ran
        assert (
            asynchronous.max_async_pause * 5 <= barrier.max_barrier_pause
        ), (asynchronous.max_async_pause, barrier.max_barrier_pause)


# ----------------------------------------------------------------------
# Partial rollback: only the killed process restores; survivors keep
# their state and perform zero restores.
# ----------------------------------------------------------------------


class TestPartialRollback:
    def kill_run(self, case, shape, frac, ft=None, **kwargs):
        expected, duration = baseline(case, shape)
        sink = TraceSink()
        out, comp = run_cluster(
            case,
            shape,
            ft=ft or make_async_ft(),
            kill=(1, duration * frac),
            trace=sink,
            **kwargs
        )
        return expected, out, comp, sink

    def test_partial_restores_only_the_killed_process(self):
        expected, out, comp, sink = self.kill_run("wordcount", (2, 2), 0.4)
        assert out == expected
        assert comp.recovery.failures[0]["mode"] == "partial"
        dead_workers = {
            w.index for w in comp.workers if comp._worker_process[w.index] == 1
        }
        restores = [e for e in sink if e.kind == "restore"]
        # Every restore is per-worker (no global restore event) and
        # every restored worker belongs to the killed process.
        assert restores
        assert all(e.worker >= 0 for e in restores)
        assert {e.worker for e in restores} <= dead_workers
        # Survivors perform zero state restores.
        survivor_restores = [e for e in restores if e.worker not in dead_workers]
        assert survivor_restores == []
        for event in restores:
            mode, snapshot_time, injected = event.detail
            assert mode == "partial"
            assert injected >= 0

    def test_partial_rollback_outputs_identical_across_kill_points(self):
        for frac in (0.15, 0.45, 0.85):
            expected, out, comp, _ = self.kill_run("iterate", (2, 2), frac)
            assert out == expected, frac
            assert comp.recovery.failures[0]["mode"] == "partial"

    def test_partial_rollback_under_logging_mode(self):
        expected, out, comp, _ = self.kill_run(
            "wordcount", (2, 2), 0.5, ft=make_async_ft("logging")
        )
        assert out == expected
        assert comp.recovery.failures[0]["mode"] == "partial"

    def test_partial_rollback_with_fusion(self):
        expected, out, comp, _ = self.kill_run(
            "wordcount", (2, 2), 0.6, optimize=True
        )
        assert out == expected
        assert comp.recovery.failures[0]["mode"] == "partial"

    def test_second_overlapping_kill_escalates_to_global(self):
        expected, duration = baseline("iterate", (4, 1))
        program, epochs = CASES["iterate"]
        comp = ClusterComputation(
            num_processes=4, workers_per_process=1,
            fault_tolerance=make_async_ft(),
        )
        inp, out = program(comp)
        comp.build()
        comp.kill_process(1, at=duration * 0.25)
        comp.kill_process(3, at=duration * 0.8)
        for epoch in epochs:
            inp.on_next(epoch)
        inp.on_completed()
        comp.run()
        assert comp.drained(), comp.debug_state()
        assert out == expected
        modes = [f["mode"] for f in comp.recovery.failures]
        assert modes[0] == "partial"
        assert modes[1] == "global"  # replay ledgers still draining


# ----------------------------------------------------------------------
# The skip tier: a kill that loses nothing skips the rollback entirely.
# ----------------------------------------------------------------------


class TestSkipRollback:
    def test_idle_kill_with_clean_snapshot_skips_rollback(self):
        expected, _ = baseline("wordcount", (2, 2))
        program, epochs = CASES["wordcount"]
        ft = make_async_ft(every=10 ** 9)
        comp = ClusterComputation(
            num_processes=2, workers_per_process=2, fault_tolerance=ft
        )
        sink = TraceSink()
        comp.attach_trace_sink(sink)
        inp, out = program(comp)
        comp.build()
        for epoch in epochs[:3]:
            inp.on_next(epoch)
        comp.run()
        comp.checkpoint()  # durable cut == current state
        # Kill while idle: the restore set is provably empty, so the
        # process restarts in place — no rollback, no replay, and the
        # survivors' clocks never stop.
        comp.kill_process(1, at=comp.now + 1e-3)
        for epoch in epochs[3:]:
            inp.on_next(epoch)
        inp.on_completed()
        comp.run()
        assert comp.drained(), comp.debug_state()
        assert out == expected
        failure = comp.recovery.failures[0]
        assert failure["mode"] == "skip"
        assert failure["replayed_entries"] == 0
        # No restore of any kind happened.
        assert [e for e in sink if e.kind == "restore"] == []
        assert comp.recovery.failures[0]["policy"] == "restart"


# ----------------------------------------------------------------------
# Buffering vertices under the async cut: a mid-epoch kill lands while
# per-timestamp buffers are live; flushed buffers must not resurrect.
# ----------------------------------------------------------------------


def run_buffering_chain(ft=None, kill=None):
    """buffered -> count_by -> aggregate_by: every class of per-timestamp
    buffering state (list buffers, count tables, fold accumulators) is
    live mid-epoch, so an async cut + kill exercises exactly the state
    the incremental dirty-bit snapshots must get right."""
    comp = ClusterComputation(
        num_processes=2, workers_per_process=2, fault_tolerance=ft
    )
    inp = comp.new_input()
    out = {}
    (
        Stream.from_input(inp)
        .buffered(lambda rs: sorted(rs))
        .count_by(lambda x: x % 5)
        .aggregate_by(lambda kc: kc[0] % 2, lambda kc: kc[1], max)
        .subscribe(lambda t, recs: out.setdefault(t.epoch, sorted(recs)))
    )
    comp.build()
    if kill is not None:
        comp.kill_process(kill[0], at=kill[1])
    for epoch in [list(range(40)), [3] * 25, [], list(range(7, 29))]:
        inp.on_next(epoch)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return out, comp


class TestBufferingVerticesSurviveMidEpochKill:
    @pytest.mark.parametrize("fraction", [0.2, 0.5, 0.8])
    def test_outputs_identical_across_kill_points(self, fraction):
        expected, clean = run_buffering_chain(ft=make_async_ft(every=1))
        assert clean.async_ckpt.completed_cycle >= 1
        out, comp = run_buffering_chain(
            ft=make_async_ft(every=1), kill=(1, clean.now * fraction)
        )
        assert out == expected
        assert len(comp.recovery.failures) == 1

    def test_flushed_buffers_leave_the_cached_snapshots(self):
        # White-box: after the run drains, every epoch's buffers were
        # flushed by on_notify, and because each flush marks the vertex
        # dirty, the next incremental capture re-serializes it — the
        # final cached snapshots hold no stale per-timestamp state.
        _, comp = run_buffering_chain(ft=make_async_ft(every=1))
        # One more cut at drain time: every buffer has been flushed and
        # every flush marked its vertex dirty, so this capture must
        # re-serialize them all with empty per-timestamp tables.
        comp.checkpoint()
        ac = comp.async_ckpt
        assert ac.completed_cycle >= 1
        buffering = {
            stage.index
            for stage in comp.graph.stages
            if stage.name.startswith(("buffered", "count_by", "aggregate_by"))
        }
        assert buffering
        checked = 0
        for (stage_index, _worker), state in ac._last_states.items():
            if stage_index not in buffering:
                continue
            for attr in ("buffers", "counts", "state"):
                if attr in state:
                    assert state[attr] == {}, (stage_index, attr)
                    checked += 1
        assert checked > 0
