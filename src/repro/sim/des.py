"""A small discrete-event simulation kernel.

The distributed runtime of :mod:`repro.runtime` executes on this
simulator: workers, network links and protocol actors schedule callbacks
at points in *virtual time*.  Causality within the simulation is real —
vertices really execute and exchange real records — while elapsed time
and bytes are modeled, which is what makes laptop-scale reproduction of
the paper's cluster experiments possible (see DESIGN.md).

Events scheduled for the same instant fire in schedule order (a stable
FIFO tie-break), which keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from time import perf_counter
from typing import Callable, Deque, List, Optional, Tuple

from ..obs.trace import TraceEvent


class Simulator:
    """An event queue with a virtual clock and a seeded RNG.

    Scheduling is a binary heap plus a *same-time fast lane*: an event
    scheduled for the current instant (the overwhelmingly common case —
    worker dispatch loops re-arm themselves at ``now``) is appended to a
    FIFO deque in O(1) instead of paying the O(log n) heap push.  The
    dispatcher merges the two by the ``(time, sequence)`` key, so the
    execution order is bit-identical to the pure-heap implementation.
    Cheap always-on counters (``heap_pushes``, ``lane_pushes``,
    ``peak_heap``, ``background_pushes``) feed the DES self-profiler in
    :mod:`repro.obs.profile`.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        #: Same-time FIFO: entries are (time, sequence, callback) with
        #: time <= now, pushed in sequence order — so the deque is
        #: already sorted by the (time, sequence) dispatch key.
        self._lane: Deque[Tuple[float, int, Callable[[], None]]] = deque()
        self._background: List[Tuple[float, int, Callable[[], None]]] = []
        #: Events claimed by the dispatcher for the current virtual
        #: instant; consumed before the lane and the heap.  Entries were
        #: the head run of the merged (time, sequence) order when they
        #: were staged, so draining this deque first preserves the exact
        #: inline execution order.
        self._staged: Deque[Tuple[float, int, Callable[[], None]]] = deque()
        #: Execution-backend hook (see repro.parallel.VertexPool): an
        #: object with ``prefetch(sim)``, called before dispatching the
        #: next event whenever nothing is staged.  None (the default)
        #: costs nothing on the hot path.
        self.dispatcher = None
        self._sequence = 0
        self._events_executed = 0
        self.in_event = False
        #: Self-profiling counters (see repro.obs.profile.DESProfile).
        self.heap_pushes = 0
        self.lane_pushes = 0
        self.peak_heap = 0
        self.background_pushes = 0
        #: Observability sink (repro.obs.TraceSink); None = tracing off.
        self.trace = None

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(
                "cannot schedule at %r; the clock is already at %r" % (time, self.now)
            )
        if time == self.now:
            self._lane.append((time, self._sequence, callback))
            self.lane_pushes += 1
        else:
            heapq.heappush(self._queue, (time, self._sequence, callback))
            self.heap_pushes += 1
            if len(self._queue) > self.peak_heap:
                self.peak_heap = len(self._queue)
        self._sequence += 1

    def schedule_background(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule an environment event (e.g. a GC pause generator).

        Background events fire only while foreground work remains; they
        never keep the simulation alive on their own, so perpetual
        self-rescheduling processes cannot prevent quiescence.
        """
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        heapq.heappush(self._background, (self.now + delay, self._sequence, callback))
        self._sequence += 1
        self.background_pushes += 1

    def _pop_next(self) -> Tuple[float, int, Callable[[], None]]:
        """Pop the earliest event by ``(time, sequence)`` across the
        staged batch, the heap and the fast lane.  The caller guarantees
        one is nonempty."""
        if self._staged:
            return self._staged.popleft()
        if not self._lane:
            return heapq.heappop(self._queue)
        if not self._queue:
            return self._lane.popleft()
        lane_head = self._lane[0]
        heap_head = self._queue[0]
        if lane_head[0] < heap_head[0] or (
            lane_head[0] == heap_head[0] and lane_head[1] < heap_head[1]
        ):
            return self._lane.popleft()
        return heapq.heappop(self._queue)

    def stage_events(
        self, match: Callable[[Callable[[], None]], bool]
    ) -> List[Tuple[float, int, Callable[[], None]]]:
        """Move the maximal run of next events, all at one virtual
        instant and all with callbacks satisfying ``match``, into the
        staged deque; returns the staged entries.

        The staged run is exactly the head of the merged
        ``(time, sequence)`` order, and :meth:`_pop_next` drains the
        staged deque first, so execution order is unchanged — staging
        only lets a dispatcher *see* the batch before it runs.  The
        first non-matching (or later-instant) event encountered is
        pushed back where it came from.
        """
        staged = self._staged
        batch_time = None
        while self._queue or self._lane:
            lane_head = self._lane[0] if self._lane else None
            if lane_head is not None and (
                not self._queue or lane_head[:2] < self._queue[0][:2]
            ):
                entry = self._lane.popleft()
                from_lane = True
            else:
                entry = heapq.heappop(self._queue)
                from_lane = False
            if batch_time is None:
                batch_time = entry[0]
            if entry[0] != batch_time or not match(entry[2]):
                if from_lane:
                    self._lane.appendleft(entry)
                else:
                    heapq.heappush(self._queue, entry)
                break
            staged.append(entry)
        return list(staged)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue and not self._lane and not self._staged:
            return False
        horizon = self._peek_time()
        self.in_event = True
        try:
            while self._background and self._background[0][0] <= horizon:
                time, _, callback = heapq.heappop(self._background)
                self.now = max(self.now, time)
                callback()
                horizon = self._peek_time()
            # Background work for this instant has fired; a dispatcher
            # may now batch the head run of same-instant events (and
            # claim work for its pool) without reordering anything.
            if self.dispatcher is not None and not self._staged:
                self.dispatcher.prefetch(self)
            time, _, callback = self._pop_next()
            self.now = max(self.now, time)
            callback()
        finally:
            self.in_event = False
        self._events_executed += 1
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when virtual time would pass
        ``until``, or after ``max_events`` events.  Returns the number of
        events executed by this call.
        """
        executed = 0
        trace = self.trace
        start_now = self.now
        wall = perf_counter() if trace is not None else 0.0
        while self._queue or self._lane or self._staged:
            if until is not None and self._peek_time() > until:
                # Background events due at or before the stop time must
                # still fire: the clock passes through their due times
                # on its way to `until`.  A background callback may
                # schedule new foreground work <= until, so re-check
                # the loop condition instead of stopping outright.
                if self._background and self._background[0][0] <= until:
                    self.in_event = True
                    try:
                        while (
                            self._background
                            and self._background[0][0] <= until
                        ):
                            time, _, callback = heapq.heappop(self._background)
                            self.now = max(self.now, time)
                            callback()
                    finally:
                        self.in_event = False
                    continue
                self.now = until
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "run",
                    start_now,
                    self.now - start_now,
                    wall,
                    -1,
                    -1,
                    "",
                    (),
                    (executed, perf_counter() - wall),
                )
            )
        return executed

    def _peek_time(self) -> float:
        """Virtual time of the earliest pending foreground event; the
        caller guarantees the staged deque, the queue or the lane is
        nonempty."""
        if self._staged:
            return self._staged[0][0]
        if not self._lane:
            return self._queue[0][0]
        if not self._queue:
            return self._lane[0][0]
        return min(self._lane[0][0], self._queue[0][0])

    @property
    def pending_events(self) -> int:
        return len(self._queue) + len(self._lane) + len(self._staged)

    @property
    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest pending foreground event.

        ``None`` when the queue is empty.  Used by processes that must
        wait for the system to settle (e.g. the checkpoint quiescence
        probe) to re-poll exactly when something next happens instead of
        busy-waiting in virtual time.
        """
        if not self._queue and not self._lane and not self._staged:
            return None
        return self._peek_time()

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def __repr__(self) -> str:
        return "Simulator(now=%.6f, pending=%d)" % (
            self.now,
            self.pending_events,
        )
