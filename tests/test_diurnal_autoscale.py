"""The diurnal-autoscaling example, run under pytest.

``examples/diurnal_autoscale.py`` feeds the Figure 1 application a
tweet stream whose rate follows a day (quiet, peak, quiet) while an
:class:`repro.runtime.Autoscaler` rescales the live cluster from the
trace stream.  This wrapper enforces the example's invariants in the
suite: the controller both grows and shrinks the fleet, and every
query answer matches the fixed-shape run exactly.
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")
)

import diurnal_autoscale  # noqa: E402


@pytest.fixture(scope="module")
def fixed_run():
    return diurnal_autoscale.run(autoscale=False)


@pytest.fixture(scope="module")
def autoscaled_run():
    return diurnal_autoscale.run(autoscale=True)


def test_fixed_shape_answers_every_query(fixed_run):
    responses, comp, scaler = fixed_run
    assert scaler is None
    assert sorted(responses) == list(
        range(len(diurnal_autoscale.DIURNAL_CURVE))
    )
    for epoch, batch in responses.items():
        assert [qid for qid, _, _ in batch] == ["q%d" % epoch]


def test_peak_grows_and_quiet_evening_shrinks(autoscaled_run):
    _, comp, scaler = autoscaled_run
    kinds = [d["kind"] for d in scaler.decisions]
    assert "add" in kinds, scaler.decisions
    assert "remove" in kinds, scaler.decisions
    assert kinds.index("add") < kinds.index("remove")
    assert [r["kind"] for r in comp.rescales][: len(kinds)] == kinds
    # The shrink drains the process the grow added, back to the floor.
    assert len(comp.live_processes) >= diurnal_autoscale.POLICY.min_processes

def test_rescale_answers_match_fixed_shape_run(fixed_run, autoscaled_run):
    expected, _, _ = fixed_run
    responses, comp, scaler = autoscaled_run
    assert responses == expected
    # Planned migrations only: nothing escalated to a failure rollback.
    assert not comp.recovery.failures
    assert scaler.samples
