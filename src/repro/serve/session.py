"""Multi-tenant query sessions over shared arrangements (`repro.serve`).

The :class:`SessionManager` multiplexes thousands of lightweight
:class:`Session` objects over **one** serving vertex per worker (the
``QueryVertex``-class reader, :class:`ServeVertex`) and a set of shared
:class:`~repro.serve.arrangement.Arrangement` handles.  Sessions are
driver-side bookkeeping — a session costs a dict entry, not a dataflow
stage, so session count never multiplies dataflow state.

Two SLO classes (the Figure 8 trade-off, per session):

- ``fresh`` — the query rides the dataflow: it joins the next query
  epoch, the server buffers all of an epoch's queries together
  (*same-epoch batching*: one snapshot, one notification, any number of
  sessions) and answers at the epoch's notification from arrangement
  views at exactly that epoch.  Answers are bit-identical to a
  per-session ``QueryVertex`` in fresh mode — and epoch-deterministic,
  so they survive failure/recovery replay unchanged (duplicate
  deliveries are suppressed by query id, the same exactly-once contract
  the journal gives external subscribers).
- ``stale(bound)`` — answered driver-side, immediately, from the newest
  *completed* snapshot (judged by the arrangements' progress probes —
  never a prefix of a half-applied epoch).  The measured staleness, in
  epochs behind the query's reference epoch, is enforced against the
  bound: a query whose bound cannot be met yet is parked and answered
  as soon as the publish frontier catches up.  Every stale answer
  carries the epoch of the state it actually read.

Admission (optional, :mod:`repro.serve.admission`) runs at submit time
and can degrade ``fresh`` to ``stale(bound)`` or reject, before the
update path starves behind a query burst.

Driver protocol::

    manager = SessionManager(comp, queries_in, arrangements=[...],
                             resolver=my_resolver)   # before build()
    comp.build()
    s = manager.open_session("fresh"); manager.submit(s, user)
    tweets_in.on_next(batch); manager.pump()         # once per epoch
    comp.run(); manager.drain()
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from ..obs.trace import TraceEvent
from .arrangement import Arrangement, snapshot_views


class Answer(NamedTuple):
    """One delivered query response."""

    query_id: Any
    session_id: int
    user: Any
    value: Any
    #: "fresh" or "stale" — the class the query was *served* under.
    slo: str
    #: The epoch of the state the answer reflects (>= all applied diffs).
    state_epoch: int
    #: Measured staleness in epochs (0 for fresh answers).
    staleness: int
    #: Virtual time the query was submitted / answered.
    issued_at: float
    answered_at: float
    #: True when admission degraded a fresh request to stale.
    degraded: bool

    @property
    def latency(self) -> float:
        return self.answered_at - self.issued_at


class Session:
    """One lightweight query session (driver-side state only)."""

    __slots__ = ("id", "slo", "bound", "open", "submitted", "answered",
                 "rejected", "degraded")

    def __init__(self, session_id: int, slo: str, bound: Optional[int]):
        if slo not in ("fresh", "stale"):
            raise ValueError("slo must be 'fresh' or 'stale' (got %r)" % (slo,))
        if slo == "stale":
            if bound is None or bound < 0:
                raise ValueError(
                    "stale sessions need a staleness bound >= 0 (got %r)" % (bound,)
                )
        self.id = session_id
        self.slo = slo
        self.bound = bound
        self.open = True
        self.submitted = 0
        self.answered = 0
        self.rejected = 0
        self.degraded = 0

    def __repr__(self) -> str:
        slo = self.slo if self.slo == "fresh" else "stale(%d)" % self.bound
        return "Session(%d, %s, %d/%d answered)" % (
            self.id, slo, self.answered, self.submitted,
        )


class ServeVertex(Vertex):
    """The per-worker serving reader (one per worker for *all* sessions).

    Input 0 carries query records ``(session_id, user, query_id)``;
    inputs ``1..k`` are the structural publish-barrier edges from the
    arrange stages (no records ever flow on them — their could-result-in
    summaries order this vertex's notifications after the arrangers').
    An epoch's queries are buffered together and answered in one batch
    at the notification, through the manager, from views snapshotted at
    exactly that epoch.  Pinned to the coordinator: answering
    side-effects driver-side sessions and reads coordinator-resident
    arrangements.
    """

    coordinator_only = True
    _CONFIG_ATTRS = ("manager",)

    def __init__(self, manager: "SessionManager"):
        super().__init__()
        self.manager = manager
        self.pending: Dict[Timestamp, List[Tuple[Any, Any, Any]]] = {}

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        if input_port != 0:
            return  # publish-barrier edges are structural only
        pending = self.pending.get(timestamp)
        if pending is None:
            pending = self.pending[timestamp] = []
            self.notify_at(timestamp)
        pending.extend(records)

    def on_notify(self, timestamp: Timestamp) -> None:
        queries = self.pending.pop(timestamp, [])
        if queries:
            self.manager._answer_fresh(timestamp.epoch, queries)


class SessionManager:
    """Multiplexes query sessions over one serving stage and shared
    arrangements (see module docstring for the driver protocol).

    Construct *after* the arrangements and *before* ``build()``: the
    manager adds the serving stage and its connectors to the graph, then
    the runtime calls :meth:`_attach` from ``build()`` to resolve live
    vertices and (on the cluster) hook frontier advances for parked
    stale queries.
    """

    def __init__(
        self,
        computation,
        queries_input,
        arrangements: List[Arrangement],
        resolver: Callable[[Dict[str, Any], Any], Any],
        on_response: Optional[Callable[[Answer], None]] = None,
        on_reject: Optional[Callable[[Any, Session], None]] = None,
        policy=None,
        stale_cost: float = 500e-6,
        name: str = "serve",
    ):
        from ..lib.stream import Stream

        if not arrangements:
            raise ValueError("SessionManager needs at least one arrangement")
        self.computation = computation
        self.queries_input = queries_input
        self.arrangements = list(arrangements)
        self.resolver = resolver
        self.on_response = on_response
        self.on_reject = on_reject
        #: Modeled per-query service time for driver-side stale answers
        #: (index lookups off the update path); fresh latency needs no
        #: model — it is the epoch's completion time.
        self.stale_cost = stale_cost
        self.name = name
        self.admission = None
        if policy is not None:
            from .admission import AdmissionController

            self.admission = AdmissionController(self, policy)

        self.sessions: Dict[int, Session] = {}
        self._next_session = 0
        self._next_query = 0
        #: Fresh queries awaiting the next pump (records for one epoch).
        self._fresh_batch: List[Tuple[Any, Any, Any]] = []
        #: query_id -> (session, issued_at, degraded) for injected fresh.
        self._inflight: Dict[Any, Tuple[Session, float, bool]] = {}
        #: Parked stale queries: (session, user, qid, ref_epoch,
        #: issued_at, bound, degraded).
        self._deferred: List[Tuple] = []
        self._answered: set = set()
        #: Every delivered answer, in delivery order.
        self.answers: List[Answer] = []
        #: ``(query_id, session_id, at)`` per admission rejection.
        self.rejections: List[Tuple[Any, int, float]] = []
        #: Same-epoch batching effectiveness: (epochs pumped with >= 1
        #: query, fresh queries injected).
        self.fresh_epochs = 0
        self.fresh_injected = 0
        self._rechecking = False

        stage = computation.graph.new_stage(
            name, lambda s, w: ServeVertex(self), 1 + len(self.arrangements), 0
        )
        self.stage = stage
        Stream.from_input(queries_input).connect_to(
            stage, 0, partitioner=lambda rec: 0
        )
        for port, handle in enumerate(self.arrangements):
            Stream(computation, handle.stage, 0).connect_to(
                stage, 1 + port, partitioner=lambda rec: 0
            )
        computation.session_managers.append(self)

    # ------------------------------------------------------------------
    # Runtime attachment (called from build()).
    # ------------------------------------------------------------------

    def _attach(self, computation) -> None:
        """Resolve live vertices; wire compaction holds and (cluster
        only) frontier listeners for parked stale queries."""
        serve_vertex = self._serve_vertex()
        for handle in self.arrangements:
            vertex = handle.vertex()
            if serve_vertex not in vertex.readers:
                vertex.readers.append(serve_vertex)
        views = getattr(computation, "views", None)
        if views:
            views[0].listeners.append(self._on_frontier)

    def _serve_vertex(self) -> ServeVertex:
        vertices = self.computation.vertices
        vertex = vertices.get((self.stage, 0)) or vertices.get(self.stage)
        if vertex is None:
            raise RuntimeError("call build() before serving queries")
        return vertex

    # ------------------------------------------------------------------
    # Session lifecycle.
    # ------------------------------------------------------------------

    def open_session(self, slo: str = "fresh", bound: Optional[int] = None) -> Session:
        session = Session(self._next_session, slo, bound)
        self._next_session += 1
        self.sessions[session.id] = session
        return session

    def close_session(self, session: Session) -> None:
        session.open = False

    @property
    def now(self) -> float:
        return getattr(self.computation, "now", 0.0)

    @property
    def outstanding(self) -> int:
        """Queries submitted but not yet answered or rejected."""
        return len(self._fresh_batch) + len(self._inflight) + len(self._deferred)

    def completed_epoch(self) -> int:
        """Newest epoch every arrangement has fully applied (probe-judged,
        conservative).  Trailing diff-free epochs count as applied once
        drained."""
        ref = self.queries_input.next_epoch - 1
        return min(
            handle.completed_epoch(default=ref) for handle in self.arrangements
        )

    def staleness_lag(self) -> int:
        """Epochs the slowest arrangement trails the injected frontier."""
        return max(0, (self.queries_input.next_epoch - 1) - self.completed_epoch())

    # ------------------------------------------------------------------
    # Query submission.
    # ------------------------------------------------------------------

    def submit(
        self, session: Session, user: Any, query_id: Optional[Any] = None
    ) -> Optional[Any]:
        """Submit one query on ``session``; returns its query id, or
        ``None`` when admission rejected it."""
        if not session.open:
            raise RuntimeError("session %d is closed" % session.id)
        if query_id is None:
            query_id = self._next_query
            self._next_query += 1
        issued_at = self.now
        session.submitted += 1
        slo, bound, degraded = session.slo, session.bound, False
        if self.admission is not None:
            verdict = self.admission.decide(session)
            if verdict.action == "reject":
                session.rejected += 1
                self.rejections.append((query_id, session.id, issued_at))
                self._trace("reject", issued_at, 0.0, -1, (session.id, slo))
                if self.on_reject is not None:
                    self.on_reject(query_id, session)
                return None
            if verdict.action == "degrade" and slo == "fresh":
                slo, bound, degraded = "stale", verdict.bound, True
                session.degraded += 1
        if slo == "fresh":
            self._fresh_batch.append((session.id, user, query_id))
            self._inflight[query_id] = (session, issued_at, degraded)
        else:
            ref = self.queries_input.next_epoch
            entry = (session, user, query_id, ref, issued_at, bound, degraded)
            if not self._try_stale(entry):
                self._deferred.append(entry)
        return query_id

    def pump(self) -> int:
        """Inject the buffered fresh queries as the next query epoch.

        Call once per input epoch (right after the data input's
        ``on_next``) so query epochs stay aligned with data epochs —
        empty query epochs are injected too.  Returns the epoch.
        """
        records = self._fresh_batch
        self._fresh_batch = []
        epoch = self.queries_input.on_next(records)
        if records:
            self.fresh_epochs += 1
            self.fresh_injected += len(records)
        self._recheck_deferred()
        return epoch

    def close(self) -> None:
        """Close the query input (no more fresh epochs)."""
        if self._fresh_batch:
            self.pump()
        self.queries_input.on_completed()

    def drain(self) -> int:
        """Answer every parked stale query that is now within bound;
        call after the final ``run()``.  Returns answers delivered."""
        return self._recheck_deferred()

    # ------------------------------------------------------------------
    # Fresh path (called by ServeVertex at epoch notifications).
    # ------------------------------------------------------------------

    def _answer_fresh(self, epoch: int, queries: List[Tuple[Any, Any, Any]]) -> None:
        views, state_epoch = snapshot_views(self.arrangements, epoch)
        answered_at = self.now
        resolver = self.resolver
        for session_id, user, query_id in queries:
            self._deliver(
                Answer(
                    query_id,
                    session_id,
                    user,
                    resolver(views, user),
                    "fresh",
                    epoch,
                    0,
                    self._issued_at(query_id, answered_at),
                    answered_at,
                    False,
                )
            )

    def _issued_at(self, query_id: Any, default: float) -> float:
        entry = self._inflight.get(query_id)
        return entry[1] if entry is not None else default

    # ------------------------------------------------------------------
    # Stale path (driver-side, probe-gated).
    # ------------------------------------------------------------------

    def _try_stale(self, entry: Tuple) -> bool:
        session, user, query_id, ref, issued_at, bound, degraded = entry
        completed = self.completed_epoch()
        if completed < (ref - 1) - bound:
            return False  # bound not satisfiable yet; park the query
        views, state_epoch = snapshot_views(self.arrangements, completed)
        staleness = max(0, (ref - 1) - state_epoch)
        answered_at = max(self.now, issued_at) + self.stale_cost
        self._deliver(
            Answer(
                query_id,
                session.id,
                user,
                self.resolver(views, user),
                "stale",
                state_epoch,
                staleness,
                issued_at,
                answered_at,
                degraded,
            )
        )
        return True

    def _recheck_deferred(self) -> int:
        if not self._deferred or self._rechecking:
            return 0
        self._rechecking = True
        try:
            delivered = 0
            remaining = []
            for entry in self._deferred:
                if self._try_stale(entry):
                    delivered += 1
                else:
                    remaining.append(entry)
            self._deferred = remaining
            return delivered
        finally:
            self._rechecking = False

    def _on_frontier(self, _updates) -> None:
        # Registered on the process-0 progress view (cluster runtime):
        # parked stale queries re-check exactly when completion advances.
        if self._deferred:
            self._recheck_deferred()

    def on_recovery(self) -> None:
        """Failure recovery ran (oracle- or supervisor-driven): parked
        queries re-check immediately.  A rollback can regress the
        frontier past epochs that were already readable, so answerable
        queries re-park transparently and retry as replay re-publishes;
        nothing is lost or double-answered (delivery dedups by query
        id)."""
        if self._deferred:
            self._recheck_deferred()

    def _on_publish(self, name: str, epoch: int) -> None:
        """Publish hook relayed by the runtime when an arrangement
        applies an epoch (reference runtime re-checks here; the cluster
        re-checks on the post-commit frontier change instead)."""
        if self._deferred and not hasattr(self.computation, "views"):
            self._recheck_deferred()

    # ------------------------------------------------------------------
    # Delivery (exactly-once by query id across recovery replay).
    # ------------------------------------------------------------------

    def _deliver(self, answer: Answer) -> None:
        if answer.query_id in self._answered:
            return  # replayed epoch after a rollback: already delivered
        self._answered.add(answer.query_id)
        self._inflight.pop(answer.query_id, None)
        session = self.sessions.get(answer.session_id)
        if session is not None:
            session.answered += 1
        self.answers.append(answer)
        self._trace(
            "answer",
            answer.answered_at,
            answer.latency,
            answer.state_epoch,
            (answer.session_id, answer.slo, answer.staleness, answer.degraded),
        )
        if self.on_response is not None:
            self.on_response(answer)

    def _trace(self, action: str, t: float, dur: float, epoch: int, detail: Tuple):
        trace = getattr(self.computation, "_trace", None)
        if trace is None:
            return
        trace.emit(
            TraceEvent(
                "serve",
                t,
                dur,
                perf_counter(),
                -1,
                0,
                self.name,
                (epoch,) if epoch >= 0 else (),
                (action,) + detail,
            )
        )

    def arrangement_entries(self) -> int:
        """Total indexed entries across the shared arrangements — the
        serving layer's state footprint (independent of session count)."""
        return sum(handle.state.entries() for handle in self.arrangements)

    def __repr__(self) -> str:
        return "SessionManager(%r, %d sessions, %d answered)" % (
            self.name, len(self.sessions), len(self.answers),
        )
