"""The Figure 1 application: real-time queries on streaming analytics.

A tweet stream feeds an incremental connected-components computation
over the graph of user mentions; hashtags are joined with component
labels and the most popular hashtag per component is maintained
incrementally.  Interactive queries ask "what's trending in my
component?" and are answered with fresh, consistent results (section
6.4) — this is the application the paper says no other system could run
at interactive timescales.

Run:  python examples/interactive_graph_analytics.py
"""

from repro import Computation
from repro.lib import Stream
from repro.algorithms import hashtag_component_app
from repro.workloads import TweetGenerator, TweetStreamConfig


def main():
    comp = Computation()
    tweets_in = comp.new_input("tweets")
    queries_in = comp.new_input("queries")

    def on_response(timestamp, responses):
        for query_id, user, hashtag in responses:
            print(
                "  [epoch %d] %s: user %s's component is talking about %s"
                % (timestamp.epoch, query_id, user, hashtag or "(nothing yet)")
            )

    hashtag_component_app(
        Stream.from_input(tweets_in),
        Stream.from_input(queries_in),
        on_response,
        fresh=True,
    )
    comp.build()

    generator = TweetGenerator(
        TweetStreamConfig(num_users=300, num_hashtags=20, seed=8)
    )
    for epoch in range(5):
        batch = generator.batch(100)
        queries = [(generator.query(), "q%d" % epoch)]
        print(
            "epoch %d: %d tweets (%d mentions, %d hashtags), querying user %s"
            % (
                epoch,
                len(batch),
                sum(len(t.mentions) for t in batch),
                sum(len(t.hashtags) for t in batch),
                queries[0][0],
            )
        )
        tweets_in.on_next(batch)
        queries_in.on_next(queries)
        comp.run()  # answers appear as each epoch completes

    tweets_in.on_completed()
    queries_in.on_completed()
    comp.run()
    assert comp.drained()


if __name__ == "__main__":
    main()
