"""Figure 6d: strong scaling of WordCount and WCC.

Fixed input, growing cluster.  The paper: WordCount (embarrassingly
parallel) scales almost linearly to 46x on 64 computers; WCC scales to
38x but starts to flatten around 24 computers because its many
synchronization points and its data exchange eventually dominate.

Same two applications on the simulated cluster at scaled-down input;
speedups are virtual-time ratios versus one computer.
"""

from repro.lib import Stream
from repro.algorithms import weakly_connected_components, wordcount_with_combiner
from repro.obs import TraceSink
from repro.runtime import ClusterComputation
from repro.workloads import generate_corpus, uniform_random_graph

from repro.runtime import CostModel

from bench_harness import (
    critical_path_lines,
    format_table,
    human_time,
    profile_lines,
    report,
)

COMPUTERS = [1, 2, 4, 8, 16, 32, 64]
# A compact vocabulary keeps combiners effective at high parallelism
# (the paper's corpus has vastly more data than distinct words), and the
# corpus is big enough that 128 workers still have real work per epoch —
# with less, fixed progress-protocol overhead flattens the curve well
# before the paper's knee.
CORPUS = generate_corpus(64000, words_per_line=8, vocabulary_size=200, seed=2)
GRAPH = uniform_random_graph(2000, 4000, seed=2)

#: Each simulated record stands for a block of ~100 records of the
#: paper-scale input (128 GB corpus / 200M-edge graph): per-record CPU
#: and wire size are scaled together, which keeps the compute:network
#: balance of the full-size run while the simulation stays tractable.
BLOCKED = CostModel(per_record_cost=2e-5, record_bytes=800)


def run_app(builder, records, num_computers: int, trace: bool = False):
    comp = ClusterComputation(
        num_processes=num_computers,
        workers_per_process=2,
        progress_mode="local+global",
        cost_model=BLOCKED,
    )
    sink = None
    if trace:
        sink = TraceSink()
        comp.attach_trace_sink(sink)
    inp = comp.new_input()
    builder(Stream.from_input(inp)).subscribe(lambda t, recs: None)
    comp.build()
    inp.on_next(records)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return comp, sink


def test_fig6d_strong_scaling(benchmark):
    def experiment():
        results = {}
        extras = []
        top = COMPUTERS[-1]
        for computers in COMPUTERS:
            # Combiners keep the Zipf head from serialising on one
            # worker — the paper's MapReduce WordCount does the same.
            wc, _ = run_app(wordcount_with_combiner, CORPUS, computers)
            # Trace the flagship 64-computer WCC run: its critical path
            # and DES self-profile go into the report.
            wcc, sink = run_app(
                weakly_connected_components, GRAPH, computers,
                trace=computers == top,
            )
            results[computers] = {"wordcount": wc.now, "wcc": wcc.now}
            if computers == top:
                extras.append("-- wcc @ %d computers, DES self-profile --" % top)
                extras.extend(profile_lines(wcc))
                extras.append("-- wcc @ %d computers, critical path --" % top)
                extras.extend(critical_path_lines(sink))
        return results, extras

    results, extras = benchmark.pedantic(experiment, rounds=1, iterations=1)

    base = results[1]
    rows = []
    for computers in COMPUTERS:
        r = results[computers]
        rows.append(
            (
                computers,
                human_time(r["wordcount"]),
                "%.1fx" % (base["wordcount"] / r["wordcount"]),
                human_time(r["wcc"]),
                "%.1fx" % (base["wcc"] / r["wcc"]),
            )
        )
    report(
        "fig6d_strong_scaling",
        format_table(
            ["computers", "wordcount", "speedup", "wcc", "speedup"], rows
        )
        + extras,
    )

    top = COMPUTERS[-1]
    wc_speedup = base["wordcount"] / results[top]["wordcount"]
    wcc_speedup = base["wcc"] / results[top]["wcc"]
    # Both scale, WordCount better than WCC (the paper: 46x vs 38x).
    assert wc_speedup > wcc_speedup > 1.5
    assert wc_speedup > 0.4 * top
    # WCC's scaling efficiency decays with size (the knee): efficiency
    # at the largest configuration is worse than at 4 computers.
    wcc_eff_small = (base["wcc"] / results[4]["wcc"]) / 4
    wcc_eff_large = wcc_speedup / top
    assert wcc_eff_large < wcc_eff_small
