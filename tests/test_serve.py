"""The serving layer (`repro.serve`): shared arrangements, sessions,
SLO classes and admission control.

The acceptance invariants from the ISSUE, all pinned here:

- arrangement memory is O(state), not O(sessions x state);
- fresh answers are bit-identical to the per-session ``QueryVertex``
  oracle (and to the plain-Python ``app_oracle``), including across a
  mid-run kill;
- measured stale-class p99 response time is below the fresh-class p99;
- every stale answer's *measured* staleness is within its bound, and
  every answer carries the epoch of the state it read (the satellite
  bugfix extends ``QueryVertex`` stale mode the same way).
"""

import pytest

from repro.core import Computation
from repro.lib.stream import Stream
from repro.obs import ACTIVITY_TYPES, TraceSink, serve_latency_stats
from repro.runtime import ClusterComputation, FaultTolerance
from repro.runtime.rescale import Hysteresis
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    Arrangement,
    CompactedEpochError,
    SessionManager,
    SharedArrangement,
)
from repro.workloads.tweets import Tweet, TweetGenerator, TweetStreamConfig
from repro.algorithms import (
    app_oracle,
    component_top_resolver,
    hashtag_component_app,
    hashtag_component_arrangements,
)


# ----------------------------------------------------------------------
# SharedArrangement units.
# ----------------------------------------------------------------------


class TestSharedArrangement:
    def test_versioned_reads(self):
        arr = SharedArrangement("a", retain=8)
        arr.apply(0, {"k": {"x": 1}})
        arr.apply(1, {"k": {"y": 1}})
        arr.apply(2, {"k": {"x": -1}})
        assert sorted(arr.lookup("k", 0)) == ["x"]
        assert sorted(arr.lookup("k", 1)) == ["x", "y"]
        assert sorted(arr.lookup("k", 2)) == ["y"]
        assert arr.published == 2

    def test_compaction_folds_and_bounds_memory(self):
        arr = SharedArrangement("a", retain=2)
        for epoch in range(20):
            deltas = {("rec", epoch): 1}
            if epoch:
                deltas[("rec", epoch - 1)] = -1
            arr.apply(epoch, {"k": deltas})
            arr.compact(epoch)
        # Only the retention window of logs survives.
        assert arr.compacted_through == 20 - 1 - 2
        assert len(arr.logs) == 2
        # The folded base is consolidated: one live record plus window.
        assert arr.entries() <= 1 + 2 * 2
        assert sorted(arr.lookup("k", 19)) == [("rec", 19)]

    def test_reads_below_floor_raise_or_clamp(self):
        arr = SharedArrangement("a", retain=1)
        for epoch in range(6):
            arr.apply(epoch, {"k": {("rec", epoch): 1}})
        arr.compact(4)
        assert arr.compacted_through == 4
        with pytest.raises(CompactedEpochError):
            arr.lookup("k", 1)
        # Clamped reads answer from the floor (a newer consistent view).
        assert len(arr.lookup("k", 1, clamp=True)) == 5
        assert arr.read_epoch(1) == 4
        assert arr.read_epoch(5) == 5

    def test_retain_window_always_survives(self):
        arr = SharedArrangement("a", retain=4)
        for epoch in range(6):
            arr.apply(epoch, {"k": {("rec", epoch): 1}})
        arr.compact(10)  # caller over-asks; clamped to published - retain
        assert arr.compacted_through == 5 - 4

    def test_apply_to_compacted_epoch_rejected(self):
        arr = SharedArrangement("a", retain=1)
        for epoch in range(4):
            arr.apply(epoch, {"k": {("rec", epoch): 1}})
        arr.compact(2)
        with pytest.raises(ValueError, match="already compacted"):
            arr.apply(1, {"k": {"late": 1}})

    def test_validation(self):
        with pytest.raises(ValueError, match="retain"):
            SharedArrangement("a", retain=0)


class TestCompactionEdgeCases:
    """The boundary semantics compaction must get exactly right."""

    @staticmethod
    def _filled(retain, epochs=8):
        arr = SharedArrangement("a", retain=retain)
        for epoch in range(epochs):
            arr.apply(
                epoch, {"k": {("rec", epoch): 1, ("rec", epoch - 2): -1}}
            )
        return arr

    def test_read_exactly_at_the_floor_is_exact(self):
        arr = self._filled(retain=1)
        twin = self._filled(retain=1)  # never compacted
        arr.compact(5)
        assert arr.compacted_through == 5
        # Epoch 5 is the floor itself: served from base, no clamp, no
        # error — and identical to the uncompacted history's answer.
        assert sorted(arr.lookup("k", 5)) == sorted(twin.lookup("k", 5))
        assert arr.read_epoch(5) == 5

    def test_below_floor_raises_and_clamp_answers_from_floor(self):
        arr = self._filled(retain=1)
        twin = self._filled(retain=1)
        arr.compact(5)
        # Raise-vs-clamp: the same read, both behaviours pinned.
        with pytest.raises(CompactedEpochError, match="floor 5"):
            arr.lookup("k", 4)
        clamped = arr.lookup("k", 4, clamp=True)
        assert sorted(clamped) == sorted(twin.lookup("k", 5))
        assert arr.read_epoch(4) == 5

    def test_compaction_racing_a_publish(self):
        """A publish that lands between choosing a floor and folding it
        must neither fold the new epoch nor corrupt reads."""
        arr = self._filled(retain=2, epochs=6)
        twin = self._filled(retain=2, epochs=6)
        # The writer picked floor=published while epoch 6 was landing:
        arr.apply(6, {"k": {("rec", 6): 1, ("rec", 4): -1}})
        twin.apply(6, {"k": {("rec", 6): 1, ("rec", 4): -1}})
        arr.compact(5)
        # The retain window off the *new* published epoch survives.
        assert arr.compacted_through == 6 - 2
        assert 6 in arr.logs and 5 in arr.logs
        for epoch in range(arr.compacted_through, 7):
            assert sorted(arr.lookup("k", epoch)) == sorted(
                twin.lookup("k", epoch)
            ), epoch
        # And the writer may keep publishing after the fold.
        arr.apply(7, {"k": {("rec", 7): 1}})
        twin.apply(7, {"k": {("rec", 7): 1}})
        assert sorted(arr.lookup("k", 7)) == sorted(twin.lookup("k", 7))

    def test_reader_floor_pins_compaction(self):
        """Compaction never folds an epoch a reader still has queries
        buffered for: the floor sits one below the reader's epoch."""
        from collections import namedtuple
        from types import SimpleNamespace

        from repro.serve.arrangement import ArrangeVertex

        TS = namedtuple("TS", "epoch")
        vertex = ArrangeVertex("a", key=lambda record: record[0], retain=1)
        for epoch in range(8):
            vertex.arr.apply(epoch, {"k": {("rec", epoch): 1}})
        vertex.readers = [SimpleNamespace(pending={TS(epoch=3): ["q"]})]
        vertex.arr.compact(vertex._reader_floor())
        assert vertex.arr.compacted_through == 2
        # Epoch 3 is still exact for the in-flight read.
        assert sorted(vertex.arr.lookup("k", 3)) == [
            ("rec", e) for e in range(4)
        ]
        # Once the reader drains, the same call folds up to the window.
        vertex.readers = []
        vertex.arr.compact(vertex._reader_floor())
        assert vertex.arr.compacted_through == 7 - 1


class TestHysteresis:
    def test_sustain_and_dead_band(self):
        h = Hysteresis(high=0.8, low=0.2, sustain=3)
        assert [h.update(0.9), h.update(0.9)] == [None, None]
        assert h.update(0.9) == "high"
        h.acknowledge("high")
        assert h.update(0.9) is None
        # A dead-band sample resets both streaks.
        h.update(0.9)
        assert h.update(0.5) is None and h.high_streak == 0
        assert [h.update(0.1), h.update(0.1), h.update(0.1)] == [None, None, "low"]

    def test_validation(self):
        with pytest.raises(ValueError, match="below high"):
            Hysteresis(high=0.5, low=0.5, sustain=1)
        with pytest.raises(ValueError, match="sustain"):
            Hysteresis(high=0.8, low=0.2, sustain=0)


# ----------------------------------------------------------------------
# Serving the Figure 8 workload (both runtimes).
# ----------------------------------------------------------------------

T_EPOCHS = [
    [Tweet(1, (2,), ("#x",)), Tweet(3, (), ("#y",))],
    [Tweet(2, (3,), ("#x",)), Tweet(3, (), ("#y",))],
    [Tweet(5, (6,), ()), Tweet(6, (), ("#z", "#z"))],
]
Q_EPOCHS = [[(2, "q0")], [(3, "q1")], [(5, "q2"), (1, "q3")]]


def fig8_workload(epochs=8, sessions=8, tweets_per_epoch=6, seed=17):
    """Deterministic tweet epochs plus per-session query users."""
    gen = TweetGenerator(
        TweetStreamConfig(num_users=60, num_hashtags=12, seed=seed)
    )
    qgen = TweetGenerator(TweetStreamConfig(num_users=60, seed=seed + 1))
    tweet_epochs = [gen.batch(tweets_per_epoch) for _ in range(epochs)]
    query_epochs = [
        [
            (qgen.query(), "q%d_%d" % (epoch, s))
            for s in range(sessions)
        ]
        for epoch in range(epochs)
    ]
    return tweet_epochs, query_epochs


def serve_run(
    comp,
    tweet_epochs,
    query_epochs,
    slo="fresh",
    bound=3,
    policy=None,
    trace=None,
    kill=None,
    rescale=None,
):
    """Drive the arranged Figure 1 app through a SessionManager; one
    session per query-stream column, answers in delivery order.

    ``slo="mixed"`` opens the first half of the columns fresh and the
    second half ``stale(bound)``.
    """
    ti, qi = comp.new_input(), comp.new_input()
    arrangements = hashtag_component_arrangements(Stream.from_input(ti))
    manager = SessionManager(
        comp, qi, list(arrangements), component_top_resolver, policy=policy
    )
    if trace is not None:
        comp.attach_trace_sink(trace)
    comp.build()
    if kill is not None:
        comp.kill_process(kill[0], at=kill[1])
    if rescale is not None:
        for op in rescale:
            if op[0] == "add":
                comp.add_process(at=op[1])
            else:
                comp.remove_process(op[1], at=op[2])
    sessions = {}
    for tweets, queries in zip(tweet_epochs, query_epochs):
        for column, (user, query_id) in enumerate(queries):
            session = sessions.get(column)
            if session is None:
                column_slo = slo
                if slo == "mixed":
                    column_slo = "fresh" if column < len(queries) // 2 else "stale"
                session = sessions[column] = manager.open_session(
                    column_slo, bound=bound if column_slo == "stale" else None
                )
            manager.submit(session, user, query_id=query_id)
        ti.on_next(tweets)
        manager.pump()
        comp.run()
    ti.on_completed()
    manager.close()
    comp.run()
    manager.drain()
    assert comp.drained()
    return manager, arrangements


class TestServingFresh:
    @pytest.mark.parametrize("cluster", [False, True])
    def test_fresh_matches_plain_oracle(self, cluster):
        comp = ClusterComputation(2, 2) if cluster else Computation()
        manager, _ = serve_run(comp, T_EPOCHS, Q_EPOCHS)
        got = sorted((a.query_id, a.user, a.value) for a in manager.answers)
        assert got == sorted(app_oracle(T_EPOCHS, Q_EPOCHS))
        assert all(a.staleness == 0 for a in manager.answers)

    def test_fresh_bit_identical_to_queryvertex_oracle(self):
        # N >= 100 concurrent sessions against ONE pair of arrangements,
        # versus the pre-serving design: a QueryVertex fed per-session
        # query streams.  Same answers, bit for bit.
        tweet_epochs, query_epochs = fig8_workload(epochs=6, sessions=100)
        manager, _ = serve_run(
            ClusterComputation(2, 2), tweet_epochs, query_epochs
        )
        served = sorted((a.query_id, a.user, a.value) for a in manager.answers)

        oracle_comp = ClusterComputation(2, 2)
        ti, qi = oracle_comp.new_input(), oracle_comp.new_input()
        responses = []
        hashtag_component_app(
            Stream.from_input(ti),
            Stream.from_input(qi),
            lambda t, recs: responses.extend(recs),
            fresh=True,
        )
        oracle_comp.build()
        for tweets, queries in zip(tweet_epochs, query_epochs):
            ti.on_next(tweets)
            qi.on_next(queries)
            oracle_comp.run()
        ti.on_completed()
        qi.on_completed()
        oracle_comp.run()
        assert served == sorted(responses)
        assert len(served) == 600

    def test_same_epoch_batching(self):
        # 100 sessions' queries ride one injected epoch each round: the
        # server takes one notification and one view snapshot per epoch,
        # not one per session.
        tweet_epochs, query_epochs = fig8_workload(epochs=4, sessions=100)
        manager, _ = serve_run(
            ClusterComputation(1, 2), tweet_epochs, query_epochs
        )
        assert manager.fresh_injected == 400
        assert manager.fresh_epochs == 4


class TestServingStale:
    def test_staleness_measured_and_bounded(self):
        tweet_epochs, query_epochs = fig8_workload(epochs=8, sessions=12)
        manager, _ = serve_run(
            ClusterComputation(2, 2),
            tweet_epochs,
            query_epochs,
            slo="stale",
            bound=3,
        )
        assert len(manager.answers) == 96
        for answer in manager.answers:
            assert answer.slo == "stale"
            assert answer.staleness <= 3
            # The tag is the epoch of the state actually read.
            assert answer.state_epoch >= -1

    def test_stale_p99_beats_fresh_p99(self):
        # The Figure 8 trade-off, measured from the serve trace events:
        # stale answers skip the update path and return in stale_cost,
        # fresh answers wait for their epoch to complete.
        tweet_epochs, _ = fig8_workload(epochs=8, sessions=0)
        _, query_epochs = fig8_workload(epochs=8, sessions=60)
        stale_half = [q[:30] for q in query_epochs]
        fresh_half = [q[30:] for q in query_epochs]

        trace = TraceSink()
        comp = ClusterComputation(2, 2)
        ti, qi = comp.new_input(), comp.new_input()
        arrangements = hashtag_component_arrangements(Stream.from_input(ti))
        manager = SessionManager(
            comp, qi, list(arrangements), component_top_resolver
        )
        comp.attach_trace_sink(trace)
        comp.build()
        fresh = [manager.open_session("fresh") for _ in range(30)]
        stale = [manager.open_session("stale", bound=4) for _ in range(30)]
        for tweets, fresh_queries, stale_queries in zip(
            tweet_epochs, fresh_half, stale_half
        ):
            for session, (user, query_id) in zip(fresh, fresh_queries):
                manager.submit(session, user, query_id=query_id)
            for session, (user, query_id) in zip(stale, stale_queries):
                manager.submit(session, user, query_id=query_id)
            ti.on_next(tweets)
            manager.pump()
            comp.run()
        ti.on_completed()
        manager.close()
        comp.run()
        manager.drain()

        stats = serve_latency_stats(trace.events)
        assert set(stats) == {"fresh", "stale"}
        assert stats["fresh"].answers == stats["stale"].answers == 240
        assert stats["stale"].p99 < stats["fresh"].p99
        assert stats["stale"].p50 <= stats["stale"].p99
        assert stats["stale"].max_staleness <= 4

    def test_serve_trace_kind_registered(self):
        assert ACTIVITY_TYPES["serve"] == "processing"


class TestArrangementMemory:
    def test_memory_is_o_state_not_o_sessions(self):
        # The acceptance bound: 8 vs 128 sessions over the same tweet
        # stream leave the arrangement footprint identical.
        tweet_epochs, _ = fig8_workload(epochs=6, sessions=0)
        footprints = {}
        for sessions in (8, 128):
            _, query_epochs = fig8_workload(epochs=6, sessions=sessions)
            manager, arrangements = serve_run(
                ClusterComputation(1, 2), tweet_epochs, query_epochs
            )
            assert len(manager.sessions) == sessions
            footprints[sessions] = manager.arrangement_entries()
        assert footprints[8] == footprints[128]

    def test_compaction_bounds_log_history(self):
        # Long stream, small retention: live log epochs stay within the
        # retain window instead of growing with the epoch count.
        gen = TweetGenerator(TweetStreamConfig(num_users=40, seed=9))
        comp = ClusterComputation(1, 2)
        ti, qi = comp.new_input(), comp.new_input()
        arrangements = hashtag_component_arrangements(
            Stream.from_input(ti), retain=3
        )
        manager = SessionManager(
            comp, qi, list(arrangements), component_top_resolver
        )
        comp.build()
        session = manager.open_session("fresh")
        for _ in range(25):
            manager.submit(session, gen.query())
            ti.on_next(gen.batch(4))
            manager.pump()
            comp.run()
        ti.on_completed()
        manager.close()
        comp.run()
        for handle in arrangements:
            state = handle.state
            # Diff-free epochs never reach the arranger, so `published`
            # may trail the epoch count; the retention window is always
            # measured from it.
            assert state.published >= 15
            assert state.compacted_through == state.published - 3
            assert len(state.logs) <= 3
            assert state.compactions > 0


# ----------------------------------------------------------------------
# Admission control.
# ----------------------------------------------------------------------


class TestAdmission:
    def make_manager(self, policy):
        comp = ClusterComputation(1, 2)
        ti, qi = comp.new_input(), comp.new_input()
        arrangements = hashtag_component_arrangements(Stream.from_input(ti))
        manager = SessionManager(
            comp, qi, list(arrangements), component_top_resolver, policy=policy
        )
        comp.build()
        return comp, ti, manager

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="recover"):
            AdmissionPolicy(degrade_depth=8, shed_depth=4).validate()
        with pytest.raises(ValueError, match="lag_recover"):
            AdmissionPolicy(lag_degrade=2, lag_recover=2).validate()
        with pytest.raises(ValueError, match="degrade_bound"):
            AdmissionPolicy(degrade_bound=-1).validate()

    def test_burst_degrades_then_recovers(self):
        policy = AdmissionPolicy(
            degrade_depth=8,
            shed_depth=64,
            recover_depth=2,
            sustain=2,
            cooldown=0.0,
            degrade_bound=4,
        )
        comp, ti, manager = self.make_manager(policy)
        gen = TweetGenerator(TweetStreamConfig(num_users=40, seed=5))
        sessions = [manager.open_session("fresh") for _ in range(32)]
        for i in range(32):  # burst without pumping: depth builds up
            manager.submit(sessions[i], gen.query())
        assert manager.admission.mode == "degrade"
        assert manager.admission.degraded > 0
        degraded = [a for a in manager.answers if a.degraded]
        assert degraded and all(a.slo == "stale" for a in degraded)
        assert all(a.staleness <= 4 for a in degraded)
        ti.on_next(gen.batch(4))
        manager.pump()
        comp.run()
        for _ in range(6):  # light steady load: mode recovers
            manager.submit(sessions[0], gen.query())
            ti.on_next(gen.batch(2))
            manager.pump()
            comp.run()
        assert manager.admission.mode == "normal"
        transitions = [t["mode"] for t in manager.admission.transitions]
        assert transitions == ["degrade", "normal"]

    def test_sustained_overload_sheds(self):
        policy = AdmissionPolicy(
            degrade_depth=6,
            shed_depth=24,
            recover_depth=2,
            sustain=2,
            cooldown=0.0,
            degrade_bound=0,
        )
        comp, ti, manager = self.make_manager(policy)
        gen = TweetGenerator(TweetStreamConfig(num_users=40, seed=6))
        # Data epochs are injected but never run: the publish frontier
        # stalls, so degraded stale(0) queries park and depth keeps
        # climbing until the shed threshold sustains.
        for _ in range(4):
            ti.on_next(gen.batch(3))
            manager.pump()
        sessions = [manager.open_session("fresh") for _ in range(60)]
        for session in sessions:
            manager.submit(session, gen.query())
        assert manager.admission.mode == "shed"
        assert manager.rejections
        (query_id, session_id, _at) = manager.rejections[0]
        assert manager.sessions[session_id].rejected == 1
        ti.on_completed()
        manager.close()
        comp.run()
        manager.drain()
        assert manager.outstanding == 0
        # Rejected queries are rejected, not deferred: no late answers.
        rejected_ids = {r[0] for r in manager.rejections}
        assert rejected_ids.isdisjoint(a.query_id for a in manager.answers)

    def test_stale_sessions_never_degraded_only_shed(self):
        policy = AdmissionPolicy(
            degrade_depth=4,
            shed_depth=1000,
            recover_depth=1,
            sustain=1,
            cooldown=0.0,
        )
        comp, ti, manager = self.make_manager(policy)
        gen = TweetGenerator(TweetStreamConfig(num_users=40, seed=7))
        for _ in range(3):
            ti.on_next(gen.batch(2))
            manager.pump()
        session = manager.open_session("stale", bound=10)
        for _ in range(12):
            manager.submit(session, gen.query())
        assert session.degraded == 0
        assert all(not a.degraded for a in manager.answers)


# ----------------------------------------------------------------------
# Satellite bugfix: QueryVertex stale answers carry their state epoch.
# ----------------------------------------------------------------------


class TestQueryVertexStaleTag:
    def run_stale_app(self):
        comp = Computation()
        ti, qi = comp.new_input(), comp.new_input()
        answers = []
        hashtag_component_app(
            Stream.from_input(ti),
            Stream.from_input(qi),
            lambda t, recs: answers.extend(recs),
            fresh=False,
        )
        comp.build()
        for epoch, (tweets, queries) in enumerate(zip(T_EPOCHS, Q_EPOCHS)):
            ti.on_next(tweets)
            qi.on_next(queries)
            comp.run()
        ti.on_completed()
        qi.on_completed()
        comp.run()
        return answers

    def test_stale_answers_are_tagged_with_state_epoch(self):
        answers = self.run_stale_app()
        assert len(answers) == sum(len(q) for q in Q_EPOCHS)
        for answer in answers:
            assert len(answer) == 4
            query_id, _user, _tag, state_epoch = answer
            epoch = int(query_id[1:].split("_")[0]) if "_" in query_id else int(
                query_id[1:]
            )
            # The tag is a conservative floor: never ahead of the
            # query's own epoch, -1 before the first epoch completes.
            assert -1 <= state_epoch <= epoch

    def test_fresh_answers_unchanged_three_tuples(self):
        comp = Computation()
        ti, qi = comp.new_input(), comp.new_input()
        answers = []
        hashtag_component_app(
            Stream.from_input(ti),
            Stream.from_input(qi),
            lambda t, recs: answers.extend(recs),
            fresh=True,
        )
        comp.build()
        for tweets, queries in zip(T_EPOCHS, Q_EPOCHS):
            ti.on_next(tweets)
            qi.on_next(queries)
            comp.run()
        ti.on_completed()
        qi.on_completed()
        comp.run()
        assert all(len(answer) == 3 for answer in answers)


# ----------------------------------------------------------------------
# Serving under failure (the fast kill case; the heavy sweeps live in
# the chaos matrix).
# ----------------------------------------------------------------------


class TestServingRecovery:
    def test_fresh_bit_identical_across_midrun_kill(self):
        tweet_epochs, query_epochs = fig8_workload(epochs=8, sessions=100)
        ft = FaultTolerance(
            mode="checkpoint",
            checkpoint_every=2,
            checkpoint_mode="async",
            restart_delay=0.005,
        )
        manager, _ = serve_run(
            ClusterComputation(2, 2, fault_tolerance=ft),
            tweet_epochs,
            query_epochs,
        )
        expected = sorted(
            (a.query_id, a.user, a.value) for a in manager.answers
        )
        duration = manager.computation.sim.now

        killed, _ = serve_run(
            ClusterComputation(2, 2, fault_tolerance=ft),
            tweet_epochs,
            query_epochs,
            kill=(1, duration * 0.5),
        )
        assert len(killed.computation.recovery.failures) == 1
        got = sorted((a.query_id, a.user, a.value) for a in killed.answers)
        assert got == expected

    def test_stale_bound_holds_across_kill(self):
        tweet_epochs, query_epochs = fig8_workload(epochs=8, sessions=10)
        ft = FaultTolerance(
            mode="checkpoint",
            checkpoint_every=2,
            checkpoint_mode="async",
            restart_delay=0.005,
        )
        probe_manager, _ = serve_run(
            ClusterComputation(2, 2, fault_tolerance=ft),
            tweet_epochs,
            query_epochs,
            slo="stale",
            bound=3,
        )
        duration = probe_manager.computation.sim.now
        manager, _ = serve_run(
            ClusterComputation(2, 2, fault_tolerance=ft),
            tweet_epochs,
            query_epochs,
            slo="stale",
            bound=3,
            kill=(1, duration * 0.5),
        )
        assert len(manager.answers) == 80
        assert all(a.staleness <= 3 for a in manager.answers)


# ----------------------------------------------------------------------
# Builder-level details.
# ----------------------------------------------------------------------


class TestBuilders:
    def test_arrange_by_returns_handle_and_registers(self):
        comp = Computation()
        ti = comp.new_input()
        from repro.lib.incremental import Collection

        tweets = Collection.from_records(Stream.from_input(ti))
        handle = tweets.arrange_by(lambda d: d[0], name="tweets_by_user")
        assert isinstance(handle, Arrangement)
        assert comp.arrangements["tweets_by_user"] is handle
        with pytest.raises(ValueError, match="already registered"):
            tweets.arrange_by(lambda d: d[0], name="tweets_by_user")

    def test_vertex_resolution_requires_build(self):
        comp = Computation()
        ti = comp.new_input()
        from repro.lib.incremental import Collection

        handle = Collection.from_records(Stream.from_input(ti)).arrange_by(
            lambda d: d[0], name="a"
        )
        with pytest.raises(RuntimeError, match="build"):
            handle.vertex()

    def test_session_manager_validation(self):
        comp = Computation()
        comp.new_input()
        qi = comp.new_input()
        with pytest.raises(ValueError, match="at least one arrangement"):
            SessionManager(comp, qi, [], component_top_resolver)

    def test_session_validation(self):
        comp = Computation()
        ti, qi = comp.new_input(), comp.new_input()
        from repro.lib.incremental import Collection

        handle = Collection.from_records(Stream.from_input(ti)).arrange_by(
            lambda d: d[0], name="a"
        )
        manager = SessionManager(comp, qi, [handle], component_top_resolver)
        comp.build()
        with pytest.raises(ValueError, match="slo"):
            manager.open_session("eventually")
        with pytest.raises(ValueError, match="bound"):
            manager.open_session("stale")
        session = manager.open_session("fresh")
        manager.close_session(session)
        with pytest.raises(RuntimeError, match="closed"):
            manager.submit(session, 1)
