"""Scoped hierarchical progress tracking: equivalence, algebra, API.

Four suites back the scoped-progress redesign:

- **Bit-identity matrix.**  ``progress_tracking="scoped"`` (boundary
  projections only) and ``"flat"`` (the paper's every-pointstamp
  dissemination) must produce identical per-epoch output multisets
  across workloads x fault-tolerance modes x optimizer settings x
  backends, including nested loops.
- **Boundary-summary algebra.**  Unit checks of the projection and the
  collapsed ``ScopeNode`` representation the protocol disseminates.
- **Eager builder validation.**  The scope-based builder API rejects
  malformed loops at construction time with typed errors.
- **Deprecation shims.**  The pre-redesign ``Loop`` / ``enter`` /
  ``leave`` surface still works but warns.
"""

import warnings
from collections import Counter

import pytest

from repro import Computation
from repro.core import (
    CrossScopeConnectError,
    FeedbackNotConnectedError,
    GraphValidationError,
    PathSummary,
    Timestamp,
    UnclosedScopeError,
)
from repro.algorithms.connectivity import wcc_oracle, weakly_connected_components
from repro.lib import Loop, Stream, pregel, final_states
from repro.runtime import ClusterComputation, FaultTolerance
from repro.workloads.graphs import uniform_random_graph

EDGES_A = uniform_random_graph(40, 70, seed=3)
EDGES_B = uniform_random_graph(40, 55, seed=4)


# ----------------------------------------------------------------------
# Workload builders: each returns Counter((epoch, record)) — the
# progress-timing-immune equivalence convention.
# ----------------------------------------------------------------------


def run_wcc(comp):
    inp = comp.new_input()
    out = Counter()
    weakly_connected_components(Stream.from_input(inp)).subscribe(
        lambda t, recs: out.update((t.epoch, r) for r in recs)
    )
    comp.build()
    inp.on_next(EDGES_A)
    inp.on_next(EDGES_B)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return out


def run_nested(comp):
    """Three-deep nested iterate: inner counters must project away."""
    inp = comp.new_input()
    out = Counter()

    def inner(stream):
        return stream.select(lambda x: x - 1).where(lambda x: x > 0)

    def middle(stream):
        return inner(stream).iterate(inner).where(lambda x: x % 2 == 0)

    Stream.from_input(inp).iterate(middle).subscribe(
        lambda t, recs: out.update((t.epoch, r) for r in recs)
    )
    comp.build()
    inp.on_next([6, 11])
    inp.on_next([9])
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return out


def run_pregel_cc(comp):
    def compute(ctx):
        best = min(ctx.messages) if ctx.messages else ctx.state
        if ctx.superstep == 0 or best < ctx.state:
            ctx.set_state(min(best, ctx.state))
            ctx.send_to_neighbors(ctx.state)
        ctx.vote_to_halt()

    adj = {}
    for u, v in EDGES_A:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    graph = [(n, n, nbrs) for n, nbrs in adj.items()]

    inp = comp.new_input()
    out = Counter()
    states = pregel(Stream.from_input(inp), compute, max_supersteps=60)
    final_states(states).subscribe(
        lambda t, recs: out.update((t.epoch, r) for r in recs)
    )
    comp.build()
    inp.on_next(graph)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return out


CASES = {"wcc": run_wcc, "nested": run_nested, "pregel": run_pregel_cc}


def run_case(case, **kwargs):
    kwargs.setdefault("num_processes", 3)
    kwargs.setdefault("workers_per_process", 2)
    kwargs.setdefault("progress_mode", "local+global")
    return CASES[case](ClusterComputation(**kwargs))


class TestScopedFlatBitIdentity:
    """DESIGN.md invariant: dissemination strategy never changes output."""

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("ft_mode", ["none", "checkpoint", "logging"])
    def test_matrix_ft_modes(self, case, ft_mode):
        ft = FaultTolerance(mode=ft_mode)
        flat = run_case(case, progress_tracking="flat", fault_tolerance=ft)
        scoped = run_case(case, progress_tracking="scoped", fault_tolerance=ft)
        assert scoped == flat

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("optimize", [False, True])
    def test_matrix_optimizer(self, case, optimize):
        flat = run_case(case, progress_tracking="flat", optimize=optimize)
        scoped = run_case(case, progress_tracking="scoped", optimize=optimize)
        assert scoped == flat

    @pytest.mark.parametrize("mode", ["none", "local", "global", "local+global"])
    def test_matrix_progress_modes(self, mode):
        flat = run_case("wcc", progress_mode=mode, progress_tracking="flat")
        scoped = run_case("wcc", progress_mode=mode, progress_tracking="scoped")
        assert scoped == flat

    def test_matrix_mp_backend(self):
        flat = run_case("wcc", backend="mp", progress_tracking="flat")
        scoped = run_case("wcc", backend="mp", progress_tracking="scoped")
        assert scoped == flat

    def test_wcc_matches_oracle(self):
        oracle = wcc_oracle(EDGES_A)
        scoped = run_case("wcc", progress_tracking="scoped")
        assert {r for e, r in scoped if e == 0} == set(oracle.items())


class TestTrafficAndMemoization:
    """The point of the redesign: boundary summaries shrink the
    coordination traffic, and memoized hold verdicts actually hit."""

    def test_scoped_reduces_progress_traffic(self):
        stats = {}
        for tracking in ("flat", "scoped"):
            comp = ClusterComputation(
                num_processes=4,
                workers_per_process=2,
                progress_mode="local+global",
                progress_tracking=tracking,
            )
            run_wcc(comp)
            stats[tracking] = (
                comp.network.stats.messages("progress"),
                comp.network.stats.bytes("progress"),
            )
        assert stats["scoped"][0] < stats["flat"][0] / 2
        assert stats["scoped"][1] < stats["flat"][1] / 2

    def test_hold_memoization_hits(self):
        comp = ClusterComputation(
            num_processes=4,
            workers_per_process=2,
            progress_mode="local+global",
            progress_tracking="scoped",
        )
        run_wcc(comp)
        hits = sum(n.hold_memo_hits for n in comp.nodes)
        evals = sum(n.hold_evals for n in comp.nodes)
        if comp.central is not None:
            hits += comp.central.hold_memo_hits
            evals += comp.central.hold_evals
        assert evals > 0
        assert hits > 0  # the 0.0%-hit-rate regression stays fixed

    def test_wcc_scope_is_summarized(self):
        comp = ClusterComputation(2, 2, progress_tracking="scoped")
        inp = comp.new_input()
        weakly_connected_components(Stream.from_input(inp)).subscribe(
            lambda t, recs: None
        )
        comp.build()
        assert len(comp.summarized_scopes) == 1
        assert comp._proj_table  # interior locations project to the node

    def test_notifying_scope_is_not_summarized(self):
        # Pregel's vertex requests notifications, so its loop must keep
        # full-precision dissemination (and still drain correctly).
        comp = ClusterComputation(2, 2, progress_tracking="scoped")
        run_pregel_cc(comp)
        assert comp.summarized_scopes == ()


class TestBoundarySummaryAlgebra:
    def _wcc_graph(self):
        comp = Computation()
        inp = comp.new_input()
        weakly_connected_components(Stream.from_input(inp)).subscribe(
            lambda t, recs: None
        )
        comp.build()
        return comp

    def test_scope_node_carries_parent_depth(self):
        comp = self._wcc_graph()
        index = comp.graph.summary_index
        (scope,) = comp.graph.contexts
        node = index.scope_node(scope)
        assert node.depth == scope.depth - 1 == 0

    def test_projection_drops_inner_counters(self):
        comp = self._wcc_graph()
        index = comp.graph.summary_index
        (scope,) = comp.graph.contexts
        assert index.project(Timestamp(3, (17,)), scope) == Timestamp(3, ())
        # Already at boundary depth: projection is the identity.
        assert index.project(Timestamp(3, ()), scope) == Timestamp(3, ())

    def test_boundary_summary_is_identity_at_parent_depth(self):
        """Ingress -> interior -> egress composes to the identity at the
        parent's depth: entering, iterating and leaving never move the
        parent-level coordinates."""
        s = (
            PathSummary.ingress(0)
            .then(PathSummary.feedback(1))
            .then(PathSummary.feedback(1))
            .then(PathSummary.egress(1))
        )
        assert s == PathSummary.identity(0)

    def test_cross_scope_summaries_truncate(self):
        comp = self._wcc_graph()
        index = comp.graph.summary_index
        (scope,) = comp.graph.contexts
        inner = [s for s in comp.graph.stages if s.input_context is scope]
        outer = [s for s in comp.graph.stages if s.input_context is None]
        crossing = 0
        for l1 in inner:
            for l2 in outer:
                chain = index.get((l1, l2))
                if chain is None:
                    continue
                crossing += 1
                for summary in chain:
                    assert summary.target_depth == 0
        assert crossing  # the egress path exists

    def test_projected_updates_are_idempotent(self):
        from repro.core.progress import Pointstamp

        comp = ClusterComputation(2, 2, progress_tracking="scoped")
        inp = comp.new_input()
        weakly_connected_components(Stream.from_input(inp)).subscribe(
            lambda t, recs: None
        )
        comp.build()
        location = next(iter(comp._proj_table))
        node = comp._proj_table[location]
        once = comp._project_updates(
            [(Pointstamp(Timestamp(0, (2,)), location), 1)]
        )
        assert once == [(Pointstamp(Timestamp(0, ()), node), 1)]
        assert comp._project_updates(once) == once


class TestEagerValidation:
    def test_unfed_feedback_raises_at_scope_exit(self):
        comp = Computation()
        inp = comp.new_input()
        with pytest.raises(FeedbackNotConnectedError) as excinfo:
            with Stream.from_input(inp).scoped_loop(name="hole") as loop:
                loop.entered.select(lambda x: x)
        assert excinfo.value.scope_name == "hole"

    def test_body_exception_is_not_masked(self):
        comp = Computation()
        inp = comp.new_input()
        with pytest.raises(ZeroDivisionError):
            with Stream.from_input(inp).scoped_loop() as loop:
                1 // 0

    def test_unclosed_scope_rejected_at_build(self):
        comp = Computation()
        inp = comp.new_input()
        scope = Stream.from_input(inp).scoped_loop(name="dangling")
        scope.__enter__()
        scope.feed(scope.feedback.select(lambda x: x))
        with pytest.raises(UnclosedScopeError, match="dangling"):
            comp.build()

    def test_cross_scope_connect_rejected_eagerly(self):
        from repro.core import ForwardingVertex

        comp = Computation()
        inp = comp.new_input()
        with Stream.from_input(inp).scoped_loop() as loop:
            loop.feed(loop.entered)
            outside = comp.graph.new_stage(
                "sink", lambda s, w: ForwardingVertex(), 1, 1
            )
            # Escapes the scope without an egress stage: rejected at
            # connect time, not at freeze.
            with pytest.raises(CrossScopeConnectError):
                loop.feedback.connect_to(outside, 0)

    def test_leave_with_checks_context(self):
        comp = Computation()
        inp = comp.new_input()
        outside = Stream.from_input(inp)
        with pytest.raises(GraphValidationError):
            with outside.scoped_loop() as loop:
                loop.feed(loop.entered)
                loop.leave_with(outside)  # not a stream of this scope

    def test_double_feed_rejected(self):
        comp = Computation()
        inp = comp.new_input()
        with pytest.raises(GraphValidationError, match="already"):
            with Stream.from_input(inp).scoped_loop() as loop:
                loop.feed(loop.entered)
                loop.feed(loop.entered)


class TestDeprecationShims:
    def _run(self, build):
        comp = Computation()
        inp = comp.new_input()
        out = Counter()
        build(comp, Stream.from_input(inp)).subscribe(
            lambda t, recs: out.update((t.epoch, r) for r in recs)
        )
        comp.build()
        inp.on_next([7, 4])
        inp.on_completed()
        comp.run()
        assert comp.drained()
        return out

    def test_old_loop_api_warns_and_still_works(self):
        def old_style(comp, stream):
            with pytest.warns(DeprecationWarning):
                loop = Loop(comp, max_iterations=None, name="legacy")
            with pytest.warns(DeprecationWarning):
                entered = stream.enter(loop)
            body = (
                entered.concat(loop.feedback_stream())
                .select(lambda x: x - 1)
                .where(lambda x: x > 0)
            )
            loop.connect_feedback(body)
            with pytest.warns(DeprecationWarning):
                return body.leave()

        def new_style(comp, stream):
            with stream.scoped_loop(name="legacy") as loop:
                body = (
                    loop.entered.concat(loop.feedback)
                    .select(lambda x: x - 1)
                    .where(lambda x: x > 0)
                )
                loop.feed(body)
                out = loop.leave_with(body)
            return out

        assert self._run(old_style) == self._run(new_style)

    def test_new_surface_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            self._run(
                lambda comp, stream: stream.iterate(
                    lambda body: body.select(lambda x: x - 2).where(
                        lambda x: x > 0
                    )
                )
            )
