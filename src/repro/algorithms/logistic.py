"""Distributed logistic regression with AllReduce (section 6.2, Fig 7b).

The paper modifies Vowpal Wabbit so each iteration runs three phases:
(1) per-process state update, (2) local training over the process's
shard, (3) a global AllReduce combining local updates.  This module
reproduces that structure as a timely dataflow loop: a training vertex
holds its shard and weights, computes the local gradient each
iteration, and the reduced global gradient returns through the loop's
feedback edge (via either AllReduce implementation).

Batch gradient descent stands in for VW's L-BFGS: both have the
same phase structure and identical communication (one dense
weight-length vector per worker per iteration), which is what the
Figure 7b experiment measures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from ..lib.allreduce import allreduce
from ..lib.stream import Stream


def make_dataset(
    num_records: int, num_features: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic linearly separable-ish classification data.

    Returns ``(X, y, true_weights)`` with labels in {0, 1}.
    """
    rng = np.random.RandomState(seed)
    true_weights = rng.randn(num_features)
    X = rng.randn(num_records, num_features)
    logits = X @ true_weights + 0.5 * rng.randn(num_records)
    y = (logits > 0).astype(float)
    return X, y, true_weights


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out


def local_gradient(
    X: np.ndarray, y: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Gradient of the (unnormalised) logistic loss over one shard."""
    predictions = _sigmoid(X @ weights)
    return X.T @ (predictions - y)


class TrainVertex(Vertex):
    """One worker's shard plus the iterated weight vector.

    Input 0: ``(worker, X, y)`` shard via the ingress.  Input 1: the
    reduced global gradient from the feedback (AllReduce output).
    Output 0: ``(worker, local_gradient)`` contributions.  Output 1:
    final ``(worker, weights)``.
    """

    def __init__(self, iterations: int, learning_rate: float, num_features: int):
        super().__init__()
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.num_features = num_features
        #: epoch -> (X, y, weights, total record count)
        self.state: Dict[int, list] = {}
        self.grads: Dict[Timestamp, np.ndarray] = {}
        self._notified = set()

    def _request(self, timestamp: Timestamp) -> None:
        if timestamp not in self._notified:
            self._notified.add(timestamp)
            self.notify_at(timestamp)

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        if input_port == 0:
            for _worker, X, y, total in records:
                self.state[timestamp.epoch] = [X, y, np.zeros(self.num_features), total]
        else:
            for _worker, gradient in records:
                self.grads[timestamp] = gradient
        self._request(timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        self._notified.discard(timestamp)
        state = self.state.get(timestamp.epoch)
        if state is None:
            return
        X, y, weights, total = state
        iteration = timestamp.counters[-1]
        if iteration > 0:
            reduced = self.grads.pop(timestamp, None)
            if reduced is not None:
                weights -= self.learning_rate * reduced / total
        if iteration < self.iterations:
            gradient = local_gradient(X, y, weights)
            self.send_by(0, [(self.worker, gradient)], timestamp)
            self._request(timestamp.incremented())
        else:
            self.send_by(1, [(self.worker, weights.copy())], timestamp)
            del self.state[timestamp.epoch]


def logistic_regression(
    shards: Stream,
    num_features: int,
    iterations: int = 10,
    learning_rate: float = 0.5,
    reducer: Callable[..., Stream] = allreduce,
    name: str = "logistic",
) -> Stream:
    """Train on ``(worker, X, y, total)`` shards; returns final weights.

    ``reducer`` selects the AllReduce implementation:
    :func:`repro.lib.allreduce.allreduce` (the paper's data-parallel
    version) or :func:`repro.lib.allreduce.tree_allreduce` (the VW
    baseline topology).
    """
    computation = shards.computation
    with shards.scoped_loop(name=name, max_iterations=iterations + 1) as loop:
        stage = loop.stage(
            name,
            lambda s, w: TrainVertex(iterations, learning_rate, num_features),
            2,
            2,
        )
        loop.entered.connect_to(stage, 0, partitioner=lambda rec: rec[0])
        loop.feed(reducer(Stream(computation, stage, 0)))
        loop.feedback.connect_to(stage, 1, partitioner=lambda rec: rec[0])
        out = loop.leave_with(Stream(computation, stage, 1))
    return out


def logistic_oracle(
    X: np.ndarray,
    y: np.ndarray,
    iterations: int = 10,
    learning_rate: float = 0.5,
) -> np.ndarray:
    """Single-machine gradient descent with the same recurrence."""
    weights = np.zeros(X.shape[1])
    for _ in range(iterations):
        weights = weights - learning_rate * local_gradient(X, y, weights) / len(y)
    return weights
