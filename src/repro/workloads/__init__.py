"""Synthetic dataset generators standing in for the paper's datasets.

See DESIGN.md for the substitution table (what the paper used, what we
generate, and why the substitution preserves the measured behaviour).
"""

from .graphs import (
    power_law_graph,
    undirected_adjacency,
    uniform_random_graph,
    weak_scaling_graph,
    zorder,
)
from .text import generate_corpus, zipf_words
from .tweets import (
    Tweet,
    TweetGenerator,
    TweetStreamConfig,
    hashtag_records,
    mention_edges,
)

__all__ = [
    "Tweet",
    "TweetGenerator",
    "TweetStreamConfig",
    "generate_corpus",
    "hashtag_records",
    "mention_edges",
    "power_law_graph",
    "undirected_adjacency",
    "uniform_random_graph",
    "weak_scaling_graph",
    "zipf_words",
    "zorder",
]
