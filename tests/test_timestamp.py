"""Unit and property tests for repro.core.timestamp."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Timestamp, ZERO


def ts(epoch, *counters):
    return Timestamp(epoch, tuple(counters))


timestamps = st.builds(
    Timestamp,
    st.integers(min_value=0, max_value=5),
    st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=2).map(tuple),
)


class TestConstruction:
    def test_zero(self):
        assert ZERO.epoch == 0
        assert ZERO.counters == ()
        assert ZERO.depth == 0

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            Timestamp(-1)

    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError):
            Timestamp(0, (1, -2))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            ZERO.epoch = 3

    def test_counters_coerced_to_tuple(self):
        assert Timestamp(0, [1, 2]).counters == (1, 2)

    def test_equality_and_hash(self):
        assert ts(1, 2, 3) == ts(1, 2, 3)
        assert hash(ts(1, 2, 3)) == hash(ts(1, 2, 3))
        assert ts(1, 2, 3) != ts(1, 2, 4)
        assert ts(0) != ts(1)

    def test_repr(self):
        assert "Timestamp" in repr(ts(1, 2))


class TestPartialOrder:
    def test_epoch_order(self):
        assert ts(0).less_equal(ts(1))
        assert not ts(1).less_equal(ts(0))

    def test_product_order_requires_both(self):
        # epoch up but counters down: incomparable.
        assert not ts(1, 0).less_equal(ts(0, 5))
        assert not ts(0, 5).less_equal(ts(1, 0))
        assert not ts(1, 0).comparable(ts(0, 5))

    def test_lexicographic_counters(self):
        assert ts(0, 1, 9).less_equal(ts(0, 2, 0))
        assert not ts(0, 2, 0).less_equal(ts(0, 1, 9))

    def test_depth_mismatch_raises(self):
        with pytest.raises(ValueError):
            ts(0).less_equal(ts(0, 1))

    def test_non_timestamp_raises(self):
        with pytest.raises(TypeError):
            ts(0).less_equal("nope")

    def test_strictness(self):
        assert not ts(0, 1).less_than(ts(0, 1))
        assert ts(0, 1).less_than(ts(0, 2))

    @given(timestamps)
    def test_reflexive(self, t):
        assert t.less_equal(t)

    @given(timestamps, timestamps)
    def test_antisymmetric(self, a, b):
        if a.less_equal(b) and b.less_equal(a):
            assert a == b

    @given(timestamps, timestamps, timestamps)
    def test_transitive(self, a, b, c):
        if a.less_equal(b) and b.less_equal(c):
            assert a.less_equal(c)

    @given(timestamps, timestamps)
    def test_join_is_least_upper_bound(self, a, b):
        j = a.join(b)
        assert a.less_equal(j) and b.less_equal(j)

    @given(timestamps, timestamps)
    def test_meet_is_lower_bound(self, a, b):
        m = a.meet(b)
        assert m.less_equal(a) and m.less_equal(b)

    @given(timestamps, timestamps)
    def test_total_order_refines_partial(self, a, b):
        # The scheduling order (lexicographic) must refine the partial order.
        if a.less_equal(b):
            assert a <= b


class TestLoopActions:
    def test_entered(self):
        assert ts(3).entered() == ts(3, 0)
        assert ts(3, 1).entered() == ts(3, 1, 0)

    def test_left(self):
        assert ts(3, 1, 4).left() == ts(3, 1)

    def test_left_at_top_level_raises(self):
        with pytest.raises(ValueError):
            ts(3).left()

    def test_incremented(self):
        assert ts(3, 1).incremented() == ts(3, 2)
        assert ts(3, 1, 0).incremented() == ts(3, 1, 1)
        assert ts(3, 1).incremented(by=4) == ts(3, 5)

    def test_incremented_outside_loop_raises(self):
        with pytest.raises(ValueError):
            ts(3).incremented()

    def test_enter_then_leave_roundtrip(self):
        assert ts(2, 7).entered().left() == ts(2, 7)

    def test_paper_table(self):
        # The ingress/egress/feedback table from section 2.1.
        t = ts(5, 1, 2)
        assert t.entered() == ts(5, 1, 2, 0)
        assert ts(5, 1, 2, 9).left() == ts(5, 1, 2)
        assert t.incremented() == ts(5, 1, 3)

    def test_with_epoch(self):
        assert ts(2, 7).with_epoch(9) == ts(9, 7)
