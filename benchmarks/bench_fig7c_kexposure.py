"""Figure 7c: k-exposure throughput and latency under fault tolerance.

The paper streams tweets through the k-exposure computation on 32
computers, comparing three fault-tolerance configurations: none
(483 K tweets/s), periodic checkpoints every 100 epochs (322 K t/s) and
continual logging (274 K t/s).  Median response latencies are 40 ms /
40 ms / 85 ms: logging taxes every batch, while checkpointing shows up
only as occasional multi-second stalls in the tail.  Kineograph on the
same stream needs ~10-90 s to reflect input in output.

Reproduction: the incremental k-exposure dataflow on a simulated
cluster; tweets injected at epoch intervals in virtual time; latency is
epoch injection -> subscribed diff delivery.  Checkpoints are the real
section 3.4 cycle (pause, drain, flush the progress protocol, snapshot
every vertex, charge the write), so their stalls in the latency tail
are measured, not modeled.  A second experiment kills a process mid
stream and measures actual recovery: rollback to the last durable
checkpoint, journal replay, and the latency spike the failure leaves in
the tail — with the recovered outputs verified identical, epoch by
epoch, to the unfailed run.  The Kineograph baseline replays the same
stream through its snapshot pipeline.
"""

from collections import Counter

from repro.lib import Collection, Stream
from repro.algorithms.kexposure import k_exposure_incremental
from repro.baselines import KineographEngine
from repro.obs import TraceSink, checkpoint_pause_stats
from repro.runtime import ClusterComputation, FaultTolerance
from repro.workloads import TweetGenerator, TweetStreamConfig

from bench_harness import format_table, human_time, percentile, report

COMPUTERS = 8
EPOCHS = 60
TWEETS_PER_EPOCH = 150
EPOCH_INTERVAL = 5e-3  # one epoch of tweets every 5 ms of virtual time

#: The recovery experiment kills this process mid-stream.
KILL_PROCESS = 3
KILL_AT = (EPOCHS // 2) * EPOCH_INTERVAL

FT_MODES = {
    "none": FaultTolerance(mode="none"),
    "checkpoint": FaultTolerance(
        mode="checkpoint",
        checkpoint_every=25,
        state_bytes_per_worker=3 << 20,
        disk_bandwidth=200e6,
    ),
    "logging": FaultTolerance(
        mode="logging", disk_bandwidth=80e6, log_bytes_per_batch=6144
    ),
}


def make_stream():
    generator = TweetGenerator(
        TweetStreamConfig(num_users=2000, num_hashtags=100, seed=4)
    )
    follower_edges = [
        ((generator.query(), generator.query()), +1) for _ in range(3000)
    ]
    epochs = []
    for _ in range(EPOCHS):
        batch = [
            ((tweet.user, tag), +1)
            for tweet in generator.batch(TWEETS_PER_EPOCH)
            for tag in tweet.hashtags or ("#none",)
        ]
        epochs.append(batch)
    return follower_edges, epochs


def _build(fault_tolerance: FaultTolerance, observe):
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=1,
        progress_mode="local+global",
        fault_tolerance=fault_tolerance,
    )
    tweets_in = comp.new_input()
    followers_in = comp.new_input()
    k_exposure_incremental(
        Collection(Stream.from_input(tweets_in)),
        Collection(Stream.from_input(followers_in)),
    ).subscribe(observe)
    comp.build()
    return comp, tweets_in, followers_in


def run_paced(fault_tolerance: FaultTolerance, kill=None, trace=None):
    """One epoch every EPOCH_INTERVAL; optionally kill a process.

    Returns per-epoch output multisets (for unfailed-vs-recovered
    comparison), response latencies, and the computation.
    """
    follower_edges, epochs = make_stream()
    arrivals = {}
    latencies = []
    outputs = {}
    holder = {}

    def observe(timestamp, diffs):
        epoch = timestamp.epoch
        outputs.setdefault(epoch, Counter()).update(diffs)
        if epoch in arrivals:
            latencies.append(holder["comp"].now - arrivals[epoch])

    comp, tweets_in, followers_in = _build(fault_tolerance, observe)
    holder["comp"] = comp
    if trace is not None:
        comp.attach_trace_sink(trace)
    if kill is not None:
        process, at = kill
        comp.kill_process(process, at=at)
    followers_in.on_next(follower_edges)
    followers_in.on_completed()

    def inject(epoch_index):
        arrivals[epoch_index] = comp.now
        tweets_in.on_next(epochs[epoch_index])
        if epoch_index + 1 == EPOCHS:
            tweets_in.on_completed()

    for index in range(EPOCHS):
        comp.sim.schedule_at(index * EPOCH_INTERVAL, lambda i=index: inject(i))
    comp.run()
    assert comp.drained(), comp.debug_state()
    return {"outputs": outputs, "latencies": latencies, "comp": comp}


def run_mode(fault_tolerance: FaultTolerance):
    follower_edges, epochs = make_stream()

    # Saturated run: epochs back-to-back, for sustained throughput
    # (includes the drain stalls and write pauses of real checkpoints).
    comp, tweets_in, followers_in = _build(fault_tolerance, lambda t, d: None)
    followers_in.on_next(follower_edges)
    followers_in.on_completed()
    for batch in epochs:
        tweets_in.on_next(batch)
    tweets_in.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    throughput = EPOCHS * TWEETS_PER_EPOCH / comp.now

    # Paced run, no failure: response latency.
    unfailed = run_paced(fault_tolerance)
    latencies = unfailed["latencies"]

    # Paced run, process killed mid-stream: measured recovery.
    killed = run_paced(fault_tolerance, kill=(KILL_PROCESS, KILL_AT))
    # Invariant 5, measured in the benchmark: the recovered run released
    # exactly the unfailed run's outputs, epoch by epoch.
    assert killed["outputs"] == unfailed["outputs"]
    recovery = killed["comp"].recovery
    assert len(recovery.failures) == 1
    failure = recovery.failures[0]

    return {
        "throughput": throughput,
        "median": percentile(latencies, 0.5),
        "p95": percentile(latencies, 0.95),
        "max": max(latencies),
        "recovery": {
            "restored_from": failure["restored_from"],
            "replayed": failure["replayed_entries"],
            "restore_time": failure["ready"] - failure["at"],
            "tail": max(killed["latencies"]),
            "unfailed_tail": max(latencies),
        },
    }


def test_fig7c_kexposure(benchmark):
    def experiment():
        results = {name: run_mode(ft) for name, ft in FT_MODES.items()}
        follower_edges, epochs = make_stream()
        kineograph = KineographEngine(num_machines=COMPUTERS)
        tweets = [(u, t) for batch in epochs for (u, t), _ in batch]
        kineograph.replay(
            tweets,
            [edge for edge, _ in follower_edges],
            arrival_rate=TWEETS_PER_EPOCH / EPOCH_INTERVAL,
            duration=40.0,
        )
        results["kineograph delay"] = kineograph.mean_result_delay()
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    kineograph_delay = results.pop("kineograph delay")

    rows = [
        (
            name,
            "%.0f t/s" % r["throughput"],
            human_time(r["median"]),
            human_time(r["p95"]),
            human_time(r["max"]),
        )
        for name, r in results.items()
    ]
    recovery_rows = [
        (
            name,
            human_time(KILL_AT),
            human_time(r["recovery"]["restored_from"]),
            "%d entries" % r["recovery"]["replayed"],
            human_time(r["recovery"]["restore_time"]),
            human_time(r["recovery"]["tail"]),
        )
        for name, r in results.items()
    ]
    report(
        "fig7c_kexposure",
        format_table(
            ["fault tolerance", "throughput", "median", "p95", "max"], rows
        )
        + ["", "Kill process %d mid-stream; measured recovery:" % KILL_PROCESS]
        + format_table(
            [
                "fault tolerance",
                "killed at",
                "restored from",
                "replayed",
                "restore",
                "latency tail",
            ],
            recovery_rows,
        )
        + [
            "",
            "Recovered outputs identical to the unfailed run in all modes.",
            "Kineograph mean result delay: %s" % human_time(kineograph_delay),
        ],
    )

    # Throughput ordering: none >= checkpoint > logging (the paper:
    # 483K / 322K / 274K tweets per second).
    assert results["none"]["throughput"] >= results["checkpoint"]["throughput"]
    assert results["checkpoint"]["throughput"] > results["logging"]["throughput"]
    # Median latency: logging taxes every batch; checkpointing does not.
    assert results["logging"]["median"] > results["none"]["median"]
    assert results["checkpoint"]["median"] < 2 * results["none"]["median"]
    # Checkpoint stalls appear only in the tail.
    assert results["checkpoint"]["max"] > 5 * results["checkpoint"]["median"]
    # Recovery is real and measured: the kill leaves a spike in the tail
    # of every mode, and periodic checkpoints bound how much of the
    # journal must replay compared to recovering from scratch.
    for r in results.values():
        assert r["recovery"]["tail"] > r["recovery"]["unfailed_tail"]
    assert (
        results["checkpoint"]["recovery"]["replayed"]
        < results["none"]["recovery"]["replayed"]
    )
    assert results["checkpoint"]["recovery"]["restored_from"] > 0.0
    # Every Naiad configuration beats Kineograph's staleness by orders
    # of magnitude.
    for r in results.values():
        assert r["median"] < kineograph_delay / 100


# --- Barrier vs asynchronous checkpoints on the same stream ----------

#: Checkpoint cadence for the pause comparison (frequent enough to
#: collect several barrier pauses / marker cycles in 60 epochs).
PAUSE_EVERY = 10


def _checkpoint_ft(checkpoint_mode: str) -> FaultTolerance:
    return FaultTolerance(
        mode="checkpoint",
        checkpoint_every=PAUSE_EVERY,
        checkpoint_mode=checkpoint_mode,
        state_bytes_per_worker=3 << 20,
        disk_bandwidth=200e6,
    )


def test_fig7c_async_checkpoints(benchmark):
    """Barrier vs marker-based async checkpoints: pause and staleness.

    Both modes persist the same snapshots at the same cadence on the
    same paced tweet stream; a barrier checkpoint stops the world for
    drain + write while an async cycle costs each worker only its
    incremental state copy, trading the pause for bounded snapshot
    staleness (marker latency + background durable lag).  A mid-stream
    kill then exercises each mode's recovery path, and the Kineograph
    baseline takes the same kill for comparison.
    """

    def experiment():
        results = {}
        for mode in ("barrier", "async"):
            trace = TraceSink()
            unfailed = run_paced(_checkpoint_ft(mode), trace=trace)
            killed = run_paced(
                _checkpoint_ft(mode), kill=(KILL_PROCESS, KILL_AT)
            )
            assert killed["outputs"] == unfailed["outputs"]
            (failure,) = killed["comp"].recovery.failures
            results[mode] = {
                "stats": checkpoint_pause_stats(trace),
                "latencies": unfailed["latencies"],
                "failure": failure,
                "tail": max(killed["latencies"]),
            }

        # Kineograph under the same kind of kill: ingest replication
        # keeps the counts right, but the whole snapshot pipeline slips.
        follower_edges, epochs = make_stream()
        tweets = [(u, t) for batch in epochs for (u, t), _ in batch]

        def kineograph(kill_at):
            engine = KineographEngine(num_machines=COMPUTERS)
            engine.replay(
                tweets,
                [edge for edge, _ in follower_edges],
                arrival_rate=TWEETS_PER_EPOCH / EPOCH_INTERVAL,
                duration=40.0,
                kill_at=kill_at,
                restart_delay=20.0,
            )
            return engine.mean_result_delay()

        results["kineograph"] = {
            "unfailed_delay": kineograph(None),
            "killed_delay": kineograph(20.0),
        }
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    barrier = results["barrier"]["stats"]
    asynch = results["async"]["stats"]
    fresh = sum(f for f, _ in asynch.async_increments)
    reused = sum(r for _, r in asynch.async_increments)

    pause_rows = [
        (
            "barrier",
            len(barrier.barrier_pauses),
            human_time(barrier.max_barrier_pause),
            human_time(max(barrier.barrier_drains, default=0.0)),
            human_time(max(barrier.barrier_writes, default=0.0)),
            "0 us (synchronous)",
            "all fresh",
        ),
        (
            "async",
            len(asynch.async_max_stalls),
            human_time(asynch.max_async_pause),
            human_time(max(asynch.async_marker_latencies, default=0.0)),
            human_time(max(asynch.async_durable_lags, default=0.0)),
            human_time(
                max(asynch.async_marker_latencies, default=0.0)
                + max(asynch.async_durable_lags, default=0.0)
            ),
            "%d fresh / %d reused" % (fresh, reused),
        ),
    ]
    recovery_rows = [
        (
            mode,
            results[mode]["failure"]["mode"],
            human_time(results[mode]["failure"]["restored_from"]),
            human_time(
                results[mode]["failure"]["ready"]
                - results[mode]["failure"]["at"]
            ),
            human_time(results[mode]["tail"]),
        )
        for mode in ("barrier", "async")
    ]
    kineo = results["kineograph"]
    report(
        "fig7c_async",
        [
            "Same stream, same %d-epoch checkpoint cadence:" % PAUSE_EVERY,
            "",
        ]
        + format_table(
            [
                "checkpoint mode",
                "cycles",
                "worst pause",
                "drain/cut latency",
                "write",
                "snapshot staleness",
                "vertex snapshots",
            ],
            pause_rows,
        )
        + [
            "",
            "Kill process %d at t=%s; measured recovery:"
            % (KILL_PROCESS, human_time(KILL_AT)),
        ]
        + format_table(
            [
                "checkpoint mode",
                "recovery",
                "restored from",
                "restore",
                "latency tail",
            ],
            recovery_rows,
        )
        + [
            "",
            "Recovered outputs identical to the unfailed run in both modes.",
            "Kineograph, same kill: mean result delay %s -> %s."
            % (
                human_time(kineo["unfailed_delay"]),
                human_time(kineo["killed_delay"]),
            ),
        ],
    )

    # Both modes actually persisted snapshots at the cadence.
    assert len(barrier.barrier_pauses) >= 3
    assert len(asynch.async_max_stalls) >= 3
    # The headline: async trades the stop-the-world pause for staleness.
    assert asynch.max_async_pause * 5 <= barrier.max_barrier_pause
    assert max(asynch.async_durable_lags) > 0.0
    # The marker cut restored only the dead process's vertices; barrier
    # recovery is global.
    assert results["async"]["failure"]["mode"] in ("partial", "skip")
    assert results["barrier"]["failure"]["mode"] == "global"
    # A dense tweet stream dirties every vertex each cycle, so all
    # snapshots are fresh here; the dirty-bit reuse shows up on sparse
    # streams (tests/test_async_checkpoint.py pins it down).
    assert fresh > 0
    # The same kill costs Kineograph tens of seconds of extra staleness.
    assert kineo["killed_delay"] > kineo["unfailed_delay"] + 1.0
