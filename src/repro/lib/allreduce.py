"""AllReduce collectives on timely dataflow (paper section 6.2).

The paper integrates Vowpal Wabbit by running its per-process training
phases inside Naiad vertices and replacing its binary-tree AllReduce
with a *data-parallel* AllReduce: each of ``k`` workers reduces and
broadcasts ``1/k`` of the vector (a reduce-scatter followed by an
all-gather), which on a full-bisection-bandwidth cluster moves
``2·(k-1)/k`` of the vector per worker instead of the tree's
root-bottlenecked ``log k`` rounds.

Both variants are provided:

- :func:`allreduce` — the paper's data-parallel implementation;
- :func:`tree_allreduce` — the VW-style binary tree, used as the
  baseline in the Figure 7b reproduction.

Input records are ``(worker, vector)`` pairs (``vector`` is a numpy
array; every worker contributes one per epoch); outputs are
``(worker, reduced_vector)`` with one record delivered to each worker's
partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from .stream import Stream


@dataclass(frozen=True)
class Chunk:
    """A routed vector fragment with an explicit wire size."""

    dest: int
    index: int
    data: Any  # numpy array

    @property
    def wire_bytes(self) -> int:
        return int(getattr(self.data, "nbytes", 8)) + 16


def _route(chunk: Chunk) -> int:
    return chunk.dest


class _ScatterVertex(Vertex):
    """Split each contributed vector into one chunk per worker."""

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        peers = self.peers
        out: List[Chunk] = []
        for _worker, vector in records:
            pieces = np.array_split(np.asarray(vector), peers)
            for index, piece in enumerate(pieces):
                out.append(Chunk(dest=index % peers, index=index, data=piece))
        if out:
            self.send_by(0, out, timestamp)


class _ReduceChunkVertex(Vertex):
    """Sum this worker's chunks, then broadcast the result to all peers."""

    _CONFIG_ATTRS = ("combine",)

    def __init__(self, combine: Callable[[Any, Any], Any]):
        super().__init__()
        self.combine = combine
        self.partial: Dict[Timestamp, Dict[int, Any]] = {}

    def on_recv(self, input_port: int, records: List[Chunk], timestamp: Timestamp) -> None:
        partial = self.partial.get(timestamp)
        if partial is None:
            partial = self.partial[timestamp] = {}
            self.notify_at(timestamp)
        combine = self.combine
        for chunk in records:
            if chunk.index in partial:
                partial[chunk.index] = combine(partial[chunk.index], chunk.data)
            else:
                partial[chunk.index] = chunk.data
        # Eager folding keeps memory at one accumulator per chunk.

    def on_notify(self, timestamp: Timestamp) -> None:
        partial = self.partial.pop(timestamp, {})
        out = [
            Chunk(dest=peer, index=index, data=data)
            for index, data in partial.items()
            for peer in range(self.peers)
        ]
        if out:
            self.send_by(0, out, timestamp)


class _GatherVertex(Vertex):
    """Reassemble the reduced chunks into one full vector per worker."""

    def __init__(self):
        super().__init__()
        self.parts: Dict[Timestamp, Dict[int, Any]] = {}

    def on_recv(self, input_port: int, records: List[Chunk], timestamp: Timestamp) -> None:
        parts = self.parts.get(timestamp)
        if parts is None:
            parts = self.parts[timestamp] = {}
            self.notify_at(timestamp)
        for chunk in records:
            parts[chunk.index] = chunk.data

    def on_notify(self, timestamp: Timestamp) -> None:
        parts = self.parts.pop(timestamp, {})
        if parts:
            vector = np.concatenate([parts[i] for i in sorted(parts)])
            self.send_by(0, [(self.worker, vector)], timestamp)


def allreduce(
    contributions: Stream,
    combine: Callable[[Any, Any], Any] = np.add,
    name: str = "allreduce",
) -> Stream:
    """The paper's data-parallel AllReduce (reduce-scatter + all-gather)."""
    scattered = contributions._unary(
        "%s.scatter" % name, _ScatterVertex, num_outputs=1
    )
    reduced = scattered._unary(
        "%s.reduce" % name,
        lambda: _ReduceChunkVertex(combine),
        partitioner=_route,
    )
    return reduced._unary("%s.gather" % name, _GatherVertex, partitioner=_route)


class _TreeLevelVertex(Vertex):
    """One level of the binary reduction tree.

    At level ``l`` the workers whose index is a multiple of ``2^(l+1)``
    combine their own partial vector with the one arriving from index
    ``+ 2^l`` and pass the result up.
    """

    _CONFIG_ATTRS = ("combine",)

    def __init__(self, level: int, combine: Callable[[Any, Any], Any]):
        super().__init__()
        self.level = level
        self.combine = combine
        self.partial: Dict[Timestamp, Any] = {}

    def on_recv(self, input_port: int, records: List[Chunk], timestamp: Timestamp) -> None:
        if timestamp not in self.partial:
            self.partial[timestamp] = None
            self.notify_at(timestamp)
        combine = self.combine
        for chunk in records:
            if self.partial[timestamp] is None:
                self.partial[timestamp] = chunk.data
            else:
                self.partial[timestamp] = combine(self.partial[timestamp], chunk.data)

    def on_notify(self, timestamp: Timestamp) -> None:
        data = self.partial.pop(timestamp, None)
        if data is None:
            return
        stride = 1 << (self.level + 1)
        parent = (self.worker // stride) * stride
        self.send_by(0, [Chunk(dest=parent, index=0, data=data)], timestamp)


class _TreeBroadcastVertex(Vertex):
    """Root result propagated back down: emit one copy per worker."""

    def on_recv(self, input_port: int, records: List[Chunk], timestamp: Timestamp) -> None:
        peers = self.peers
        out = [
            Chunk(dest=peer, index=0, data=chunk.data)
            for chunk in records
            for peer in range(peers)
        ]
        self.send_by(0, out, timestamp)


class _TreeDeliverVertex(Vertex):
    def on_recv(self, input_port: int, records: List[Chunk], timestamp: Timestamp) -> None:
        self.send_by(
            0, [(self.worker, chunk.data) for chunk in records], timestamp
        )


def tree_allreduce(
    contributions: Stream,
    num_workers: Optional[int] = None,
    combine: Callable[[Any, Any], Any] = np.add,
    name: str = "tree_allreduce",
) -> Stream:
    """VW-style binary-tree AllReduce (reduce to root, broadcast down).

    ``num_workers`` defaults to the computation's total parallelism; it
    determines the tree depth (``ceil(log2(workers))`` levels each way).
    """
    computation = contributions.computation
    workers = num_workers or getattr(computation, "total_workers", 1)
    levels = (workers - 1).bit_length()
    stream = contributions.select(
        lambda rec: Chunk(dest=(rec[0] // 2) * 2, index=0, data=np.asarray(rec[1])),
        name="%s.wrap" % name,
    )
    for level in range(1, levels + 1):
        stream = stream._unary(
            "%s.level%d" % (name, level),
            lambda level=level: _TreeLevelVertex(level, combine),
            partitioner=_route,
        )
    broadcast = stream._unary(
        "%s.broadcast" % name, _TreeBroadcastVertex, partitioner=_route
    )
    return broadcast._unary(
        "%s.deliver" % name, _TreeDeliverVertex, partitioner=_route
    )
