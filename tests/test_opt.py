"""The plan optimizer: passes, explain(), fused vertices, idempotence.

Covers the rewrite legality rules unit-by-unit (fusion barriers,
elision proofs, coalescing hints), the golden ``explain()`` report, the
``FusedVertex`` chain mechanics including the composite checkpoint, and
— property-tested over random operator chains — idempotence of the
whole pass pipeline: compiling an already-compiled plan performs zero
rewrites and leaves the structural signature unchanged.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Computation
from repro.core.graph import StageKind
from repro.core.timestamp import Timestamp
from repro.lib import Stream
from repro.lib.operators import SelectVertex, UnaryBufferingVertex, WhereVertex
from repro.lib.stream import hash_partitioner
from repro.obs import TraceSink
from repro.opt import (
    FusedVertex,
    HashPartitioner,
    compile_plan,
    parse_optimize_env,
    partitioners_agree,
    plan_signature,
)


def fresh_graph(build):
    """Build a dataflow on an un-built Computation; return (comp, graph)."""
    comp = Computation(optimize=False)
    build(comp)
    return comp, comp.graph


def names(graph):
    return [stage.name for stage in graph.stages]


# ----------------------------------------------------------------------
# HashPartitioner equality.
# ----------------------------------------------------------------------


def _key(record):
    return record[0]


class TestPartitionerEquality:
    def test_same_key_object_compares_equal(self):
        assert hash_partitioner(_key) == hash_partitioner(_key)
        assert partitioners_agree(hash_partitioner(_key), hash_partitioner(_key))

    def test_different_keys_differ(self):
        a = hash_partitioner(_key)
        b = hash_partitioner(lambda record: record[0])  # same code, new object
        assert a != b
        assert not partitioners_agree(a, b)

    def test_agreement_is_conservative(self):
        assert not partitioners_agree(None, hash_partitioner(_key))
        assert not partitioners_agree(hash_partitioner(_key), None)
        opaque = lambda record: 0  # noqa: E731
        assert partitioners_agree(opaque, opaque)  # identity still counts

    def test_routing_matches_plain_hash(self):
        partitioner = HashPartitioner(_key)
        assert partitioner(("x", 1)) == hash("x")


# ----------------------------------------------------------------------
# Fusion legality.
# ----------------------------------------------------------------------


class TestFusionPass:
    def test_fuses_maximal_unary_chain(self):
        def build(comp):
            inp = comp.new_input("src")
            (
                Stream.from_input(inp)
                .select(lambda x: x + 1)
                .where(lambda x: x > 0)
                .select_many(lambda x: [x])
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        plan = compile_plan(graph, total_workers=4)
        fused = plan.fused_stages()
        assert len(fused) == 1
        assert fused[0].opspec.constituents == ("select", "where", "select_many")
        # The subscribe stage is not fusable (driver-side callback) and
        # stays outside the chain.
        assert names(graph) == ["src", "fuse(select+where+select_many)", "subscribe"]
        # Stage/connector indices are re-packed after the rewrite.
        assert [s.index for s in graph.stages] == list(range(len(graph.stages)))
        assert [c.index for c in graph.connectors] == list(
            range(len(graph.connectors))
        )

    def test_exchange_is_a_barrier(self):
        def build(comp):
            inp = comp.new_input("src")
            (
                Stream.from_input(inp)
                .select(lambda x: x)
                .count_by(lambda x: x)  # exchange on its input
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        plan = compile_plan(graph, total_workers=4)
        # select alone is a chain of one: nothing to fuse across the
        # exchange, and count_by's input edge keeps its partitioner.
        assert plan.fused_stages() == []
        assert any(c.partitioner is not None for c in graph.connectors)

    def test_fan_out_is_a_barrier(self):
        def build(comp):
            inp = comp.new_input("src")
            s = Stream.from_input(inp).select(lambda x: x, name="a")
            s.select(lambda x: x + 1, name="b").subscribe(lambda t, r: None)
            s.select(lambda x: x + 2, name="c").subscribe(lambda t, r: None)

        comp, graph = fresh_graph(build)
        plan = compile_plan(graph, total_workers=4)
        # "a" fans out to two consumers; neither branch may absorb it.
        assert all("a" not in s.opspec.constituents for s in plan.fused_stages())

    def test_loop_boundary_is_a_barrier(self):
        def build(comp):
            inp = comp.new_input("src")
            (
                Stream.from_input(inp)
                .select(lambda x: x, name="pre")
                .iterate(lambda s: s.select(lambda x: x - 1).where(lambda x: x > 0))
                .select(lambda x: x, name="post")
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        plan = compile_plan(graph, total_workers=4)
        # The loop body chain (select -> where) fuses; pre and post do
        # not cross the ingress/egress stages.
        constituents = [s.opspec.constituents for s in plan.fused_stages()]
        assert ("select", "where") in constituents
        for stages in constituents:
            assert "pre" not in stages and "post" not in stages
        kinds = {stage.kind for stage in graph.stages}
        assert StageKind.INGRESS in kinds and StageKind.EGRESS in kinds

    def test_fused_cost_scale_is_chain_length(self):
        def build(comp):
            inp = comp.new_input("src")
            (
                Stream.from_input(inp)
                .select(lambda x: x)
                .select(lambda x: x)
                .select(lambda x: x)
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        plan = compile_plan(graph, total_workers=4)
        assert plan.fused_stages()[0].opspec.cost_scale == 3


# ----------------------------------------------------------------------
# Exchange elision.
# ----------------------------------------------------------------------


class TestExchangeElision:
    def test_single_worker_elides_everything(self):
        def build(comp):
            inp = comp.new_input("src")
            (
                Stream.from_input(inp)
                .count_by(lambda x: x)
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        plan = compile_plan(graph, total_workers=1)
        assert plan.elided_exchanges() >= 1
        assert all(c.partitioner is None for c in graph.connectors)

    def test_repartition_by_same_key_elides(self):
        def build(comp):
            inp = comp.new_input("src")
            # Two whole-record exchanges (distinct partitions by the
            # shared identity selector), separated by a filter; both
            # distinct and where preserve the partitioning, so the
            # second exchange is provably redundant.
            (
                Stream.from_input(inp)
                .select(lambda x: x % 5)
                .distinct(name="first")
                .where(lambda r: True)
                .distinct(name="second")
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        plan = compile_plan(graph, total_workers=4)
        assert plan.elided_exchanges() == 1
        exchanges = [c for c in graph.connectors if c.partitioner is not None]
        assert len(exchanges) == 1
        # The upstream exchange stays; its destination is now the fused
        # chain the elision unlocked (first+where+second pipeline).
        assert exchanges[0].dst.name == "fuse(first+where+second)"

    def test_non_preserving_stage_blocks_elision(self):
        def build(comp):
            inp = comp.new_input("src")
            (
                Stream.from_input(inp)
                .group_by(_key, lambda k, vs: vs, name="first")
                .select(lambda r: r)  # select re-shapes records: not preserving
                .group_by(_key, lambda k, vs: vs, name="second")
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        plan = compile_plan(graph, total_workers=4)
        assert plan.elided_exchanges() == 0

    def test_input_edges_never_elided_multiworker(self):
        def build(comp):
            inp = comp.new_input("src")
            (
                Stream.from_input(inp)
                .count_by(lambda x: x)
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        plan = compile_plan(graph, total_workers=4)
        # Input ingest is round-robin; the keyed exchange must stay.
        assert plan.elided_exchanges() == 0


# ----------------------------------------------------------------------
# Batch-coalescing hints.
# ----------------------------------------------------------------------


class TestBatchingHints:
    def test_hints_follow_opspec_batchable(self):
        def build(comp):
            inp = comp.new_input("src")
            (
                Stream.from_input(inp)
                .where(lambda x: True)               # batchable
                .inspect(lambda t, r: None)          # per-batch user callback
                .count_by(lambda x: x)               # batchable
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        compile_plan(graph, total_workers=4)
        by_dst = {c.dst.name: c.coalesce for c in graph.connectors}
        assert by_dst["where"] is True
        assert by_dst["inspect"] is False  # users observe batch shapes
        assert by_dst["count_by"] is True

    def test_system_stages_always_coalesce(self):
        def build(comp):
            inp = comp.new_input("src")
            (
                Stream.from_input(inp)
                .iterate(lambda s: s.select(lambda x: x - 1).where(lambda x: x > 0))
                .subscribe(lambda t, r: None)
            )

        comp, graph = fresh_graph(build)
        compile_plan(graph, total_workers=4)
        for connector in graph.connectors:
            if connector.dst.kind in (
                StageKind.INGRESS,
                StageKind.EGRESS,
                StageKind.FEEDBACK,
            ):
                assert connector.coalesce is True


# ----------------------------------------------------------------------
# The golden explain() report.
# ----------------------------------------------------------------------

GOLDEN_EXPLAIN = """\
== logical plan ==
6 stages, 5 connectors
  [0] lines (input)
  [1] select (normal)
  [2] where (normal)
  [3] select_many (normal)
  [4] count_by (normal)
  [5] subscribe (normal)
  (0) lines -> select
  (1) select -> where
  (2) where -> select_many
  (3) select_many -> count_by {exchange}
  (4) count_by -> subscribe
== pass exchange-elision: 0 rewrites ==
== pass operator-fusion: 1 rewrite ==
  fused [select -> where -> select_many] into one stage
== pass batch-coalescing: 3 rewrites ==
  coalesce hint on (lines -> fuse(select+where+select_many))
  coalesce hint on (fuse(select+where+select_many) -> count_by)
  coalesce hint on (count_by -> subscribe)
== physical plan ==
4 stages, 3 connectors
  [0] lines (input)
  [1] fuse(select+where+select_many) (normal) [fused: select, where, select_many]
  [2] count_by (normal)
  [3] subscribe (normal)
  (0) lines -> fuse(select+where+select_many) {coalesce}
  (1) fuse(select+where+select_many) -> count_by {exchange, coalesce}
  (2) count_by -> subscribe {coalesce}"""


def wordcount(comp):
    inp = comp.new_input("lines")
    (
        Stream.from_input(inp)
        .select(str.lower)
        .where(lambda line: line.strip() != "")
        .select_many(str.split)
        .count_by(lambda word: word)
        .subscribe(lambda t, r: None)
    )
    return inp


class TestExplain:
    def test_golden_report(self):
        comp, graph = fresh_graph(wordcount)
        plan = compile_plan(graph, total_workers=8)
        assert plan.explain() == GOLDEN_EXPLAIN

    def test_explain_via_computation_build(self):
        # The reference runtime is single-worker, so the keyed exchange
        # elides — which then unlocks fusing count_by into the chain.
        comp = Computation(optimize=True)
        wordcount(comp)
        comp.build()
        assert comp.plan is not None
        explain = comp.plan.explain()
        assert (
            "elided exchange (select_many -> count_by): single worker" in explain
        )
        assert (
            "fused [select -> where -> select_many -> count_by] into one stage"
            in explain
        )
        (fused,) = comp.plan.fused_stages()
        assert fused.opspec.constituents == (
            "select",
            "where",
            "select_many",
            "count_by",
        )

    def test_unoptimized_computation_has_no_plan(self):
        comp = Computation(optimize=False)
        wordcount(comp)
        comp.build()
        assert comp.plan is None

    def test_fused_stage_renders_as_dot_cluster(self):
        comp, graph = fresh_graph(wordcount)
        plan = compile_plan(graph, total_workers=8)
        dot = plan.to_dot()
        assert "compound=true;" in dot
        assert "subgraph cluster_fused_1 {" in dot
        for part in ("select", "where", "select_many"):
            assert '[label="%s" shape=box]' % part in dot
        assert "lhead=cluster_fused_1" in dot
        assert "ltail=cluster_fused_1" in dot
        assert dot.count("{") == dot.count("}")

    def test_plan_trace_events(self):
        comp, graph = fresh_graph(wordcount)
        sink = TraceSink()
        compile_plan(graph, total_workers=8, trace=sink)
        plan_events = [e for e in sink.events if e.kind == "plan"]
        assert [e.stage for e in plan_events] == [
            "exchange-elision",
            "operator-fusion",
            "batch-coalescing",
        ]
        rewrites = [e.detail[0] for e in plan_events]
        assert rewrites == [0, 1, 3]


# ----------------------------------------------------------------------
# FusedVertex mechanics.
# ----------------------------------------------------------------------


class _Recorder:
    """A minimal harness standing in for the runtime."""

    total_workers = 1

    def __init__(self):
        self.sent = []
        self.notified = []

    def send(self, vertex, port, records, timestamp):
        self.sent.append((port, list(records), timestamp))

    def request_notification(self, vertex, timestamp, capability=True):
        self.notified.append(timestamp)


def t(epoch):
    return Timestamp(epoch, ())


class TestFusedVertex:
    def make(self):
        parts = [
            SelectVertex(lambda x: x * 2),
            WhereVertex(lambda x: x > 2),
            UnaryBufferingVertex(lambda rs: [sum(rs)]),
        ]
        fused = FusedVertex(parts, ("double", "big", "sum"))
        harness = _Recorder()
        fused._harness = harness
        return fused, harness

    def test_chain_routes_through_constituents(self):
        fused, harness = self.make()
        fused.on_recv(0, [1, 2, 3], t(0))
        # select/where ran synchronously; the buffering tail requested
        # one outer notification and emitted nothing yet.
        assert harness.sent == []
        assert harness.notified == [t(0)]
        fused.on_notify(t(0))
        assert harness.sent == [(0, [10], t(0))]  # 2*2 + 3*2

    def test_notifications_deduplicate(self):
        parts = [
            UnaryBufferingVertex(lambda rs: rs),
            UnaryBufferingVertex(lambda rs: [sum(rs)]),
        ]
        fused = FusedVertex(parts, ("a", "b"))
        harness = _Recorder()
        fused._harness = harness
        fused.on_recv(0, [1, 2], t(3))
        # Only the head buffers yet: one outer request.
        assert harness.notified == [t(3)]
        fused.on_notify(t(3))
        # The head's completion pushed records into the tail during
        # dispatch; the tail's fresh request surfaced as a second grant.
        assert harness.notified == [t(3), t(3)]
        fused.on_notify(t(3))
        assert harness.sent == [(0, [3], t(3))]

    def test_checkpoint_restore_roundtrip(self):
        fused, harness = self.make()
        fused.on_recv(0, [5, 6], t(1))
        snapshot = fused.checkpoint()
        fused.on_recv(0, [7], t(1))
        fused.on_recv(0, [9], t(2))
        fused.restore(snapshot)
        assert sorted(fused._pending) == [t(1)]
        fused.on_notify(t(1))
        assert harness.sent == [(0, [22], t(1))]  # 5*2 + 6*2, rollback held

    def test_spurious_notify_is_ignored(self):
        fused, _ = self.make()
        fused.on_notify(t(9))  # no pending entry: no-op

    def test_constituent_output_port_validated(self):
        fused, _ = self.make()
        with pytest.raises(ValueError):
            fused.parts[0].send_by(1, [1], t(0))


# ----------------------------------------------------------------------
# Idempotence, property-tested over random operator chains.
# ----------------------------------------------------------------------

OPS = ("select", "where", "select_many", "distinct", "count_by", "group_by")


def build_chain(comp, ops, loop_at):
    inp = comp.new_input("src")
    s = Stream.from_input(inp)

    def apply(stream, kind, salt):
        if kind == "select":
            return stream.select(lambda x, k=salt: x)
        if kind == "where":
            return stream.where(lambda x, k=salt: True)
        if kind == "select_many":
            return stream.select_many(lambda x: [x])
        if kind == "distinct":
            return stream.distinct()
        if kind == "count_by":
            return stream.count_by(lambda x: x)
        return stream.group_by(lambda x: x, lambda k, vs: vs)

    for position, kind in enumerate(ops):
        if position == loop_at:
            s = s.iterate(
                lambda body: body.select(lambda x: x - 1).where(lambda x: x > 0)
            )
        s = apply(s, kind, position)
    s.subscribe(lambda t_, r: None)


@given(
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=6),
    loop_at=st.integers(min_value=-1, max_value=5),
    workers=st.sampled_from([1, 2, 8]),
)
@settings(max_examples=60, deadline=None)
def test_pass_pipeline_is_idempotent(ops, loop_at, workers):
    comp = Computation(optimize=False)
    build_chain(comp, ops, loop_at)
    first = compile_plan(comp.graph, total_workers=workers)
    signature = plan_signature(comp.graph)
    second = compile_plan(comp.graph, total_workers=workers)
    assert second.rewrite_count == 0, second.explain()
    assert plan_signature(comp.graph) == signature
    assert first.graph is comp.graph


# ----------------------------------------------------------------------
# Environment switch plumbing.
# ----------------------------------------------------------------------


class TestEnvSwitch:
    @pytest.mark.parametrize("value,expected", [
        (None, False),
        ("", False),
        ("0", False),
        ("no", False),
        ("1", True),
        ("true", True),
        ("YES", True),
        (" on ", True),
    ])
    def test_parse_optimize_env(self, value, expected):
        assert parse_optimize_env(value) is expected

    def test_env_enables_optimizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION", "1")
        comp = Computation()
        wordcount(comp)
        comp.build()
        assert comp.plan is not None and comp.plan.fused_stages()

    def test_explicit_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION", "1")
        comp = Computation(optimize=False)
        wordcount(comp)
        comp.build()
        assert comp.plan is None


# ----------------------------------------------------------------------
# Optimized reference-runtime execution still computes the right thing.
# ----------------------------------------------------------------------


def test_optimized_reference_run_matches_unoptimized():
    def run(optimize):
        comp = Computation(optimize=optimize)
        inp = comp.new_input("lines")
        out = {}
        (
            Stream.from_input(inp)
            .select(str.lower)
            .where(lambda line: line)
            .select_many(str.split)
            .count_by(lambda w: w)
            .subscribe(lambda ts, recs: out.setdefault(ts.epoch, Counter()).update(recs))
        )
        comp.build()
        inp.on_next(["To be OR not", "to BE"])
        inp.on_next(["the rest is silence"])
        inp.on_completed()
        comp.run()
        assert comp.drained()
        return out

    assert run(True) == run(False)
