"""The single-threaded reference runtime (paper sections 2.3 and 4.1).

:class:`Computation` plays the role of Naiad's controller plus a single
worker: programs define a dataflow graph (inputs, stages, loop contexts,
connectors), call :meth:`Computation.build`, and then repeatedly supply
epochs of input via :class:`InputHandle.on_next`.  The scheduler delivers
messages before notifications (section 3.2) and delivers a notification
only when its pointstamp is in the frontier maintained by
:class:`repro.core.progress.ProgressState` — the paper's guarantee that
``on_notify(t)`` follows all deliveries at times ``t' <= t``.

This runtime executes programs for real and is the substrate for the
examples and correctness tests; the simulated distributed runtime in
:mod:`repro.runtime` reuses the same graphs and vertices.
"""

from __future__ import annotations

import os
import warnings
from collections import deque
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..columnar import ColumnarBatch
from ..obs.trace import TraceEvent, TraceSink, timestamp_tuple
from .graph import Connector, DataflowGraph, LoopContext, Stage, StageKind
from .progress import Pointstamp, ProgressState
from .runtime_api import RuntimeDebugState, TimelyRuntime
from .timestamp import Timestamp
from .vertex import ForwardingVertex, Vertex


class TimestampViolation(RuntimeError):
    """A callback tried to send or request notification in the past."""


class InputHandle:
    """External producer interface to an input stage (section 4.1).

    ``on_next(records)`` supplies one epoch of input *and* marks that
    epoch complete; ``on_completed()`` closes the input.  Epochs are
    consecutive integers starting at 0.
    """

    def __init__(self, computation: "Computation", stage: Stage):
        self._computation = computation
        self.stage = stage
        self.next_epoch = 0
        self.closed = False

    def on_next(self, records: Optional[List[Any]] = None) -> int:
        """Introduce (and complete) the next input epoch; returns it."""
        if self.closed:
            raise RuntimeError("input %r is closed" % self.stage.name)
        self._computation._check_built()
        epoch = self.next_epoch
        self._computation._input_epoch(self.stage, list(records or ()), epoch)
        self.next_epoch = epoch + 1
        return epoch

    def on_completed(self) -> None:
        """Close the input: no further epochs will arrive."""
        if self.closed:
            return
        self._computation._check_built()
        self._computation._input_closed(self.stage, self.next_epoch)
        self.closed = True


class Computation(TimelyRuntime):
    """A timely dataflow computation on the single-threaded runtime.

    ``eager_delivery`` enables section 3.2's cut-through dispatch: a
    ``send_by`` to a vertex that is not currently executing delivers the
    message immediately (the sender implicitly yields), keeping system
    queues small and lowering latency.  A vertex that sets its
    ``reentrancy`` attribute to ``n > 0`` additionally allows up to
    ``n`` nested re-entrant deliveries to itself — useful inside loops
    to coalesce messages instead of flooding the queues.  Recursion is
    bounded by ``max_eager_depth``; deeper sends fall back to queueing.
    """

    #: Parallelism visible to vertices (the reference runtime has one worker).
    total_workers = 1

    def __init__(
        self,
        eager_delivery: bool = False,
        max_eager_depth: int = 16,
        optimize: Optional[Any] = None,
    ):
        # Plan optimization (repro.opt): True compiles the graph through
        # the default pass pipeline at build() time, a sequence supplies
        # custom passes, False disables.  None falls back to the
        # REPRO_FUSION environment variable, so CI and benchmarks flip
        # the optimizer without touching call sites.
        if optimize is None:
            from ..opt.passes import parse_optimize_env

            optimize = parse_optimize_env(os.environ.get("REPRO_FUSION"))
        self.optimize = optimize
        #: The compiled :class:`repro.opt.plan.PhysicalPlan` (None until
        #: build(), or when optimization is off).
        self.plan = None
        self.graph = DataflowGraph()
        self.vertices: Dict[Stage, Vertex] = {}
        self.inputs: List[InputHandle] = []
        #: Serving layer (repro.serve): registered shared arrangements by
        #: name, and the session managers notified on every publish.
        self.arrangements: Dict[str, Any] = {}
        self.session_managers: List[Any] = []
        self.progress: Optional[ProgressState] = None
        self.eager_delivery = eager_delivery
        self.max_eager_depth = max_eager_depth
        self._executing: Dict[Vertex, int] = {}
        self._message_queue: deque = deque()
        self._pending_notifications: Dict[Pointstamp, int] = {}
        self._pending_cleanups: Dict[Pointstamp, int] = {}
        self._frame: List[Tuple[Vertex, Timestamp, bool]] = []
        self._built = False
        #: Number of delivered messages / notifications (for inspection).
        self.delivered_messages = 0
        self.delivered_notifications = 0
        #: Attached observability sink (None = tracing off; the hot
        #: paths then perform a single identity test and nothing else).
        self._trace: Optional[TraceSink] = None
        #: Frontier version at the last emitted frontier event.
        self._trace_version = -1

    # ------------------------------------------------------------------
    # Observability (repro.obs).
    # ------------------------------------------------------------------

    def attach_trace_sink(self, sink: Optional[TraceSink]) -> None:
        """Emit trace events into ``sink`` from now on (None detaches)."""
        self._trace = sink

    def _logical_time(self) -> float:
        """The reference runtime has no virtual clock; trace events are
        stamped with the logical delivery counter instead."""
        return float(self.delivered_messages + self.delivered_notifications)

    # ------------------------------------------------------------------
    # Serving layer hooks (repro.serve).
    # ------------------------------------------------------------------

    def register_arrangement(self, handle) -> None:
        """Record a shared arrangement built by ``Stream.arrange_by``."""
        if handle.name in self.arrangements:
            raise ValueError(
                "arrangement name %r is already registered" % (handle.name,)
            )
        self.arrangements[handle.name] = handle

    def _arrangement_published(self, name: str, epoch: int) -> None:
        """Publish hook fired by :class:`repro.serve.ArrangeVertex` after
        applying one epoch: traces the publish and lets session managers
        re-check parked stale queries against the new frontier."""
        trace = self._trace
        if trace is not None:
            now = getattr(self, "now", None)
            trace.emit(
                TraceEvent(
                    "serve",
                    self._logical_time() if now is None else now,
                    0.0,
                    perf_counter(),
                    -1,
                    0,
                    name,
                    (epoch,),
                    ("publish",),
                )
            )
        for manager in self.session_managers:
            manager._on_publish(name, epoch)

    def _trace_frontier(self, trace: TraceSink) -> None:
        if self.progress.version == self._trace_version:
            return
        self._trace_version = self.progress.version
        frontier = self.progress.frontier()
        epochs = [p.timestamp.epoch for p in frontier]
        trace.emit(
            TraceEvent(
                "frontier",
                self._logical_time(),
                0.0,
                perf_counter(),
                0,
                0,
                "",
                (),
                (len(self.progress), len(frontier), min(epochs) if epochs else -1),
            )
        )

    # ------------------------------------------------------------------
    # Graph construction.
    # ------------------------------------------------------------------

    def new_input(self, name: Optional[str] = None) -> InputHandle:
        stage = self.graph.new_stage(
            name or "input%d" % len(self.inputs),
            factory=None,
            num_inputs=0,
            num_outputs=1,
            kind=StageKind.INPUT,
        )
        handle = InputHandle(self, stage)
        self.inputs.append(handle)
        return handle

    def add_stage(
        self,
        name: str,
        factory: Callable[[], Vertex],
        num_inputs: int = 1,
        num_outputs: int = 1,
        context: Optional[LoopContext] = None,
    ) -> Stage:
        """Add a user stage whose vertices come from ``factory()``."""
        return self.graph.new_stage(
            name,
            lambda stage, worker: factory(),
            num_inputs,
            num_outputs,
            StageKind.NORMAL,
            context,
        )

    def new_loop_context(
        self, parent: Optional[LoopContext] = None, name: Optional[str] = None
    ) -> LoopContext:
        return self.graph.new_loop_context(parent, name)

    def scope(
        self,
        name: str = "loop",
        max_iterations: Optional[int] = None,
        parent: Optional[LoopContext] = None,
    ):
        """Open a free-standing loop scope (a context manager).

        The builder-API counterpart of :meth:`Stream.scoped_loop` for
        loops without a single anchoring stream::

            with comp.scope("pregel", max_iterations=50) as scope:
                body = scope.stage(...)
                scope.enter(graph_stream).connect_to(body, 0, ...)
                scope.feedback.connect_to(body, 1, ...)
                scope.feed(Stream(comp, body, 0), partitioner=...)
                out = scope.leave_with(Stream(comp, body, 1))

        Returns a :class:`repro.lib.stream.LoopScope`; ``__exit__``
        validates that every feedback edge was fed and build() inside
        the block raises :class:`repro.core.graph.UnclosedScopeError`.
        """
        from ..lib.stream import LoopScope

        return LoopScope(
            self, parent=parent, max_iterations=max_iterations, name=name
        )

    def add_ingress(self, context: LoopContext, name: Optional[str] = None) -> Stage:
        return self.graph.new_stage(
            name or "%s.ingress" % context.name,
            lambda stage, worker: ForwardingVertex(),
            1,
            1,
            StageKind.INGRESS,
            context,
        )

    def add_egress(self, context: LoopContext, name: Optional[str] = None) -> Stage:
        return self.graph.new_stage(
            name or "%s.egress" % context.name,
            lambda stage, worker: ForwardingVertex(),
            1,
            1,
            StageKind.EGRESS,
            context,
        )

    def add_feedback(
        self,
        context: LoopContext,
        max_iterations: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Stage:
        return self.graph.new_stage(
            name or "%s.feedback" % context.name,
            lambda stage, worker: ForwardingVertex(max_iterations),
            1,
            1,
            StageKind.FEEDBACK,
            context,
        )

    def connect(
        self,
        src: Stage,
        dst: Stage,
        src_port: int = 0,
        dst_port: int = 0,
        partitioner: Optional[Callable[[Any], int]] = None,
    ) -> Connector:
        return self.graph.connect(src, src_port, dst, dst_port, partitioner)

    # ------------------------------------------------------------------
    # Build.
    # ------------------------------------------------------------------

    def _apply_optimizer(self) -> None:
        """Compile the logical plan through repro.opt (when enabled).

        Runs immediately before ``freeze()`` in both runtimes; the
        rewritten graph is what gets validated, summarised and expanded
        into vertices.  The resulting :class:`PhysicalPlan` is kept on
        ``self.plan`` for ``explain()``/``to_dot()`` inspection.
        """
        if not self.optimize or self.graph.frozen:
            return
        from ..opt.passes import compile_plan

        passes = None if self.optimize is True else self.optimize
        self.plan = compile_plan(
            self.graph,
            total_workers=self.total_workers,
            passes=passes,
            trace=self._trace,
        )

    def build(self) -> None:
        """Validate the graph, compute summaries, instantiate vertices."""
        if self._built:
            return
        self._apply_optimizer()
        self.graph.freeze()
        self.progress = ProgressState(self.graph.summaries)
        for stage in self.graph.stages:
            if stage.kind is StageKind.INPUT:
                continue
            vertex = stage.factory(stage, 0)
            vertex.stage = stage
            vertex.worker = 0
            vertex._harness = self
            self.vertices[stage] = vertex
        for handle in self.inputs:
            # Section 2.3: one active pointstamp per input, first epoch.
            self.progress.update(Pointstamp(Timestamp(0), handle.stage), +1)
        for manager in self.session_managers:
            manager._attach(self)
        self._built = True

    def _check_built(self) -> None:
        if not self._built:
            raise RuntimeError("call Computation.build() first")

    # ------------------------------------------------------------------
    # Input-stage events (overridden by the distributed runtime).
    # ------------------------------------------------------------------

    def _input_epoch(self, stage: Stage, records: List[Any], epoch: int) -> None:
        """Section 2.3: deliver epoch data, then advance the input's
        active pointstamp from ``epoch`` to ``epoch + 1``."""
        timestamp = Timestamp(epoch)
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "input",
                    self._logical_time(),
                    0.0,
                    perf_counter(),
                    0,
                    0,
                    stage.name,
                    (epoch,),
                    (len(records),),
                )
            )
        if records:
            self._enqueue_output(stage, 0, records, timestamp)
        self.progress.update(Pointstamp(Timestamp(epoch + 1), stage), +1)
        self.progress.update(Pointstamp(timestamp, stage), -1)

    def _input_closed(self, stage: Stage, next_epoch: int) -> None:
        """Retire the input's active pointstamp entirely."""
        self.progress.update(Pointstamp(Timestamp(next_epoch), stage), -1)

    # ------------------------------------------------------------------
    # Harness interface used by Vertex.send_by / Vertex.notify_at.
    # ------------------------------------------------------------------

    def send(
        self, vertex: Vertex, output_port: int, records: List[Any], timestamp: Timestamp
    ) -> None:
        stage = vertex.stage
        if stage.kind is StageKind.NORMAL:
            self._enforce_causality(timestamp, "send_by")
        self._enqueue_output(stage, output_port, records, timestamp)

    def request_notification(
        self, vertex: Vertex, timestamp: Timestamp, capability: bool = True
    ) -> None:
        stage = vertex.stage
        self._enforce_causality(timestamp, "notify_at")
        pointstamp = Pointstamp(timestamp, stage)
        if capability:
            self.progress.update(pointstamp, +1)
            self._pending_notifications[pointstamp] = (
                self._pending_notifications.get(pointstamp, 0) + 1
            )
        else:
            # Section 2.4: guarantee-only (capability = ⊤) request; it
            # holds no pointstamp and so cannot delay anything.
            self._pending_cleanups[pointstamp] = (
                self._pending_cleanups.get(pointstamp, 0) + 1
            )

    def _enforce_causality(self, timestamp: Timestamp, what: str) -> None:
        if not self._frame:
            return
        _, current, capability = self._frame[-1]
        if not capability:
            raise TimestampViolation(
                "%s from a capability-free (state purging) notification" % (what,)
            )
        if current.depth == timestamp.depth and not current.less_equal(timestamp):
            raise TimestampViolation(
                "%s at %r from a callback at %r sends backwards in time"
                % (what, timestamp, current)
            )

    def _enqueue_output(
        self, stage: Stage, output_port: int, records: List[Any], timestamp: Timestamp
    ) -> None:
        out_time = stage.timestamp_action().apply(timestamp)
        for connector in stage.outputs[output_port]:
            self.progress.update(Pointstamp(out_time, connector), +1)
            if self.eager_delivery and self._may_deliver_inline(connector):
                self._deliver_message(connector, records, out_time)
            else:
                self._message_queue.append((connector, records, out_time))

    def _may_deliver_inline(self, connector: Connector) -> bool:
        """Section 3.2: deliver now unless the target is mid-callback
        beyond its declared re-entrancy bound, or the stack is deep."""
        if len(self._frame) >= self.max_eager_depth:
            return False
        vertex = self.vertices.get(connector.dst)
        if vertex is None:
            return False
        active = self._executing.get(vertex, 0)
        return active <= getattr(vertex, "reentrancy", 0)

    def _deliver_message(
        self, connector: Connector, records: List[Any], timestamp: Timestamp
    ) -> None:
        vertex = self.vertices[connector.dst]
        trace = self._trace
        wall = perf_counter() if trace is not None else 0.0
        self._frame.append((vertex, timestamp, True))
        self._executing[vertex] = self._executing.get(vertex, 0) + 1
        try:
            if type(records) is ColumnarBatch:
                vertex.on_recv_batch(connector.dst_port, records, timestamp)
            else:
                vertex.on_recv(connector.dst_port, records, timestamp)
        finally:
            self._frame.pop()
            remaining = self._executing[vertex] - 1
            if remaining:
                self._executing[vertex] = remaining
            else:
                del self._executing[vertex]
        self.progress.update(Pointstamp(timestamp, connector), -1)
        self.delivered_messages += 1
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "activation",
                    self._logical_time(),
                    perf_counter() - wall,
                    wall,
                    0,
                    0,
                    connector.dst.name,
                    timestamp_tuple(timestamp),
                    (len(records), connector.dst_port),
                )
            )
            self._trace_frontier(trace)

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Deliver one message or one frontier notification.

        Returns False when no work can currently be performed.
        """
        self._check_built()
        if self._message_queue:
            connector, records, timestamp = self._message_queue.popleft()
            self._deliver_message(connector, records, timestamp)
            return True
        return self._deliver_notification()

    def _deliver_notification(self) -> bool:
        if not self._pending_notifications:
            return self._deliver_cleanup()
        ready = [
            p for p in self._pending_notifications if self.progress.in_frontier(p)
        ]
        if not ready:
            return self._deliver_cleanup()
        pointstamp = min(ready, key=lambda p: (p.timestamp, p.location.index))
        remaining = self._pending_notifications[pointstamp] - 1
        if remaining:
            self._pending_notifications[pointstamp] = remaining
        else:
            del self._pending_notifications[pointstamp]
        vertex = self.vertices[pointstamp.location]
        trace = self._trace
        wall = perf_counter() if trace is not None else 0.0
        self._frame.append((vertex, pointstamp.timestamp, True))
        try:
            vertex.on_notify(pointstamp.timestamp)
        finally:
            self._frame.pop()
        self.progress.update(pointstamp, -1)
        self.delivered_notifications += 1
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "notification",
                    self._logical_time(),
                    perf_counter() - wall,
                    wall,
                    0,
                    0,
                    pointstamp.location.name,
                    timestamp_tuple(pointstamp.timestamp),
                    (),
                )
            )
            self._trace_frontier(trace)
        return True

    def _deliver_cleanup(self) -> bool:
        """Deliver a guarantee-only (capability-free) notification.

        Deliverable once no active pointstamp could-result-in it; since
        it holds no occurrence count, it never blocks anything else.
        """
        if not self._pending_cleanups:
            return False
        ready = [
            p
            for p in self._pending_cleanups
            if not self.progress.frontier_dominates(p)
        ]
        if not ready:
            return False
        pointstamp = min(ready, key=lambda p: (p.timestamp, p.location.index))
        remaining = self._pending_cleanups[pointstamp] - 1
        if remaining:
            self._pending_cleanups[pointstamp] = remaining
        else:
            del self._pending_cleanups[pointstamp]
        vertex = self.vertices[pointstamp.location]
        trace = self._trace
        wall = perf_counter() if trace is not None else 0.0
        self._frame.append((vertex, pointstamp.timestamp, False))
        try:
            vertex.on_notify(pointstamp.timestamp)
        finally:
            self._frame.pop()
        self.delivered_notifications += 1
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "cleanup",
                    self._logical_time(),
                    perf_counter() - wall,
                    wall,
                    0,
                    0,
                    pointstamp.location.name,
                    timestamp_tuple(pointstamp.timestamp),
                    (),
                )
            )
        return True

    def run(
        self,
        max_steps: Optional[int] = None,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> int:
        """Deliver events until quiescent; returns the number of steps.

        ``until`` is accepted for signature compatibility with the
        simulated cluster runtime (the unified :class:`TimelyRuntime`
        surface); the reference runtime has no virtual clock, so it is
        a documented no-op.  ``max_events`` is the historical name for
        ``max_steps`` and is deprecated — both runtimes accept it with
        the same warning.
        """
        if max_events is not None:
            warnings.warn(
                "Computation.run(max_events=...) is deprecated; use max_steps",
                DeprecationWarning,
                stacklevel=2,
            )
            if max_steps is None:
                max_steps = max_events
        steps = 0
        while self.step():
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return steps

    def drained(self) -> bool:
        """True when no events remain anywhere in the computation."""
        return self.progress is not None and len(self.progress) == 0

    def frontier(self) -> List[Pointstamp]:
        self._check_built()
        return self.progress.frontier()

    def debug_state(self) -> RuntimeDebugState:
        """A structured snapshot of runtime state (``str()``-able)."""
        self._check_built()
        pending = sum(self._pending_notifications.values()) + sum(
            self._pending_cleanups.values()
        )
        frontier = tuple(
            sorted(timestamp_tuple(p.timestamp) for p in self.progress.frontier())
        )
        text = "queued=%d pending_notifications=%d delivered=%d+%d frontier=%r" % (
            len(self._message_queue),
            pending,
            self.delivered_messages,
            self.delivered_notifications,
            list(frontier),
        )
        return RuntimeDebugState(
            runtime=type(self).__name__,
            delivered_messages=self.delivered_messages,
            delivered_notifications=self.delivered_notifications,
            queued_messages=len(self._message_queue),
            pending_notifications=pending,
            frontier=frontier,
            text=text,
        )

    # ------------------------------------------------------------------
    # Fault tolerance (section 3.4).
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Produce a consistent checkpoint of the whole computation.

        Mirrors the paper's cycle: flush message queues by delivering
        outstanding on_recv events, then snapshot every stateful vertex
        and the progress-tracking state.
        """
        self._check_built()
        if self._frame:
            raise RuntimeError(
                "checkpoint() called from inside a vertex callback; "
                "a consistent snapshot requires the worker to be paused"
            )
        while self._message_queue:
            connector, records, timestamp = self._message_queue.popleft()
            self._deliver_message(connector, records, timestamp)
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "checkpoint",
                    self._logical_time(),
                    0.0,
                    perf_counter(),
                    -1,
                    -1,
                    "",
                    (),
                    (len(self.vertices),),
                )
            )
        return {
            "vertices": {
                stage.index: vertex.checkpoint()
                for stage, vertex in self.vertices.items()
            },
            "occurrence": dict(self.progress.occurrence),
            "pending": dict(self._pending_notifications),
            "cleanups": dict(self._pending_cleanups),
            "epochs": [(h.next_epoch, h.closed) for h in self.inputs],
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Reset the computation to a :meth:`checkpoint` snapshot."""
        self._check_built()
        if self._frame:
            raise RuntimeError(
                "restore() called from inside a vertex callback; "
                "rollback requires the worker to be paused"
            )
        self._message_queue.clear()
        by_index = {stage.index: stage for stage in self.graph.stages}
        for index, state in snapshot["vertices"].items():
            self.vertices[by_index[index]].restore(state)
        self.progress = ProgressState(self.graph.summaries)
        for pointstamp, count in snapshot["occurrence"].items():
            self.progress.update(pointstamp, count)
        self._pending_notifications = dict(snapshot["pending"])
        self._pending_cleanups = dict(snapshot.get("cleanups", {}))
        for handle, (epoch, closed) in zip(self.inputs, snapshot["epochs"]):
            handle.next_epoch = epoch
            handle.closed = closed
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "restore",
                    self._logical_time(),
                    0.0,
                    perf_counter(),
                    -1,
                    -1,
                    "",
                    (),
                    (len(snapshot["vertices"]),),
                )
            )
            self._trace_version = -1
            self._trace_frontier(trace)

    def __repr__(self) -> str:
        return "Computation(%r, built=%s)" % (self.graph, self._built)
