"""Graph processing with the Pregel library port (paper section 4.2).

Connected components as a Pregel vertex program: every node repeatedly
broadcasts the smallest id it has seen and votes to halt; message
arrival reactivates halted nodes.  A combiner collapses messages to
each node into their minimum, and a global aggregator counts label
improvements per superstep so convergence is observable.

Run:  python examples/pregel_components.py
"""

from repro import Computation
from repro.lib import Stream, final_states, pregel
from repro.workloads import uniform_random_graph


def cc_compute(ctx):
    """One superstep of min-label connected components."""
    if ctx.aggregate is not None and ctx.superstep > 0:
        pass  # the aggregate (improvements last superstep) is observable
    best = min(ctx.messages) if ctx.messages else ctx.state
    if ctx.superstep == 0 or best < ctx.state:
        if best < ctx.state:
            ctx.contribute(1)  # count improvements globally
        ctx.set_state(min(best, ctx.state))
        ctx.send_to_neighbors(ctx.state)
    ctx.vote_to_halt()


def main():
    edges = uniform_random_graph(60, 80, seed=3)
    adjacency = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    graph = [(node, node, sorted(nbrs)) for node, nbrs in adjacency.items()]

    comp = Computation()
    inp = comp.new_input("graph")
    labels = {}
    states = pregel(
        Stream.from_input(inp),
        cc_compute,
        max_supersteps=50,
        combine=min,                      # message combiner
        aggregator=lambda a, b: a + b,    # global improvement counter
    )
    final_states(states).subscribe(lambda t, records: labels.update(dict(records)))
    comp.build()
    inp.on_next(graph)
    inp.on_completed()
    comp.run()
    assert comp.drained()

    components = {}
    for node, label in labels.items():
        components.setdefault(label, []).append(node)
    print("%d nodes, %d edges -> %d components" % (len(graph), len(edges), len(components)))
    for label, members in sorted(components.items())[:5]:
        print("  component %d: %d nodes" % (label, len(members)))


if __name__ == "__main__":
    main()
