"""Incremental collections in the differential-dataflow style ([28], §6.4).

The paper's streaming applications (incremental connected components,
the Figure 1 application) build on the incremental-computation library
of McSherry et al. [28].  This module provides the epoch-incremental
subset that those applications need: a :class:`Collection` is a stream
of *difference records* ``(record, multiplicity)``; each epoch carries
the changes to a logical multiset, and operators emit the changes to
their outputs.  Accumulating every epoch's diffs reconstructs the full
collection — which is exactly what the tests assert against batch
oracles.

Stateful operators maintain indexed state across epochs and are keyed
(hash-partitioned), so they run data-parallel on the cluster runtime
unchanged.  :class:`UnionFindVertex` implements the incremental
connected-components kernel used by section 6.4 (edge additions, as in
the tweet stream of Figure 1, where mentions only accumulate).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from .stream import Stream, hash_partitioner


Diff = Tuple[Any, int]


def consolidate_diffs(diffs: Iterable[Diff]) -> List[Diff]:
    """Sum multiplicities per record, dropping zeros."""
    acc: Dict[Any, int] = {}
    for record, multiplicity in diffs:
        acc[record] = acc.get(record, 0) + multiplicity
    return [(record, m) for record, m in acc.items() if m != 0]


class _EpochDiffVertex(Vertex):
    """Base for per-epoch incremental operators.

    Buffers an epoch's diffs, and on notification applies them to the
    cross-epoch state via :meth:`apply`, emitting output diffs.
    """

    def __init__(self):
        super().__init__()
        self.pending: Dict[Timestamp, List[Diff]] = {}

    def on_recv(self, input_port: int, records: List[Diff], timestamp: Timestamp) -> None:
        pending = self.pending.get(timestamp)
        if pending is None:
            pending = self.pending[timestamp] = []
            self.notify_at(timestamp)
        pending.extend(records)

    def on_notify(self, timestamp: Timestamp) -> None:
        diffs = consolidate_diffs(self.pending.pop(timestamp, []))
        out = self.apply(diffs)
        if out:
            self.send_by(0, out, timestamp)

    def apply(self, diffs: List[Diff]) -> List[Diff]:
        raise NotImplementedError


class IncrementalDistinctVertex(_EpochDiffVertex):
    """Distinct over the accumulated collection.

    Emits ``(record, +1)`` when a record's multiplicity becomes
    positive and ``(record, -1)`` when it returns to zero.
    """

    def __init__(self):
        super().__init__()
        self.counts: Dict[Any, int] = {}

    def apply(self, diffs: List[Diff]) -> List[Diff]:
        out: List[Diff] = []
        for record, multiplicity in diffs:
            old = self.counts.get(record, 0)
            new = old + multiplicity
            if new:
                self.counts[record] = new
            else:
                self.counts.pop(record, None)
            if old <= 0 < new:
                out.append((record, +1))
            elif new <= 0 < old:
                out.append((record, -1))
        return out


class IncrementalCountVertex(_EpochDiffVertex):
    """``(key, count)`` maintenance: retract the old count, assert the new."""

    _CONFIG_ATTRS = ("key",)

    def __init__(self, key: Callable[[Any], Any]):
        super().__init__()
        self.key = key
        self.counts: Dict[Any, int] = {}

    def apply(self, diffs: List[Diff]) -> List[Diff]:
        key = self.key
        touched: Dict[Any, int] = {}
        for record, multiplicity in diffs:
            k = key(record)
            if k not in touched:
                touched[k] = self.counts.get(k, 0)
            self.counts[k] = self.counts.get(k, 0) + multiplicity
        out: List[Diff] = []
        for k, old in touched.items():
            new = self.counts.get(k, 0)
            if new == 0:
                self.counts.pop(k, None)
            if new == old:
                continue
            if old > 0:
                out.append(((k, old), -1))
            if new > 0:
                out.append(((k, new), +1))
        return out


class IncrementalReduceVertex(_EpochDiffVertex):
    """Generic keyed reduction over the accumulated multiset.

    ``reducer(key, records)`` (records expanded by multiplicity) returns
    the output records for the group; changed groups retract their old
    output and assert the new one — the incremental analogue of the
    buffering GroupBy of section 4.2.
    """

    _CONFIG_ATTRS = ("key", "reducer")

    def __init__(
        self,
        key: Callable[[Any], Any],
        reducer: Callable[[Any, List[Any]], Iterable[Any]],
    ):
        super().__init__()
        self.key = key
        self.reducer = reducer
        self.groups: Dict[Any, Dict[Any, int]] = {}
        self.last_output: Dict[Any, List[Any]] = {}

    def _expand(self, group: Dict[Any, int]) -> List[Any]:
        out: List[Any] = []
        for record, multiplicity in sorted(group.items(), key=lambda kv: repr(kv[0])):
            out.extend([record] * multiplicity)
        return out

    def apply(self, diffs: List[Diff]) -> List[Diff]:
        key = self.key
        touched = set()
        for record, multiplicity in diffs:
            k = key(record)
            group = self.groups.setdefault(k, {})
            group[record] = group.get(record, 0) + multiplicity
            if group[record] == 0:
                del group[record]
            touched.add(k)
        out: List[Diff] = []
        for k in touched:
            group = self.groups.get(k, {})
            new_output = list(self.reducer(k, self._expand(group))) if group else []
            old_output = self.last_output.get(k, [])
            if new_output == old_output:
                continue
            out.extend((record, -1) for record in old_output)
            out.extend((record, +1) for record in new_output)
            if new_output:
                self.last_output[k] = new_output
            else:
                self.last_output.pop(k, None)
            if not group:
                self.groups.pop(k, None)
        return out


class IncrementalJoinVertex(Vertex):
    """Incremental binary equijoin over accumulated inputs.

    Output diffs follow the product rule:
    ``d(A ⋈ B) = dA ⋈ B ∪ A ⋈ dB ∪ dA ⋈ dB``.
    """

    _CONFIG_ATTRS = ("left_key", "right_key", "result")

    def __init__(
        self,
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result: Callable[[Any, Any], Any],
    ):
        super().__init__()
        self.left_key = left_key
        self.right_key = right_key
        self.result = result
        self.state: Tuple[Dict[Any, Dict[Any, int]], Dict[Any, Dict[Any, int]]] = (
            {},
            {},
        )
        self.pending: Dict[Timestamp, Tuple[List[Diff], List[Diff]]] = {}

    def on_recv(self, input_port: int, records: List[Diff], timestamp: Timestamp) -> None:
        pending = self.pending.get(timestamp)
        if pending is None:
            pending = self.pending[timestamp] = ([], [])
            self.notify_at(timestamp)
        pending[input_port].extend(records)

    def on_notify(self, timestamp: Timestamp) -> None:
        left_diffs, right_diffs = self.pending.pop(timestamp, ([], []))
        left_diffs = consolidate_diffs(left_diffs)
        right_diffs = consolidate_diffs(right_diffs)
        left_state, right_state = self.state
        result = self.result
        out: List[Diff] = []
        # dB against old A.
        for record, multiplicity in right_diffs:
            k = self.right_key(record)
            for other, m in left_state.get(k, {}).items():
                out.append((result(other, record), multiplicity * m))
            index = right_state.setdefault(k, {})
            index[record] = index.get(record, 0) + multiplicity
            if index[record] == 0:
                del index[record]
                if not index:
                    del right_state[k]
        # dA against new B (covers A ⋈ dB's missing dA ⋈ dB term).
        for record, multiplicity in left_diffs:
            k = self.left_key(record)
            for other, m in right_state.get(k, {}).items():
                out.append((result(record, other), multiplicity * m))
            index = left_state.setdefault(k, {})
            index[record] = index.get(record, 0) + multiplicity
            if index[record] == 0:
                del index[record]
                if not index:
                    del left_state[k]
        out = consolidate_diffs(out)
        if out:
            self.send_by(0, out, timestamp)


class UnionFindVertex(Vertex):
    """Incremental connected components over streaming edge additions.

    Input diffs are ``((u, v), +1)`` edges (retractions are rejected —
    the section 6.4 workload only adds mention edges).  Output diffs
    label nodes with their component: ``((node, component_id), ±1)``,
    where the component id is the smallest node id in the component.
    Union by size with per-root member lists makes relabeling total work
    O(n log n).
    """

    def __init__(self):
        super().__init__()
        self.parent: Dict[Any, Any] = {}
        self.members: Dict[Any, List[Any]] = {}
        self.label: Dict[Any, Any] = {}
        self.pending: Dict[Timestamp, List[Diff]] = {}

    def on_recv(self, input_port: int, records: List[Diff], timestamp: Timestamp) -> None:
        pending = self.pending.get(timestamp)
        if pending is None:
            pending = self.pending[timestamp] = []
            self.notify_at(timestamp)
        pending.extend(records)

    def _find(self, node: Any) -> Any:
        root = node
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def _ensure(self, node: Any, out: List[Diff]) -> None:
        if node not in self.parent:
            self.parent[node] = node
            self.members[node] = [node]
            self.label[node] = node
            out.append(((node, node), +1))

    def on_notify(self, timestamp: Timestamp) -> None:
        out: List[Diff] = []
        for (u, v), multiplicity in consolidate_diffs(self.pending.pop(timestamp, [])):
            if multiplicity < 0:
                raise ValueError(
                    "UnionFindVertex handles edge additions only; use a "
                    "full recompute (repro.algorithms.connectivity) for "
                    "deletions"
                )
            self._ensure(u, out)
            self._ensure(v, out)
            ru, rv = self._find(u), self._find(v)
            if ru == rv:
                continue
            if len(self.members[ru]) < len(self.members[rv]):
                ru, rv = rv, ru
            # rv's members join ru.
            new_label = min(self.label[ru], self.label[rv])
            old_big = self.label[ru]
            self.parent[rv] = ru
            moved = self.members.pop(rv)
            old_small = self.label.pop(rv)
            if new_label != old_small:
                for node in moved:
                    out.append(((node, old_small), -1))
                    out.append(((node, new_label), +1))
            if new_label != old_big:
                for node in self.members[ru]:
                    out.append(((node, old_big), -1))
                    out.append(((node, new_label), +1))
            self.members[ru].extend(moved)
            self.label[ru] = new_label
        out = consolidate_diffs(out)
        if out:
            self.send_by(0, out, timestamp)


class WindowedConnectedComponentsVertex(_EpochDiffVertex):
    """Connected components under additions *and* retractions.

    The paper contrasts Naiad with systems whose cyclic dataflows cannot
    retract records, naming sliding-window connected components as an
    algorithm Naiad supports (section 7).  This vertex maintains the
    live edge multiset; addition-only epochs take the incremental
    union-find fast path, while epochs containing retractions rebuild
    the union-find from the surviving edges (cost O(E α) — the standard
    recompute-on-delete strategy) and emit only the label diffs.
    """

    def __init__(self):
        super().__init__()
        self.edges: Dict[Any, int] = {}
        self.labels: Dict[Any, Any] = {}
        self._fast = UnionFindVertex()

    def apply(self, diffs: List[Diff]) -> List[Diff]:
        has_deletion = any(m < 0 for _, m in diffs)
        for edge, multiplicity in diffs:
            count = self.edges.get(edge, 0) + multiplicity
            if count < 0:
                raise ValueError("retracted edge %r was never added" % (edge,))
            if count:
                self.edges[edge] = count
            else:
                self.edges.pop(edge, None)
        if not has_deletion:
            out: List[Diff] = []
            for (u, v), multiplicity in diffs:
                self._fast._ensure(u, out)
                self._fast._ensure(v, out)
                ru, rv = self._fast._find(u), self._fast._find(v)
                if ru == rv:
                    continue
                if len(self._fast.members[ru]) < len(self._fast.members[rv]):
                    ru, rv = rv, ru
                new_label = min(self._fast.label[ru], self._fast.label[rv])
                old_big = self._fast.label[ru]
                old_small = self._fast.label.pop(rv)
                self._fast.parent[rv] = ru
                moved = self._fast.members.pop(rv)
                if new_label != old_small:
                    for node in moved:
                        out.append(((node, old_small), -1))
                        out.append(((node, new_label), +1))
                if new_label != old_big:
                    for node in self._fast.members[ru]:
                        out.append(((node, old_big), -1))
                        out.append(((node, new_label), +1))
                self._fast.members[ru].extend(moved)
                self._fast.label[ru] = new_label
            for (node, label), multiplicity in consolidate_diffs(out):
                if multiplicity > 0:
                    self.labels[node] = label
                elif self.labels.get(node) == label:
                    del self.labels[node]
            return consolidate_diffs(out)
        # Retraction epoch: rebuild from the surviving multiset.
        parent: Dict[Any, Any] = {}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in self.edges:
            parent.setdefault(u, u)
            parent.setdefault(v, v)
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[max(ru, rv)] = min(ru, rv)
        new_labels = {node: find(node) for node in parent}
        out = []
        for node, label in self.labels.items():
            if new_labels.get(node) != label:
                out.append(((node, label), -1))
        for node, label in new_labels.items():
            if self.labels.get(node) != label:
                out.append(((node, label), +1))
        self.labels = new_labels
        # Reset the fast path to match the rebuilt state.
        self._fast = UnionFindVertex()
        for u, v in self.edges:
            self._fast._ensure(u, [])
            self._fast._ensure(v, [])
            ru, rv = self._fast._find(u), self._fast._find(v)
            if ru == rv:
                continue
            if len(self._fast.members[ru]) < len(self._fast.members[rv]):
                ru, rv = rv, ru
            new_label = min(self._fast.label[ru], self._fast.label[rv])
            self._fast.label.pop(rv)
            self._fast.parent[rv] = ru
            self._fast.members[ru].extend(self._fast.members.pop(rv))
            self._fast.label[ru] = new_label
        return out


class Collection:
    """Fluent wrapper over a stream of difference records."""

    __slots__ = ("stream",)

    def __init__(self, stream: Stream):
        self.stream = stream

    @staticmethod
    def from_records(stream: Stream) -> "Collection":
        """Lift a plain record stream: each record becomes ``(r, +1)``."""
        return Collection(stream.select(lambda r: (r, +1), name="as_diffs"))

    # -- linear operators (diff-oblivious) ------------------------------

    def map(self, function: Callable[[Any], Any], name: str = "inc_map") -> "Collection":
        return Collection(
            self.stream.select(lambda d: (function(d[0]), d[1]), name=name)
        )

    def filter(
        self, predicate: Callable[[Any], bool], name: str = "inc_filter"
    ) -> "Collection":
        return Collection(self.stream.where(lambda d: predicate(d[0]), name=name))

    def flat_map(
        self, function: Callable[[Any], Iterable[Any]], name: str = "inc_flat_map"
    ) -> "Collection":
        return Collection(
            self.stream.select_many(
                lambda d: [(r, d[1]) for r in function(d[0])], name=name
            )
        )

    def concat(self, other: "Collection", name: str = "inc_concat") -> "Collection":
        return Collection(self.stream.concat(other.stream, name=name))

    def arrange_by(
        self,
        key: Callable[[Any], Any],
        name: str = "arrange",
        retain: int = 4,
    ):
        """Arrange this collection into a shared epoch-versioned index
        keyed by ``key(record)`` (see :meth:`repro.lib.stream.Stream.
        arrange_by`); returns a :class:`repro.serve.Arrangement`."""
        return self.stream.arrange_by(key, name=name, retain=retain)

    def negate(self, name: str = "inc_negate") -> "Collection":
        return Collection(self.stream.select(lambda d: (d[0], -d[1]), name=name))

    # -- stateful incremental operators ---------------------------------

    def _keyed(self, factory, key, name) -> "Collection":
        return Collection(
            self.stream._unary(
                name, factory, partitioner=hash_partitioner(lambda d: key(d[0]))
            )
        )

    def distinct(self, name: str = "inc_distinct") -> "Collection":
        return self._keyed(IncrementalDistinctVertex, lambda r: r, name)

    def count_by(
        self, key: Callable[[Any], Any], name: str = "inc_count"
    ) -> "Collection":
        return self._keyed(lambda: IncrementalCountVertex(key), key, name)

    def reduce_by(
        self,
        key: Callable[[Any], Any],
        reducer: Callable[[Any, List[Any]], Iterable[Any]],
        name: str = "inc_reduce",
    ) -> "Collection":
        return self._keyed(lambda: IncrementalReduceVertex(key, reducer), key, name)

    def join(
        self,
        other: "Collection",
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result: Callable[[Any, Any], Any] = lambda lhs, rhs: (lhs, rhs),
        name: str = "inc_join",
    ) -> "Collection":
        stage = self.stream._add_stage(
            name, lambda: IncrementalJoinVertex(left_key, right_key, result), 2, 1
        )
        self.stream.connect_to(
            stage, 0, hash_partitioner(lambda d: left_key(d[0]))
        )
        other.stream.connect_to(
            stage, 1, hash_partitioner(lambda d: right_key(d[0]))
        )
        return Collection(Stream(self.stream.computation, stage, 0))

    def connected_components(
        self, allow_deletions: bool = False, name: str = "inc_cc"
    ) -> "Collection":
        """Incremental CC over ``(u, v)`` edge diffs (section 6.4).

        With ``allow_deletions=False`` (the section 6.4 workload, where
        mention edges only accumulate) retractions raise; with
        ``allow_deletions=True`` the sliding-window variant is used —
        addition epochs stay incremental, deletion epochs recompute.
        The union-find structure is global, so this operator runs on a
        single worker (partition 0); downstream operators re-partition.
        """
        factory = (
            WindowedConnectedComponentsVertex if allow_deletions else UnionFindVertex
        )
        return Collection(
            self.stream._unary(name, factory, partitioner=lambda d: 0)
        )

    # -- outputs ---------------------------------------------------------

    def subscribe(
        self,
        callback: Callable[[Timestamp, List[Diff]], None],
        name: str = "inc_subscribe",
    ):
        """``callback(t, diffs)`` per complete epoch (consolidated)."""
        return self.stream.buffered(
            consolidate_diffs, name="%s.consolidate" % name
        ).subscribe(callback, name=name)

    def accumulate_into(self, sink: Dict[Any, int], name: str = "inc_accumulate"):
        """Maintain a live multiset view of the collection in ``sink``."""

        def apply(timestamp, diffs):
            for record, multiplicity in diffs:
                new = sink.get(record, 0) + multiplicity
                if new:
                    sink[record] = new
                else:
                    sink.pop(record, None)

        return self.subscribe(apply, name=name)
