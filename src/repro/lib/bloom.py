"""Asynchronous (coordination-free) operators in the Bloom style (§4.2).

The paper implements a subset of the Bloom framework: ``Where``,
``Concat``, ``Distinct`` and ``Join`` suffice, within a loop, for
Datalog-style queries, and none of them invokes ``notify_at`` — so
subgraphs built from them execute fully asynchronously on Naiad.  It
also provides a monotonic ``Aggregate`` that re-emits whenever the
aggregate improves, suitable for BloomL-style lattice programs.

The asynchronous operators here differ from their coordinated LINQ
cousins in :mod:`repro.lib.operators` in two ways:

- state accumulates across *all* timestamps (Datalog's growing model),
  rather than per-timestamp collections that are reclaimed on notify;
- results are emitted immediately, timestamped with the least upper
  bound of the contributing inputs' times — never waiting for epoch or
  iteration completeness.

Monotonicity is the programmer's obligation (as in CALM/Bloom): these
operators never retract, so they are only correct for programs whose
outputs grow monotonically with their inputs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from .stream import Stream, hash_partitioner


class AsyncDistinctVertex(Vertex):
    """Emit each record the first time it is ever seen (any timestamp).

    No notifications: state is never reclaimed, matching Datalog's
    monotonically growing database.
    """

    notifies = False

    def __init__(self):
        super().__init__()
        self.seen = set()

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        seen = self.seen
        fresh = []
        for record in records:
            if record not in seen:
                seen.add(record)
                fresh.append(record)
        if fresh:
            self.send_by(0, fresh, timestamp)


class AsyncJoinVertex(Vertex):
    """Symmetric hash join across all timestamps.

    A record arriving at time ``t1`` joins with previously stored
    records from any time ``t2``; the output is timestamped
    ``t1 ∨ t2`` (the least upper bound), preserving the no-messages-
    backwards-in-time rule without any coordination.
    """

    notifies = False
    _CONFIG_ATTRS = ("left_key", "right_key", "result")

    def __init__(
        self,
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result: Callable[[Any, Any], Any],
    ):
        super().__init__()
        self.left_key = left_key
        self.right_key = right_key
        self.result = result
        self.state: Tuple[Dict[Any, List[Tuple[Any, Timestamp]]], ...] = ({}, {})

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        mine, theirs = self.state[input_port], self.state[1 - input_port]
        key = self.left_key if input_port == 0 else self.right_key
        result = self.result
        outputs: Dict[Timestamp, List[Any]] = {}
        for record in records:
            k = key(record)
            mine.setdefault(k, []).append((record, timestamp))
            for other, other_time in theirs.get(k, ()):
                out_time = timestamp.join(other_time)
                pair = (
                    result(record, other)
                    if input_port == 0
                    else result(other, record)
                )
                outputs.setdefault(out_time, []).append(pair)
        for out_time, batch in outputs.items():
            self.send_by(0, batch, out_time)


class MonotonicAggregateVertex(Vertex):
    """BloomL-style monotonic aggregation: emit whenever a key improves.

    ``better(new, current) -> bool`` defines the improvement lattice
    (e.g. ``new < current`` for MIN).  Outputs ``(key, value)`` may be
    emitted several times per key, each better than the last — the
    trade-off section 2.4 describes: fast uncoordinated iteration at the
    cost of multiple messages before the final value.
    """

    notifies = False
    _CONFIG_ATTRS = ("key", "value", "better")

    def __init__(
        self,
        key: Callable[[Any], Any],
        value: Callable[[Any], Any],
        better: Callable[[Any, Any], bool],
    ):
        super().__init__()
        self.key = key
        self.value = value
        self.better = better
        self.current: Dict[Any, Any] = {}

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        key, value, better = self.key, self.value, self.better
        improved: List[Any] = []
        for record in records:
            k = key(record)
            v = value(record)
            if k not in self.current or better(v, self.current[k]):
                self.current[k] = v
                improved.append((k, v))
        if improved:
            self.send_by(0, improved, timestamp)


# ----------------------------------------------------------------------
# Fluent helpers mirroring the coordinated Stream API.
# ----------------------------------------------------------------------


def async_distinct(stream: Stream, name: str = "async_distinct") -> Stream:
    """Coordination-free distinct over the whole input history."""
    return stream._unary(
        name, AsyncDistinctVertex, partitioner=hash_partitioner(lambda r: r)
    )


def async_join(
    left: Stream,
    right: Stream,
    left_key: Callable[[Any], Any],
    right_key: Callable[[Any], Any],
    result: Callable[[Any, Any], Any],
    name: str = "async_join",
) -> Stream:
    """Coordination-free join accumulating both inputs forever."""
    if right.context is not left.context:
        raise ValueError("async_join requires streams in the same loop context")
    stage = left._add_stage(
        name, lambda: AsyncJoinVertex(left_key, right_key, result), 2, 1
    )
    left.connect_to(stage, 0, hash_partitioner(left_key))
    right.connect_to(stage, 1, hash_partitioner(right_key))
    return Stream(left.computation, stage, 0)


def monotonic_aggregate(
    stream: Stream,
    key: Callable[[Any], Any],
    value: Callable[[Any], Any],
    better: Callable[[Any, Any], bool],
    name: str = "monotonic_aggregate",
) -> Stream:
    """Emit ``(key, value)`` whenever the aggregate for a key improves."""
    return stream._unary(
        name,
        lambda: MonotonicAggregateVertex(key, value, better),
        partitioner=hash_partitioner(key),
    )


def transitive_closure(
    edges: Stream,
    max_iterations: int = 64,
    name: str = "tc",
) -> Stream:
    """Datalog-style transitive closure built only from async operators.

    Demonstrates the paper's point: Where/Concat/Distinct/Join inside a
    loop, with no notifications, evaluate recursive queries fully
    asynchronously.  Input records are ``(src, dst)`` pairs; the output
    is the set of reachable pairs, emitted as discovered.
    """

    def body(paths: Stream) -> Stream:
        extended = async_join(
            paths,
            paths,
            left_key=lambda p: p[1],
            right_key=lambda p: p[0],
            result=lambda a, b: (a[0], b[1]),
            name="%s.extend" % name,
        )
        return async_distinct(extended, name="%s.distinct" % name)

    return edges.iterate(
        body,
        max_iterations=max_iterations,
        partitioner=hash_partitioner(lambda p: p[0]),
        name=name,
    )
