"""Elastic rescaling: live add/remove_process and the autoscaler.

The tentpole invariant mirrors DESIGN.md invariant 5, extended to
planned membership changes: growing or shrinking the live process set
mid-computation must be invisible in the per-epoch outputs, and must
recover through the *partial* path — only the moving workers are
restored from the migration cut; every survivor keeps its live state.

Also covered here: the eager configuration validation (every rejected
combination raises an actionable ``ValueError`` at call time, not deep
inside a migration), the ``rescale`` trace kind and membership
timeline, and the metrics-driven :class:`repro.runtime.Autoscaler`.
"""

import pytest

from repro.obs import ACTIVITY_TYPES, TraceSink, membership_timeline
from repro.runtime import (
    AutoscalePolicy,
    Autoscaler,
    ClusterComputation,
    FaultTolerance,
)
from repro.sim import NetworkConfig
from tests.test_recovery import (
    baseline,
    make_ft,
    run_cluster,
    wordcount_program,
    WORDCOUNT_EPOCHS,
)


def rescale_ft():
    ft = make_ft("checkpoint", policy="reassign")
    ft.checkpoint_mode = "async"
    return ft


def build_wordcount(shape, ft):
    comp = ClusterComputation(
        num_processes=shape[0], workers_per_process=shape[1], fault_tolerance=ft
    )
    inp, out = wordcount_program(comp)
    comp.build()
    return comp, inp, out


# ----------------------------------------------------------------------
# Eager configuration validation: every rejected combination carries the
# reason and the fix.
# ----------------------------------------------------------------------


class TestRescaleValidation:
    def test_bogus_fault_tolerance_mode_rejected_at_construction(self):
        with pytest.raises(ValueError, match="FaultTolerance.mode"):
            ClusterComputation(
                num_processes=2,
                workers_per_process=2,
                fault_tolerance=FaultTolerance(mode="checkpoints"),
            )

    def test_barrier_checkpointing_cannot_rescale(self):
        ft = make_ft("checkpoint", policy="reassign")
        assert ft.checkpoint_mode == "barrier"
        comp, _, _ = build_wordcount((2, 2), ft)
        with pytest.raises(ValueError, match="checkpoint_mode='async'"):
            comp.add_process()
        with pytest.raises(ValueError, match="checkpoint_mode='async'"):
            comp.remove_process(1)

    def test_restart_recovery_cannot_rescale(self):
        ft = make_ft("checkpoint", policy="restart")
        ft.checkpoint_mode = "async"
        comp, _, _ = build_wordcount((2, 2), ft)
        with pytest.raises(ValueError, match="recovery='reassign'"):
            comp.add_process()
        with pytest.raises(ValueError, match="recovery='reassign'"):
            comp.remove_process(1)

    def test_rescale_requires_built_computation(self):
        comp = ClusterComputation(
            num_processes=2, workers_per_process=2, fault_tolerance=rescale_ft()
        )
        wordcount_program(comp)
        with pytest.raises(RuntimeError):
            comp.add_process()
        with pytest.raises(RuntimeError):
            comp.remove_process(1)

    def test_add_rejected_when_no_worker_share_left(self):
        # 2 workers over 2 hosts: a third host would get an empty share.
        comp, _, _ = build_wordcount((2, 1), rescale_ft())
        with pytest.raises(ValueError, match="no\\s+share"):
            comp.add_process()

    def test_remove_rejects_process_zero_and_out_of_range(self):
        comp, _, _ = build_wordcount((2, 2), rescale_ft())
        with pytest.raises(ValueError, match="input controller"):
            comp.remove_process(0)
        with pytest.raises(ValueError, match="out of range"):
            comp.remove_process(7)
        with pytest.raises(ValueError, match="out of range"):
            comp.remove_process(-1)

    def test_remove_rejects_already_removed_process(self):
        expected, duration = baseline("wordcount", (3, 2))
        out, comp = run_cluster(
            "wordcount",
            (3, 2),
            ft=rescale_ft(),
            rescale=[("remove", 2, duration * 0.4)],
        )
        assert out == expected
        with pytest.raises(ValueError, match="already been removed"):
            comp.remove_process(2)

    def test_remove_rejects_dead_process(self):
        expected, duration = baseline("wordcount", (3, 2))
        out, comp = run_cluster(
            "wordcount", (3, 2), ft=rescale_ft(), kill=(2, duration * 0.4)
        )
        assert out == expected
        with pytest.raises(ValueError, match="dead"):
            comp.remove_process(2)

    def test_autoscaler_rejects_inverted_thresholds(self):
        comp, _, _ = build_wordcount((2, 2), rescale_ft())
        with pytest.raises(ValueError, match="low_utilization"):
            Autoscaler(
                comp,
                TraceSink(),
                AutoscalePolicy(high_utilization=0.2, low_utilization=0.5),
            )

    def test_autoscaler_rejects_non_rescalable_configuration(self):
        comp, _, _ = build_wordcount((2, 2), make_ft("checkpoint"))
        with pytest.raises(ValueError, match="checkpoint_mode='async'"):
            Autoscaler(comp, TraceSink())


# ----------------------------------------------------------------------
# Live membership changes: outputs are bit-identical, recovery is
# partial (survivors never restored), bookkeeping is observable.
# ----------------------------------------------------------------------


def moved_and_restored(trace, comp):
    record = comp.rescales[0]
    moved = set(record["workers"])
    restores = [e for e in trace.events if e.kind == "restore"]
    return record, moved, restores


class TestLiveRescale:
    def test_live_add_matches_baseline_and_restores_only_movers(self):
        expected, duration = baseline("wordcount", (2, 2))
        trace = TraceSink()
        out, comp = run_cluster(
            "wordcount",
            (2, 2),
            ft=rescale_ft(),
            rescale=[("add", duration * 0.4)],
            trace=trace,
        )
        assert out == expected
        assert comp.live_processes == [0, 1, 2]
        record, moved, restores = moved_and_restored(trace, comp)
        assert record["kind"] == "add" and record["process"] == 2
        assert moved, "the new process received no workers"
        # The partial path: restore events name exactly the movers, with
        # the migration as the reason; nobody else was rolled back.
        assert {e.worker for e in restores} == moved
        assert all(e.detail[0] == "rescale" for e in restores)
        assert all(comp._worker_process[w] == 2 for w in moved)
        assert not comp.recovery.failures

    def test_live_add_trace_and_membership_timeline(self):
        assert ACTIVITY_TYPES["rescale"] == "barrier"
        expected, duration = baseline("wordcount", (2, 2))
        trace = TraceSink()
        out, comp = run_cluster(
            "wordcount",
            (2, 2),
            ft=rescale_ft(),
            rescale=[("add", duration * 0.4)],
            trace=trace,
        )
        assert out == expected
        rescale_events = [e for e in trace.events if e.kind == "rescale"]
        assert len(rescale_events) == 1
        timeline = membership_timeline(trace.events)
        assert len(timeline) == 1
        change = timeline[0]
        assert change.kind == "add"
        assert change.process == 2
        assert change.generation == 1
        assert change.live_count == 3
        assert change.moved_workers == comp.rescales[0]["workers"]
        assert change.blip >= 0.0
        info = comp.debug_state()
        assert info.fault_tolerance["live_processes"] == (0, 1, 2)
        assert info.fault_tolerance["rescale_generation"] == 1
        assert "membership: live=(0, 1, 2)" in info.text

    def test_live_remove_matches_baseline_and_rehomes_workers(self):
        expected, duration = baseline("wordcount", (3, 2))
        trace = TraceSink()
        out, comp = run_cluster(
            "wordcount",
            (3, 2),
            ft=rescale_ft(),
            rescale=[("remove", 2, duration * 0.4)],
            trace=trace,
        )
        assert out == expected
        assert comp.live_processes == [0, 1]
        record, moved, restores = moved_and_restored(trace, comp)
        assert record["kind"] == "remove" and record["process"] == 2
        assert {e.worker for e in restores} == moved
        assert all(w.process != 2 for w in comp.workers)
        assert not comp.recovery.failures

    def test_add_then_remove_in_one_run(self):
        expected, duration = baseline("wordcount", (2, 2))
        out, comp = run_cluster(
            "wordcount",
            (2, 2),
            ft=rescale_ft(),
            rescale=[("add", duration * 0.3), ("remove", 1, duration * 0.6)],
        )
        assert out == expected
        assert [r["kind"] for r in comp.rescales] == ["add", "remove"]
        assert comp.rescale_generation == 2
        assert comp.live_processes == [0, 2]

    def test_synchronous_add_returns_new_process_index(self):
        comp, inp, out = build_wordcount((2, 2), rescale_ft())
        for epoch in WORDCOUNT_EPOCHS[:3]:
            inp.on_next(epoch)
        comp.run()
        assert comp.add_process() == 2
        for epoch in WORDCOUNT_EPOCHS[3:]:
            inp.on_next(epoch)
        inp.on_completed()
        comp.run()
        assert comp.drained(), comp.debug_state().text
        expected, _ = baseline("wordcount", (2, 2))
        assert out == expected
        assert comp.live_processes == [0, 1, 2]

    def test_unplanned_kill_under_reassign_recovers_partially(self):
        # The soundness fix this PR ships: an unplanned kill under
        # recovery="reassign" takes the partial path — before, reassign
        # always escalated to a whole-cluster rollback.
        expected, duration = baseline("wordcount", (3, 2))
        trace = TraceSink()
        out, comp = run_cluster(
            "wordcount",
            (3, 2),
            ft=rescale_ft(),
            kill=(1, duration * 0.4),
            trace=trace,
        )
        assert out == expected
        assert len(comp.recovery.failures) == 1
        failure = comp.recovery.failures[0]
        assert failure["mode"] == "partial"
        assert failure["policy"] == "reassign"
        # Only the dead process's workers were restored, on new homes.
        dead_workers = {2, 3}
        restores = [e for e in trace.events if e.kind == "restore"]
        assert restores and {e.worker for e in restores} <= dead_workers
        assert all(w.process != 1 for w in comp.workers)


class TestRescaleUnderHostileNetwork:
    NETWORK = NetworkConfig(
        packet_loss_probability=0.2,
        retransmit_timeout=2e-3,
        gc_interval=1e-3,
        gc_pause=2e-3,
    )

    def test_add_survives_packet_loss_and_gc_pauses(self):
        expected, duration = baseline("wordcount", (2, 2))
        out, comp = run_cluster(
            "wordcount",
            (2, 2),
            ft=rescale_ft(),
            network=self.NETWORK,
            seed=7,
            rescale=[("add", duration * 0.4)],
        )
        assert out == expected
        assert comp.rescales[0]["kind"] == "add"

    def test_remove_survives_packet_loss_and_gc_pauses(self):
        expected, duration = baseline("wordcount", (3, 2))
        out, comp = run_cluster(
            "wordcount",
            (3, 2),
            ft=rescale_ft(),
            network=self.NETWORK,
            seed=7,
            rescale=[("remove", 2, duration * 0.4)],
        )
        assert out == expected
        assert comp.live_processes == [0, 1]


# ----------------------------------------------------------------------
# The autoscaler: metrics in, membership changes out, outputs unchanged.
# ----------------------------------------------------------------------


class TestAutoscaler:
    def run_autoscaled(self, shape, policy):
        comp, inp, out = build_wordcount(shape, rescale_ft())
        sink = TraceSink()
        comp.attach_trace_sink(sink)
        scaler = Autoscaler(comp, sink, policy).start()
        for epoch in WORDCOUNT_EPOCHS:
            inp.on_next(epoch)
        inp.on_completed()
        comp.run()
        assert comp.drained(), comp.debug_state().text
        return comp, scaler, out

    def test_sustained_load_grows_the_cluster(self):
        expected, _ = baseline("wordcount", (2, 2))
        # Any activity in a window counts as high load, idle windows
        # between bursts are neutral (negative low threshold), and the
        # long cooldown limits the run to a single decision.
        policy = AutoscalePolicy(
            interval=2e-5,
            high_utilization=1e-9,
            low_utilization=-1.0,
            sustain=1,
            cooldown=10.0,
            max_processes=3,
        )
        comp, scaler, out = self.run_autoscaled((2, 2), policy)
        assert out == expected
        assert scaler.samples, "the control loop never sampled"
        grows = [d for d in scaler.decisions if d["kind"] == "add"]
        assert len(grows) == 1
        assert comp.live_processes == [0, 1, 2]
        assert comp.rescales[0]["kind"] == "add"

    def test_idle_fleet_shrinks_to_the_floor(self):
        expected, _ = baseline("wordcount", (3, 2))
        # Thresholds no real window can reach: every sample is low.
        policy = AutoscalePolicy(
            interval=2e-5,
            high_utilization=1e9,
            low_utilization=1e8,
            sustain=2,
            cooldown=10.0,
            min_processes=2,
        )
        comp, scaler, out = self.run_autoscaled((3, 2), policy)
        assert out == expected
        shrinks = [d for d in scaler.decisions if d["kind"] == "remove"]
        assert len(shrinks) == 1
        assert shrinks[0]["process"] == 2
        assert comp.live_processes == [0, 1]

    def test_autoscaler_start_is_idempotent(self):
        comp, _, _ = build_wordcount((2, 2), rescale_ft())
        sink = TraceSink()
        comp.attach_trace_sink(sink)
        scaler = Autoscaler(comp, sink)
        assert scaler.start() is scaler
        before = comp.sim.background_pushes
        scaler.start()
        assert comp.sim.background_pushes == before
