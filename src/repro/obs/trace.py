"""Structured trace events and the :class:`TraceSink` event log.

A trace is a flat list of :class:`TraceEvent` records.  Every event
carries a virtual-time stamp ``t`` (the simulated cluster clock; the
reference runtime, which has no virtual clock, stamps its logical
delivery counter instead), a virtual duration ``dur`` for span-like
events, and a wall-clock stamp ``wall`` taken from
:func:`time.perf_counter` at emit time.

Event kinds
-----------

``activation``
    a vertex ``on_recv`` callback: one message delivered and processed.
``notification``
    a frontier notification grant (``on_notify`` with a capability).
``cleanup``
    a guarantee-only (capability-free) notification delivery.
``deliver``
    a message batch arriving at a worker's queue; ``dur`` is the flight
    time since the producing callback committed it.
``message``
    a network transfer between processes (both ``data`` and
    ``progress`` traffic — the latter are the progress-protocol
    broadcasts of section 3.3).
``frontier``
    the observed process-0 frontier moved (version, active counts).
``input``
    one epoch of external input journaled/introduced.
``checkpoint`` / ``restore`` / ``failure``
    fault-tolerance barriers (section 3.4): checkpoint begin/complete,
    rollback, and injected process failures.  A barrier ``checkpoint``
    event's ``detail`` is ``(count, journal_released, drain_duration,
    write_duration)``; a partial rollback emits one ``restore`` event
    per restored worker (``worker`` >= 0), a global rollback emits a
    single cluster-wide event (``worker`` == -1).
``rescale``
    a completed elastic membership change (``add_process`` /
    ``remove_process``): ``process`` is the process that joined or
    left, ``dur`` is the migration blip (now to the moved workers'
    ready time) and ``detail`` is ``(kind, generation, live_count,
    moved_workers, injected)``.
``snapshot``
    the asynchronous checkpoint protocol (``checkpoint_mode="async"``):
    one span per ``(worker, cycle)`` snapshot whose ``dur`` is the
    copy stall charged to that worker and whose ``detail`` is
    ``(cycle, fresh_vertices, total_vertices)``, plus one cycle
    summary per assembled cut (``worker`` == -1, ``dur`` = marker
    latency, ``detail`` = ``(cycle, fresh, reused, channel_entries,
    max_stall, durable_lag)``).
``run``
    one ``Simulator.run`` invocation (span over the whole drain).
``pool``
    a vertex callback body executed in a multiprocessing pool child
    (the ``mp`` backend); the ``process`` field carries the pool rank
    and ``detail`` is ``(callback_kind, child_wall_seconds)``.
``plan``
    one optimizer pass ran over the dataflow plan before the graph
    froze (``repro.opt``); ``operator`` names the pass and ``detail``
    is ``(rewrites, stages_after, connectors_after)``.
``serve``
    serving-layer activity (``repro.serve``): an arrangement publish
    (``detail`` = ``("publish",)``, ``stage`` = the arrangement name),
    a delivered answer (``detail`` = ``("answer", session_id, slo,
    staleness, degraded)`` with ``dur`` = response latency), or an
    admission rejection (``detail`` = ``("reject", session_id, slo)``).
``detect``
    failure detection and fencing (``repro.runtime.supervisor``): the
    ``stage`` field carries the phase — ``"crash"`` (a silent,
    unannounced process crash was injected), ``"suspect"`` (the
    adaptive detector crossed its phi threshold; ``detail`` =
    ``(phi, heartbeats_seen, deaths_in_window)``), ``"fence"`` (the
    incarnation number advanced; ``detail`` = ``(settled_progress,
    new_generation)``), ``"quarantine"`` (a crash-looping process was
    evicted), or ``"drop"`` (a fenced incarnation's stale message was
    discarded; ``detail`` = ``(reason, src, generation)``).

The mapping onto SnailTrail's activity vocabulary lives in
:data:`ACTIVITY_TYPES` and is documented in DESIGN.md.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, List, NamedTuple, Optional, Tuple

#: TraceEvent.kind -> SnailTrail activity type (Sandstede, *Online
#: Analysis of Distributed Dataflows with Timely Dataflow*).
ACTIVITY_TYPES = {
    "activation": "processing",
    "notification": "scheduling",
    "cleanup": "scheduling",
    "deliver": "data message",
    "message": "data message",        # detail[-1] == "progress" -> control
    "frontier": "progress tracking",
    "input": "data input",
    "checkpoint": "barrier",
    "snapshot": "barrier",
    "restore": "barrier",
    "failure": "barrier",
    "rescale": "barrier",
    "run": "span",
    "pool": "processing",
    "plan": "scheduling",
    "serve": "processing",
    "detect": "barrier",
}


class TraceEvent(NamedTuple):
    """One structured trace record (see module docstring for kinds)."""

    #: Event kind (one of the keys of :data:`ACTIVITY_TYPES`).
    kind: str
    #: Virtual-time stamp: span start for span events, emit time else.
    t: float
    #: Virtual duration of span events (0.0 for point events).
    dur: float
    #: Wall-clock stamp (``time.perf_counter``) at emit.
    wall: float
    #: Worker index (-1 when not worker-scoped).
    worker: int
    #: Hosting process index (-1 when not process-scoped).
    process: int
    #: Stage name ("" when not stage-scoped).
    stage: str
    #: Logical timestamp as ``(epoch, c1, ..., ck)``; ``()`` when N/A.
    timestamp: Tuple[int, ...]
    #: Kind-specific payload of flat scalars (counts, sizes, peers).
    detail: Tuple

    @property
    def finish(self) -> float:
        return self.t + self.dur

    @property
    def activity(self) -> str:
        """The SnailTrail activity type of this event."""
        if self.kind == "message" and self.detail and self.detail[-1] == "progress":
            return "control message"
        return ACTIVITY_TYPES.get(self.kind, "unknown")


def timestamp_tuple(timestamp) -> Tuple[int, ...]:
    """Flatten a :class:`repro.core.Timestamp` into ``(epoch, *counters)``."""
    if timestamp is None:
        return ()
    return (timestamp.epoch,) + tuple(timestamp.counters)


class TraceSink:
    """An in-memory event log accepted by both runtimes.

    The sink is deliberately dumb — ``emit`` appends — so that the cost
    of tracing is one list append per event.  Analysis lives in
    :mod:`repro.obs.metrics`; persistence is JSON-lines via
    :meth:`dump_jsonl` / :meth:`load_jsonl`, which round-trip exactly
    (floats serialize via ``repr`` and reload bit-identically, so a
    reloaded trace produces an identical critical-path summary).
    """

    __slots__ = ("events",)

    def __init__(self, events: Optional[Iterable[TraceEvent]] = None):
        self.events: List[TraceEvent] = list(events or ())

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        del self.events[:]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __repr__(self) -> str:
        return "TraceSink(%d events)" % len(self.events)

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write one JSON array per event; returns the event count."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(list(event)) + "\n")
        return len(self.events)

    @classmethod
    def load_jsonl(cls, path: str) -> "TraceSink":
        """Reload a trace written by :meth:`dump_jsonl`."""
        sink = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                row[7] = tuple(row[7])
                row[8] = tuple(tuple(x) if isinstance(x, list) else x for x in row[8])
                sink.events.append(TraceEvent(*row))
        return sink
