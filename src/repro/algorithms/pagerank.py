"""PageRank — three Naiad implementations (section 6.1, Figure 7a).

The paper compares per-iteration times of:

- **Naiad Vertex** (30 LOC): edges partitioned by source node, the
  natural sparse matrix-vector product;
- **Naiad Pregel** (38 LOC): the same algorithm over the Pregel library
  port, paying that abstraction's overheads;
- **Naiad Edge** (547 LOC): edges partitioned by a space-filling curve
  over (src, dst) — a static approximation of PowerGraph's vertex-cut
  objective — with rank shares scattered to edge blocks and partial sums
  aggregated per block before the return exchange.

All three iterate synchronously using notifications, one notification
wave per PageRank iteration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from ..lib.pregel import final_states, pregel
from ..lib.stream import Stream, hash_partitioner
from ..workloads.graphs import zorder

DAMPING = 0.85
RESET = 1 - DAMPING


class PageRankVertex(Vertex):
    """The "Naiad Vertex" variant: edges partitioned by source.

    Input 0: node records routed to their owning worker — ``(node,
    dst)`` asserts an out-edge, ``(node, None)`` asserts existence (so
    sink nodes get ranks on the worker that receives their
    contributions).  Input 1: rank contributions ``(node, value)`` from
    the feedback edge.  Output 0: contributions (feeds back).  Output 1:
    final ``(node, rank)`` at the last iteration.
    """

    def __init__(self, iterations: int):
        super().__init__()
        self.iterations = iterations
        #: epoch -> (out_edges, ranks)
        self.state: Dict[int, Tuple[Dict, Dict]] = {}
        #: timestamp -> accumulated contributions.  Keyed by the full
        #: timestamp, not the epoch: on the distributed runtime a fast
        #: peer's iteration-(i+1) contributions can arrive before this
        #: worker's iteration-i notification fires.
        self.acc: Dict[Timestamp, Dict[Any, float]] = {}
        self._notified = set()

    def _epoch_state(self, epoch: int):
        state = self.state.get(epoch)
        if state is None:
            state = self.state[epoch] = ({}, {})
        return state

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        if input_port == 0:
            out_edges, _ranks = self._epoch_state(timestamp.epoch)
            for node, dst in records:
                targets = out_edges.setdefault(node, [])
                if dst is not None:
                    targets.append(dst)
        else:
            acc = self.acc.setdefault(timestamp, {})
            for node, value in records:
                acc[node] = acc.get(node, 0.0) + value
        if timestamp not in self._notified:
            self._notified.add(timestamp)
            self.notify_at(timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        self._notified.discard(timestamp)
        out_edges, ranks = self._epoch_state(timestamp.epoch)
        acc = self.acc.pop(timestamp, {})
        iteration = timestamp.counters[-1]
        if iteration == 0:
            for node in out_edges:
                ranks[node] = 1.0
        else:
            for node in out_edges:
                ranks[node] = RESET + DAMPING * acc.get(node, 0.0)
        if iteration + 1 < self.iterations:
            contributions: List[Tuple[Any, float]] = []
            for node, targets in out_edges.items():
                if targets:
                    share = ranks[node] / len(targets)
                    contributions.extend((dst, share) for dst in targets)
            if contributions:
                self.send_by(0, contributions, timestamp)
            # Self-schedule the next iteration: nodes with no incoming
            # contributions must still recompute and re-send.
            self.notify_at(timestamp.incremented())
            self._notified.add(timestamp.incremented())
        else:
            self.send_by(1, list(ranks.items()), timestamp)
            del self.state[timestamp.epoch]


def pagerank_vertex(
    edges: Stream, iterations: int = 10, name: str = "pagerank"
) -> Stream:
    """The source-partitioned matvec implementation."""
    computation = edges.computation
    # Each edge becomes an out-edge record at its source's owner plus an
    # existence record at its destination's owner.
    node_records = edges.select_many(
        lambda edge: [(edge[0], edge[1]), (edge[1], None)],
        name="%s.nodes" % name,
    )
    with node_records.scoped_loop(name=name, max_iterations=iterations + 1) as loop:
        stage = loop.stage(name, lambda s, w: PageRankVertex(iterations), 2, 2)
        loop.entered.connect_to(
            stage, 0, partitioner=hash_partitioner(lambda rec: rec[0])
        )
        loop.feed(Stream(computation, stage, 0))
        loop.feedback.connect_to(
            stage, 1, partitioner=hash_partitioner(lambda rec: rec[0])
        )
        out = loop.leave_with(Stream(computation, stage, 1))
    return out


def pagerank_pregel(
    edges: Stream, iterations: int = 10, name: str = "pagerank_pregel"
) -> Stream:
    """PageRank over the Pregel library port (section 6.1's 38-LOC variant)."""

    def compute(ctx):
        if ctx.superstep == 0:
            ctx.set_state(1.0)
        else:
            ctx.set_state(RESET + DAMPING * sum(ctx.messages))
        if ctx.edges and ctx.superstep + 1 < iterations:
            ctx.send_to_neighbors(ctx.state / len(ctx.edges))

    # One graph record per node: out-edge assertions and existence
    # assertions (for sink nodes) merge in a single grouping so a node
    # appearing as both source and destination gets exactly one record.
    graph = edges.select_many(
        lambda edge: [(edge[0], edge[1]), (edge[1], None)],
        name="%s.arcs" % name,
    ).group_by(
        lambda rec: rec[0],
        lambda node, recs: [
            (node, 0.0, [dst for _, dst in recs if dst is not None])
        ],
        name="%s.adjacency" % name,
    )
    states = pregel(
        graph,
        compute,
        max_supersteps=iterations,
        combine=lambda a, b: a + b,
        name=name,
    )
    return final_states(states, name="%s.final" % name)


class _EdgeBlockVertex(Vertex):
    """One block of the space-filling-curve edge partition.

    Input 0: edges (by z-order block).  Input 1: rank shares
    ``(block, src, share)``.  Output 0: per-destination partial sums
    ``(dst, partial)``.  Output 1: registrations ``(src, block, degree)``
    sent once so rank holders know where to scatter shares.
    """

    def __init__(self):
        super().__init__()
        #: epoch -> {src: [dst, ...]} for this block.
        self.blocks: Dict[int, Dict[Any, List[Any]]] = {}
        self._notified = set()

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        if input_port == 0:
            block = self.blocks.setdefault(timestamp.epoch, {})
            for src, dst in records:
                block.setdefault(src, []).append(dst)
            if timestamp not in self._notified:
                self._notified.add(timestamp)
                self.notify_at(timestamp)
        else:
            block = self.blocks.get(timestamp.epoch, {})
            partials: Dict[Any, float] = {}
            for _block, src, share in records:
                for dst in block.get(src, ()):
                    partials[dst] = partials.get(dst, 0.0) + share
            if partials:
                # Partial aggregation per block before the exchange —
                # the bandwidth saving that makes this variant fastest.
                self.send_by(0, list(partials.items()), timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        self._notified.discard(timestamp)
        block = self.blocks.get(timestamp.epoch, {})
        registrations = [
            (src, self.worker, len(dsts)) for src, dsts in block.items()
        ]
        if registrations:
            self.send_by(1, registrations, timestamp)


class _SfcRankVertex(Vertex):
    """Rank state for the edge-partitioned variant, keyed by node.

    Input 0: registrations via the second feedback (arrive at counter 1).
    Input 1: partial sums via the first feedback.
    Output 0: shares ``(block, src, share)``.  Output 1: final ranks.
    """

    def __init__(self, iterations: int):
        super().__init__()
        self.iterations = iterations
        #: epoch -> (blocks per node, degree per node, ranks)
        self.state: Dict[int, Tuple[Dict, Dict, Dict]] = {}
        #: timestamp -> partial sums (full-timestamp keyed; see
        #: PageRankVertex.acc for why).
        self.acc: Dict[Timestamp, Dict[Any, float]] = {}
        self._notified = set()

    def _epoch_state(self, epoch: int):
        state = self.state.get(epoch)
        if state is None:
            state = self.state[epoch] = ({}, {}, {})
        return state

    def _request(self, timestamp: Timestamp) -> None:
        if timestamp not in self._notified:
            self._notified.add(timestamp)
            self.notify_at(timestamp)

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        if input_port == 0:
            blocks, degree, _ranks = self._epoch_state(timestamp.epoch)
            for src, block, local_degree in records:
                blocks.setdefault(src, set()).add(block)
                degree[src] = degree.get(src, 0) + local_degree
        else:
            acc = self.acc.setdefault(timestamp, {})
            for dst, partial in records:
                acc[dst] = acc.get(dst, 0.0) + partial
        self._request(timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        self._notified.discard(timestamp)
        blocks, degree, ranks = self._epoch_state(timestamp.epoch)
        acc = self.acc.pop(timestamp, {})
        # Loop counter 1 is PageRank iteration 0 (counter 0 carried the
        # edge load and registration wave).
        iteration = timestamp.counters[-1] - 1
        if iteration == 0:
            for node in blocks:
                ranks.setdefault(node, 1.0)
        else:
            for node in list(ranks):
                ranks[node] = RESET + DAMPING * acc.get(node, 0.0)
        if iteration + 1 < self.iterations:
            shares: List[Tuple[Any, Any, float]] = []
            for node, node_blocks in blocks.items():
                share = ranks.get(node, 1.0) / degree[node]
                shares.extend((block, node, share) for block in node_blocks)
            if shares:
                self.send_by(0, shares, timestamp)
            self._request(timestamp.incremented())
        else:
            self.send_by(1, list(ranks.items()), timestamp)
            del self.state[timestamp.epoch]


def pagerank_edge(
    edges: Stream,
    iterations: int = 10,
    name: str = "pagerank_edge",
) -> Stream:
    """The space-filling-curve edge-partitioned implementation.

    Note: ranks here cover nodes with out-edges (sink nodes receive
    contributions that are dropped), matching the matvec benchmarks on
    follower graphs where sinks are a small minority.
    """
    computation = edges.computation
    with edges.scoped_loop(name=name, max_iterations=iterations + 2) as loop:
        block_stage = loop.stage(
            "%s.blocks" % name, lambda s, w: _EdgeBlockVertex(), 2, 2
        )
        rank_stage = loop.stage(
            "%s.ranks" % name, lambda s, w: _SfcRankVertex(iterations), 2, 2
        )
        loop.entered.connect_to(
            block_stage, 0, partitioner=lambda edge: zorder(edge[0], edge[1])
        )
        # Shares: rank -> blocks, routed by explicit block id.
        Stream(computation, rank_stage, 0).connect_to(
            block_stage, 1, partitioner=lambda rec: rec[0]
        )
        # Partials: blocks -> feedback 1 -> rank, routed by destination node.
        loop.feed(Stream(computation, block_stage, 0))
        loop.feedback.connect_to(
            rank_stage, 1, partitioner=hash_partitioner(lambda rec: rec[0])
        )
        # Registrations: blocks -> feedback 2 -> rank, routed by source node.
        registrations = loop.feedback_edge(iterations + 2)
        registrations.feed(Stream(computation, block_stage, 1))
        registrations.stream.connect_to(
            rank_stage, 0, partitioner=hash_partitioner(lambda rec: rec[0])
        )
        out = loop.leave_with(Stream(computation, rank_stage, 1))
    return out


def pagerank_oracle(
    edges: List[Tuple[Any, Any]], iterations: int = 10
) -> Dict[Any, float]:
    """Reference ranks via straightforward iteration (same recurrence)."""
    out_edges: Dict[Any, List[Any]] = {}
    for src, dst in edges:
        out_edges.setdefault(src, []).append(dst)
        out_edges.setdefault(dst, [])
    ranks = {node: 1.0 for node in out_edges}
    for _ in range(1, iterations):
        acc = {node: 0.0 for node in out_edges}
        for node, targets in out_edges.items():
            if targets:
                share = ranks[node] / len(targets)
                for dst in targets:
                    acc[dst] += share
        ranks = {node: RESET + DAMPING * acc[node] for node in out_edges}
    return ranks
