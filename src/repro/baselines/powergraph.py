"""A PowerGraph-style GAS engine (Figure 7a's comparison system).

PowerGraph [16] partitions *edges* across machines (a vertex cut) and
runs gather-apply-scatter supersteps; a vertex whose edges span k
machines keeps k mirrors that exchange gathered sums and updated values
each superstep.  This engine really executes GAS PageRank over a greedy
vertex-cut partition and charges virtual time:

    t_iter = max_machine_edges * per_edge                (compute)
           + 2 * replication_traffic / bandwidth         (gather + scatter sync)
           + barrier latency

which exposes the quantity PowerGraph optimises: the replication
factor of the cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Set, Tuple

Edge = Tuple[Any, Any]


@dataclass
class GasCosts:
    per_edge: float = 150e-9
    per_vertex: float = 100e-9
    value_bytes: int = 16
    network_bandwidth: float = 125e6
    barrier_latency: float = 1e-3


class PowerGraphEngine:
    """Greedy vertex-cut GAS execution with a per-iteration time model."""

    def __init__(self, num_machines: int = 8, costs: GasCosts = GasCosts()):
        self.num_machines = num_machines
        self.costs = costs
        self.elapsed = 0.0
        self.per_iteration: List[float] = []

    # ------------------------------------------------------------------

    def partition(self, edges: Sequence[Edge]) -> List[List[Edge]]:
        """Greedy vertex-cut: place each edge where its endpoints already
        have mirrors, preferring the least-loaded machine (the heuristic
        from the PowerGraph paper)."""
        machines: List[List[Edge]] = [[] for _ in range(self.num_machines)]
        mirrors: Dict[Any, Set[int]] = {}
        average = max(1.0, len(edges) / self.num_machines)
        for index, (u, v) in enumerate(edges):
            mu = mirrors.get(u, set())
            mv = mirrors.get(v, set())
            both = mu & mv
            either = mu | mv
            if both:
                candidates = both
            elif either:
                candidates = either
            else:
                candidates = set(range(self.num_machines))
            target = min(candidates, key=lambda m: len(machines[m]))
            # Balance clause: when the preferred machines are overloaded
            # relative to the emptiest one, cut the vertex instead (this
            # is what produces replication > 1 on skewed graphs).
            lightest = min(range(self.num_machines), key=lambda m: len(machines[m]))
            if len(machines[target]) > len(machines[lightest]) + 0.2 * average:
                target = lightest
            machines[target].append((u, v))
            mirrors.setdefault(u, set()).add(target)
            mirrors.setdefault(v, set()).add(target)
        self._mirrors = mirrors
        return machines

    def replication_factor(self) -> float:
        if not self._mirrors:
            return 0.0
        return sum(len(m) for m in self._mirrors.values()) / len(self._mirrors)

    # ------------------------------------------------------------------

    def pagerank(
        self, edges: Sequence[Edge], iterations: int = 10
    ) -> Dict[Any, float]:
        machines = self.partition(edges)
        costs = self.costs
        out_degree: Dict[Any, int] = {}
        nodes: Set[Any] = set()
        for u, v in edges:
            out_degree[u] = out_degree.get(u, 0) + 1
            nodes.add(u)
            nodes.add(v)
        ranks = {node: 1.0 for node in nodes}
        max_edges = max((len(m) for m in machines), default=0)
        sync_values = sum(len(m) - 1 for m in self._mirrors.values())
        iteration_time = (
            max_edges * costs.per_edge
            + len(nodes) * costs.per_vertex / self.num_machines
            + 2 * sync_values * costs.value_bytes
            / (costs.network_bandwidth * self.num_machines)
            + costs.barrier_latency
        )
        for _ in range(1, iterations):
            acc = {node: 0.0 for node in nodes}
            # Gather is distributed over machines; semantics are global.
            for u, v in edges:
                acc[v] += ranks[u] / out_degree[u]
            ranks = {node: 0.15 + 0.85 * acc[node] for node in nodes}
            self.elapsed += iteration_time
            self.per_iteration.append(iteration_time)
        return ranks
