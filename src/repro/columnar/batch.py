"""Schema-tagged, array-backed record batches.

Columns are ``array.array`` instances — contiguous machine-typed
buffers that expose the buffer protocol, so they concatenate, pickle
and cross the shared-memory ring as single memcpys instead of
per-record object graphs.  NumPy, when present, accelerates hash
partitioning; every fast path is checked against the exact semantics of
the record-at-a-time code it replaces (``hash(key) % total``, stable
order, first-occurrence share order), so the two paths are
interchangeable record-for-record.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised indirectly
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: ``hash(k) == k`` exactly for ints in ``[0, 2**61 - 1)`` (CPython
#: reduces modulo the Mersenne prime 2**61 - 1, and negatives / -1 are
#: special-cased).  The vectorized partitioner only runs inside this
#: range; outside it the per-record ``hash()`` loop keeps the exact
#: routing the record path would have produced.
_HASH_IDENTITY_BOUND = (1 << 61) - 1

#: typecode -> the exact Python type a conforming record field must be.
#: ``bool`` is an ``int`` subclass but round-trips to ``int`` through an
#: array, so conformance requires the exact type.
_FIELD_TYPES = {"q": int, "d": float}

_NP_DTYPES = {"q": "int64", "d": "float64"}

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class Schema:
    """The column layout of a batch: one typecode per column.

    ``scalar`` declares that records are bare values (``3``) rather than
    1-tuples (``(3,)``); it is only valid for single-column schemas.
    Supported typecodes: ``"q"`` (int64, Python ``int``) and ``"d"``
    (float64, Python ``float``).
    """

    __slots__ = ("typecodes", "scalar")

    def __init__(self, typecodes: Sequence[str], scalar: bool = False):
        self.typecodes = tuple(typecodes)
        if not self.typecodes:
            raise ValueError("a schema needs at least one column")
        for typecode in self.typecodes:
            if typecode not in _FIELD_TYPES:
                raise ValueError(
                    "unsupported column typecode %r (supported: %s)"
                    % (typecode, sorted(_FIELD_TYPES))
                )
        if scalar and len(self.typecodes) != 1:
            raise ValueError("scalar schemas have exactly one column")
        self.scalar = bool(scalar)

    @property
    def width(self) -> int:
        return len(self.typecodes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Schema)
            and self.typecodes == other.typecodes
            and self.scalar == other.scalar
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((Schema, self.typecodes, self.scalar))

    def __repr__(self) -> str:
        return "Schema(%r%s)" % (
            "".join(self.typecodes),
            ", scalar" if self.scalar else "",
        )

    def __reduce__(self):
        return (Schema, (self.typecodes, self.scalar))


#: Bare int64 records (``select`` chains over plain ints).
INT64 = Schema(("q",), scalar=True)
#: ``(int64, int64)`` tuple records (edges, arcs, key/value pairs).
INT64_PAIR = Schema(("q", "q"))


class ColumnarBatch:
    """An immutable-by-convention batch of ``len(self)`` records.

    Code holding a batch must not mutate its columns: batches are
    shared between dispatch tuples, checkpoint ledgers and receiver
    queues exactly like record lists are, and every combining operation
    (:meth:`concat`, :meth:`partition`) builds fresh arrays.
    """

    __slots__ = ("schema", "columns")

    def __init__(self, schema: Schema, columns: Sequence[array]):
        self.schema = schema
        self.columns = tuple(columns)
        if len(self.columns) != schema.width:
            raise ValueError(
                "schema %r expects %d columns, got %d"
                % (schema, schema.width, len(self.columns))
            )

    # ------------------------------------------------------------------
    # Construction and materialization.
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls, records: List[Any], schema: Schema
    ) -> Optional["ColumnarBatch"]:
        """Encode ``records`` columnar, or None when they don't conform.

        Conformance is exact — plain tuples of the right arity whose
        fields have the exact Python type of their column (bare values
        for scalar schemas) — so ``to_records`` of the result compares
        equal, field for field, with the input.  Any non-conforming
        record rejects the whole batch; callers fall back to the
        record-list path.
        """
        typecodes = schema.typecodes
        try:
            if schema.scalar:
                field_type = _FIELD_TYPES[typecodes[0]]
                for record in records:
                    if type(record) is not field_type:
                        return None
                columns: Tuple[array, ...] = (array(typecodes[0], records),)
            else:
                width = schema.width
                field_types = tuple(_FIELD_TYPES[tc] for tc in typecodes)
                for record in records:
                    if type(record) is not tuple or len(record) != width:
                        return None
                    for value, field_type in zip(record, field_types):
                        if type(value) is not field_type:
                            return None
                if records:
                    columns = tuple(
                        array(tc, values)
                        for tc, values in zip(typecodes, zip(*records))
                    )
                else:
                    columns = tuple(array(tc) for tc in typecodes)
        except (TypeError, ValueError, OverflowError):
            # int outside int64, or a non-sequence sneaking past checks.
            return None
        return cls(schema, columns)

    def to_records(self) -> List[Any]:
        """The exact record list this batch encodes."""
        if self.schema.scalar:
            return self.columns[0].tolist()
        return list(zip(*self.columns))

    # ------------------------------------------------------------------
    # Batch algebra.
    # ------------------------------------------------------------------

    @classmethod
    def concat(
        cls, schema: Schema, parts: Sequence["ColumnarBatch"]
    ) -> "ColumnarBatch":
        """Concatenate same-schema batches into a fresh batch."""
        columns = tuple(array(tc) for tc in schema.typecodes)
        for part in parts:
            for acc, column in zip(columns, part.columns):
                acc.frombytes(memoryview(column).cast("B"))
        return cls(schema, columns)

    def partition(
        self, key_col: int, total: int
    ) -> List[Tuple[int, "ColumnarBatch"]]:
        """Hash-partition by a key column: ``hash(key) % total``.

        Matches the record path exactly: per-share record order is the
        batch order, and shares appear in first-occurrence order of
        their destination.
        """
        keys = self.columns[key_col]
        if not keys:
            return []
        schema = self.schema
        if _np is not None and schema.typecodes[key_col] == "q":
            key_view = _np.frombuffer(keys, dtype=_np.int64)
            low = int(key_view.min())
            if low >= 0 and int(key_view.max()) < _HASH_IDENTITY_BOUND:
                dests = key_view % total
                uniq, first = _np.unique(dests, return_index=True)
                if len(uniq) == 1:
                    return [(int(uniq[0]), self)]
                column_views = [
                    _np.frombuffer(column, dtype=_NP_DTYPES[tc])
                    for tc, column in zip(schema.typecodes, self.columns)
                ]
                shares = []
                for position in _np.argsort(first, kind="stable"):
                    dest = int(uniq[position])
                    mask = dests == dest
                    columns = []
                    for tc, view in zip(schema.typecodes, column_views):
                        selected = array(tc)
                        selected.frombytes(view[mask].tobytes())
                        columns.append(selected)
                    shares.append((dest, ColumnarBatch(schema, columns)))
                return shares
        # Exact-semantics fallback: per-record hash() (negative keys,
        # huge ints, float columns) through the same bucket discipline.
        buckets = {}
        columns = self.columns
        typecodes = schema.typecodes
        for position, key in enumerate(keys):
            dest = hash(key) % total
            share = buckets.get(dest)
            if share is None:
                share = buckets[dest] = tuple(array(tc) for tc in typecodes)
            for acc, column in zip(share, columns):
                acc.append(column[position])
        return [
            (dest, ColumnarBatch(schema, share))
            for dest, share in buckets.items()
        ]

    # ------------------------------------------------------------------
    # Record-list interoperability.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns[0])

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_records())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColumnarBatch)
            and self.schema == other.schema
            and self.columns == other.columns
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __repr__(self) -> str:
        return "ColumnarBatch(%r, %d records)" % (self.schema, len(self))

    def __reduce__(self):
        # Compact, version-stable pickling: schema plus raw column
        # bytes (one blob per column, no per-record encoding).
        return (
            _rebuild_batch,
            (
                self.schema.typecodes,
                self.schema.scalar,
                tuple(column.tobytes() for column in self.columns),
            ),
        )


def _rebuild_batch(
    typecodes: Tuple[str, ...], scalar: bool, blobs: Tuple[bytes, ...]
) -> ColumnarBatch:
    schema = Schema(typecodes, scalar)
    columns = []
    for typecode, blob in zip(typecodes, blobs):
        column = array(typecode)
        column.frombytes(blob)
        columns.append(column)
    return ColumnarBatch(schema, columns)


# ----------------------------------------------------------------------
# Data-plane helpers shared by the inline worker and the pool child.
# ----------------------------------------------------------------------


def route(
    connector, payload, total: int, local_index: int
) -> List[Tuple[int, Any]]:
    """Partition one send's payload across the workers of a connector.

    ``payload`` is a record list or a :class:`ColumnarBatch`; the
    result is a list of ``(dest_worker, share)`` where each share is a
    batch when the connector carries a columnar schema and the payload
    conforms, and a record list otherwise.  Pipeline connectors (no
    partitioner) keep the payload on the local worker.  This is the
    single routing implementation used by the inline ``_Worker.send``
    and the pool child's ``_ChildHarness.send``, which is what keeps
    the two backends bit-identical.
    """
    schema = getattr(connector, "columnar", None)
    partitioner = connector.partitioner
    if type(payload) is ColumnarBatch:
        if schema is not None and payload.schema == schema:
            if partitioner is None:
                return [(local_index, payload)]
            key_col = getattr(partitioner, "key_col", None)
            if key_col is not None:
                return payload.partition(key_col, total)
        # Demoted: no schema on this connector, a schema mismatch, or a
        # partitioner without a key-column hint.
        payload = payload.to_records()
    elif schema is not None and partitioner is not None:
        key_col = getattr(partitioner, "key_col", None)
        if key_col is not None:
            batch = ColumnarBatch.from_records(payload, schema)
            if batch is not None:
                return batch.partition(key_col, total)
    if partitioner is None:
        shares: List[Tuple[int, Any]] = [(local_index, payload)]
    else:
        buckets = {}
        for record in payload:
            buckets.setdefault(partitioner(record) % total, []).append(record)
        shares = list(buckets.items())
    if schema is not None:
        encoded = []
        for dest, records in shares:
            batch = ColumnarBatch.from_records(records, schema)
            encoded.append((dest, records if batch is None else batch))
        return encoded
    return shares


class PairSink:
    """Accumulates ``(int, int)`` emissions for a column kernel.

    The fast path appends straight into two int64 arrays; the first
    value outside int64 range demotes the whole accumulation to a tuple
    list (columnar encoding is lossless or not at all), keeping kernels
    bit-identical with the record path even for pathological ids.
    """

    __slots__ = ("lefts", "rights", "records")

    def __init__(self):
        self.lefts = array("q")
        self.rights = array("q")
        self.records: Optional[List[Tuple[int, int]]] = None

    def emit(self, left: int, right: int) -> None:
        records = self.records
        if records is not None:
            records.append((left, right))
            return
        try:
            self.lefts.append(left)
            self.rights.append(right)
        except OverflowError:
            # zip truncates to the shorter column, dropping a half-
            # appended pair; re-emit it as a tuple.
            self.records = list(zip(self.lefts, self.rights))
            self.records.append((left, right))

    def payload(self) -> Any:
        """The accumulated emissions: a batch, a record list, or None."""
        if self.records is not None:
            return self.records
        if len(self.lefts):
            return ColumnarBatch(INT64_PAIR, (self.lefts, self.rights))
        return None


def combine_payloads(parts: List[Any]) -> Any:
    """Merge adjacent deliveries' payloads into one.

    Same-schema batches concatenate without materializing records;
    anything mixed degrades to one record list.  Never mutates a part.
    """
    first = parts[0]
    if type(first) is ColumnarBatch:
        schema = first.schema
        if all(
            type(part) is ColumnarBatch and part.schema == schema
            for part in parts
        ):
            return ColumnarBatch.concat(schema, parts)
    merged: List[Any] = []
    for part in parts:
        merged.extend(part.to_records() if type(part) is ColumnarBatch else part)
    return merged
