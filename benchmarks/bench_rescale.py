"""Elastic rescaling on the flagship WCC run: blip, not pause.

WCC over a random graph on the 64-computer Figure 6 preset, streamed
as edge epochs, rescaled mid-run.  The claim under test is the design
contract of `ClusterComputation.add_process` / `remove_process`
(DESIGN.md, "Elastic rescaling"): a live membership change costs a
*partial-rollback blip* — ship the moving workers' cut state, replay
their journal suffix, survivors keep streaming — and never the global
pause of the stop-the-world alternative.

Five runs, identical outputs required across all of them:

- ``fixed``       — async checkpoints, shape never changes (control);
- ``add``         — a 65th process joins at mid-run;
- ``remove``      — a founding process drains out at mid-run;
- ``barrier``     — barrier checkpointing, fixed shape: what each
                    periodic stop-the-world pause costs on this
                    workload;
- ``barrier-kill`` — barrier checkpointing, the same process lost at
                    the same point but *unplanned*: the global
                    rollback a rescale would cost without async-cut
                    migration (every worker restored, full replay).

The report compares each migration's blip (cut-to-ready, from
``comp.rescales``) and the worst inter-output stall it induced against
the barrier's pauses and the global recovery outage.  Asserted: both
migrations take the partial path (no failure records, survivors never
restored) and their blips are a small fraction of the global outage.
"""

from collections import Counter

from repro.algorithms import weakly_connected_components
from repro.lib import Stream
from repro.obs import TraceSink, checkpoint_pause_stats
from repro.runtime import ClusterComputation, CostModel, FaultTolerance
from repro.workloads import uniform_random_graph

from bench_harness import format_table, human_time, report

COMPUTERS = 64
WORKERS_PER_PROCESS = 2
EPOCHS = 6
GRAPH = uniform_random_graph(2000, 4000, seed=2)
#: The Figure 6 blocked cost model (see bench_fig6d_strong_scaling).
BLOCKED = CostModel(per_record_cost=2e-5, record_bytes=800)

#: Membership changes land at this fraction of the control duration.
RESCALE_POINT = 0.5


def make_ft(checkpoint_mode):
    return FaultTolerance(
        mode="checkpoint",
        checkpoint_mode=checkpoint_mode,
        checkpoint_every=2,
        state_bytes_per_worker=1 << 18,
        disk_bandwidth=200e6,
        recovery="reassign",
        restart_delay=0.02,
    )


def edge_epochs():
    chunk = (len(GRAPH) + EPOCHS - 1) // EPOCHS
    return [GRAPH[i : i + chunk] for i in range(0, len(GRAPH), chunk)]


def run_wcc(checkpoint_mode, rescale=None, kill=None):
    """One streamed WCC run; returns outputs and stall measurements."""
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=WORKERS_PER_PROCESS,
        progress_mode="local+global",
        cost_model=BLOCKED,
        fault_tolerance=make_ft(checkpoint_mode),
    )
    trace = TraceSink()
    comp.attach_trace_sink(trace)
    outputs = {}
    releases = []

    def observe(timestamp, records):
        outputs.setdefault(timestamp.epoch, Counter()).update(records)
        releases.append(comp.now)

    inp = comp.new_input("edges")
    weakly_connected_components(Stream.from_input(inp)).subscribe(observe)
    comp.build()
    for op in rescale or ():
        if op[0] == "add":
            comp.add_process(at=op[1])
        else:
            comp.remove_process(op[1], at=op[2])
    if kill is not None:
        comp.kill_process(kill[0], at=kill[1])
    for batch in edge_epochs():
        inp.on_next(batch)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state().text
    worst_stall = max(
        (b - a for a, b in zip(releases, releases[1:])), default=0.0
    )
    return {
        "outputs": outputs,
        "comp": comp,
        "trace": trace,
        "worst_stall": worst_stall,
        "duration": comp.now,
    }


def test_bench_rescale(benchmark):
    def experiment():
        results = {"fixed": run_wcc("async")}
        duration = results["fixed"]["duration"]
        at = duration * RESCALE_POINT
        results["add"] = run_wcc("async", rescale=[("add", at)])
        results["remove"] = run_wcc(
            "async", rescale=[("remove", COMPUTERS - 1, at)]
        )
        results["barrier"] = run_wcc("barrier")
        results["barrier-kill"] = run_wcc(
            "barrier", kill=(COMPUTERS - 1, at)
        )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    expected = results["fixed"]["outputs"]
    for name, run in results.items():
        assert run["outputs"] == expected, (
            "run %r changed the per-epoch outputs" % name
        )

    # Both migrations took the partial path: planned changes are not
    # failures, and only the movers were restored.
    blips = {}
    for name in ("add", "remove"):
        comp = results[name]["comp"]
        assert not comp.recovery.failures, name
        (record,) = comp.rescales
        moved = set(record["workers"])
        restored = {
            event.worker
            for event in results[name]["trace"].events
            if event.kind == "restore"
        }
        assert restored == moved, (name, restored, moved)
        blips[name] = record["ready"] - record["at"]

    barrier_stats = checkpoint_pause_stats(results["barrier"]["trace"])
    worst_barrier_pause = max(barrier_stats.barrier_pauses)
    async_stats = checkpoint_pause_stats(results["fixed"]["trace"])

    kill_comp = results["barrier-kill"]["comp"]
    (failure,) = kill_comp.recovery.failures
    global_outage = failure["ready"] - failure["at"]

    # The tentpole claim: a live rescale is bounded by the partial-
    # rollback blip (ship + replay the movers), nowhere near the
    # global outage the barrier path pays for the same departure.
    for name, blip in blips.items():
        assert blip < global_outage / 3, (name, blip, global_outage)
        assert results[name]["worst_stall"] <= global_outage, name

    rows = []
    for name in ("fixed", "add", "remove", "barrier", "barrier-kill"):
        run = results[name]
        comp = run["comp"]
        blip = blips.get(name)
        if name == "barrier-kill":
            blip = global_outage
        rows.append(
            (
                name,
                len(comp.live_processes),
                human_time(run["duration"]),
                human_time(run["worst_stall"]),
                human_time(blip) if blip is not None else "-",
            )
        )
    lines = [
        "WCC/%d, %d epochs of edges, %d workers; rescale at %.0f%% of "
        "the control run"
        % (
            COMPUTERS,
            EPOCHS,
            COMPUTERS * WORKERS_PER_PROCESS,
            100 * RESCALE_POINT,
        ),
        "",
    ]
    lines += format_table(
        ("run", "live", "duration", "worst stall", "blip/outage"), rows
    )
    lines += [
        "",
        "barrier worst pause (periodic): %s"
        % human_time(worst_barrier_pause),
        "async cut worst stall: %s, durable staleness: %s"
        % (
            human_time(max(async_stats.async_max_stalls or (0.0,))),
            human_time(max(async_stats.async_durable_lags or (0.0,))),
        ),
        "global outage for the unplanned departure: %s"
        % human_time(global_outage),
        "migration blips: add %s, remove %s — bounded by the partial "
        "rollback, not the global pause"
        % (human_time(blips["add"]), human_time(blips["remove"])),
    ]
    report("bench_rescale", lines)
