"""Observability for the timely dataflow runtimes (`repro.obs`).

Three layers, all optional and zero-overhead when unused:

- :mod:`repro.obs.trace` — a :class:`TraceSink` event log.  Both
  runtimes accept the same sink via
  :meth:`repro.core.TimelyRuntime.attach_trace_sink`; hook points in the
  scheduler, the simulated cluster, the network model and the
  checkpoint/recovery cycle emit :class:`TraceEvent` records carrying
  simulated-time and wall-time stamps.  When no sink is attached the
  hot paths perform a single attribute test and allocate nothing.
- :mod:`repro.obs.metrics` — aggregations over a recorded trace:
  per-stage and per-worker timelines, frontier-progress traces, and a
  SnailTrail-style critical-path summary of the simulated cluster.
- :mod:`repro.obs.profile` — a self-profile of the discrete-event
  simulation itself (event counts, heap churn, cost-model call
  tallies), collected from counters the DES maintains unconditionally.
"""

from .metrics import (
    CheckpointPauseStats,
    CriticalPathSummary,
    DetectionIncident,
    DetectionStats,
    MembershipChange,
    PoolTimeline,
    ServeClassStats,
    StageTimeline,
    WorkerTimeline,
    checkpoint_pause_stats,
    critical_path,
    detection_stats,
    event_counts,
    frontier_trace,
    membership_timeline,
    pool_timelines,
    serve_latency_stats,
    stage_timelines,
    worker_timelines,
)
from .profile import DESProfile, collect_profile
from .trace import ACTIVITY_TYPES, TraceEvent, TraceSink, timestamp_tuple

__all__ = [
    "ACTIVITY_TYPES",
    "CheckpointPauseStats",
    "CriticalPathSummary",
    "DESProfile",
    "DetectionIncident",
    "DetectionStats",
    "MembershipChange",
    "PoolTimeline",
    "ServeClassStats",
    "StageTimeline",
    "TraceEvent",
    "TraceSink",
    "WorkerTimeline",
    "checkpoint_pause_stats",
    "collect_profile",
    "critical_path",
    "detection_stats",
    "event_counts",
    "frontier_trace",
    "membership_timeline",
    "pool_timelines",
    "serve_latency_stats",
    "stage_timelines",
    "timestamp_tuple",
    "worker_timelines",
]
