"""Synthetic tweet and query streams (sections 6.3 and 6.4).

Tweets carry a user, mentions of other users and hashtags; the mention
edges drive the incremental connected-components computation of the
Figure 1 application, and the hashtags drive per-component top-hashtag
maintenance and the k-exposure metric.  Queries ask for the top hashtag
in a user's component.

Users and hashtags are drawn from Zipf-like distributions (a few
celebrities and trending tags dominate), mirroring the Twitter data the
paper replays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Tweet:
    user: int
    mentions: Tuple[int, ...]
    hashtags: Tuple[str, ...]


@dataclass
class TweetStreamConfig:
    num_users: int = 10_000
    num_hashtags: int = 500
    mention_probability: float = 0.6
    hashtag_probability: float = 0.8
    skew: float = 1.0
    seed: int = 0


class TweetGenerator:
    """Deterministic, seedable stream of tweets and queries."""

    def __init__(self, config: TweetStreamConfig = TweetStreamConfig()):
        self.config = config
        self.rng = random.Random(config.seed)

    def _zipf_index(self, n: int) -> int:
        # Inverse-CDF approximation for a Zipf(1) distribution.
        rng = self.rng
        while True:
            value = int(n ** rng.random()) - 1
            if 0 <= value < n:
                return value

    def tweet(self) -> Tweet:
        config, rng = self.config, self.rng
        user = self._zipf_index(config.num_users)
        mentions: List[int] = []
        if rng.random() < config.mention_probability:
            mentions.append(self._zipf_index(config.num_users))
        hashtags: List[str] = []
        if rng.random() < config.hashtag_probability:
            hashtags.append("#tag%d" % self._zipf_index(config.num_hashtags))
        return Tweet(user, tuple(mentions), tuple(hashtags))

    def batch(self, count: int) -> List[Tweet]:
        return [self.tweet() for _ in range(count)]

    def query(self) -> int:
        """A user asking for their component's top hashtag."""
        return self._zipf_index(self.config.num_users)


def mention_edges(tweets: List[Tweet]) -> List[Tuple[int, int]]:
    return [
        (tweet.user, mention) for tweet in tweets for mention in tweet.mentions
    ]


def hashtag_records(tweets: List[Tweet]) -> List[Tuple[int, str]]:
    return [
        (tweet.user, hashtag) for tweet in tweets for hashtag in tweet.hashtags
    ]
