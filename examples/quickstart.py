"""Quickstart: the prototypical Naiad program (paper section 4.1).

Defines a dataflow with LINQ-style operators, feeds it epochs of input,
and receives one consistent output callback per epoch — then shows the
same computation written as a raw timely dataflow vertex (the paper's
Figure 4 DistinctCount), demonstrating that high-level operators and
hand-written vertices coexist in one program.

Run:  python examples/quickstart.py
"""

from repro import Computation, Vertex
from repro.lib import Stream


def high_level():
    print("== incremental MapReduce with LINQ-style operators ==")
    comp = Computation()
    lines = comp.new_input("lines")

    # 1b. Define the dataflow graph (SelectMany + GroupBy ~ MapReduce).
    (
        Stream.from_input(lines)
        .select_many(str.split)
        .count_by(lambda word: word)
        .subscribe(
            lambda t, records: print("  epoch %d -> %s" % (t.epoch, sorted(records)))
        )
    )
    comp.build()

    # 2. Supply epochs of input; each on_next completes an epoch.
    lines.on_next(["to be or not to be"])
    lines.on_next(["the question"])
    lines.on_completed()
    comp.run()
    assert comp.drained()


class DistinctCount(Vertex):
    """The paper's Figure 4: distinct records now, counts on notify."""

    def __init__(self):
        super().__init__()
        self.counts = {}

    def on_recv(self, port, records, t):
        if t not in self.counts:
            self.counts[t] = {}
            self.notify_at(t)  # ask to be told when time t is complete
        for record in records:
            if record not in self.counts[t]:
                self.counts[t][record] = 0
                self.send_by(0, [record], t)  # distinct: send immediately
            self.counts[t][record] += 1

    def on_notify(self, t):
        # All records for t have arrived: counts are final.
        self.send_by(1, sorted(self.counts.pop(t).items()), t)


def low_level():
    print("== the same idea as a raw timely dataflow vertex ==")
    comp = Computation()
    words = comp.new_input("words")
    stage = comp.add_stage("distinct-count", DistinctCount, num_inputs=1, num_outputs=2)
    comp.connect(words.stage, stage)
    Stream(comp, stage, 0).subscribe(
        lambda t, records: print("  epoch %d distinct (eager): %s" % (t.epoch, records))
    )
    Stream(comp, stage, 1).subscribe(
        lambda t, records: print("  epoch %d counts (on notify): %s" % (t.epoch, records))
    )
    comp.build()
    words.on_next(["a", "b", "a", "a"])
    words.on_completed()
    comp.run()
    assert comp.drained()


if __name__ == "__main__":
    high_level()
    low_level()
