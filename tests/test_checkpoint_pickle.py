"""Every operator's checkpoint state must survive a pickle round-trip.

The multiprocessing backend ships vertex state between the coordinator
and pool children with :meth:`Vertex.checkpoint` / :meth:`Vertex.restore`
and ``pickle`` — on rebalances, kills and checkpoint barriers.  These
tests build dataflows covering every stateful operator family in
``repro.lib`` and ``repro.algorithms``, pause them mid-flight (when
buffers, counts and join state are populated), and assert that each
vertex's checkpoint pickles, unpickles structurally unchanged, and
restores into an equivalent checkpoint.
"""

import pickle

import numpy as np
import pytest

from repro.algorithms.connectivity import weakly_connected_components
from repro.algorithms.hashtag_components import hashtag_component_app
from repro.lib import (
    Collection,
    Stream,
    allreduce,
    async_distinct,
    async_join,
    final_states,
    monotonic_aggregate,
    pregel,
    tree_allreduce,
)
from repro.runtime import ClusterComputation
from repro.workloads import Tweet


def structurally_equal(a, b):
    """Deep equality that tolerates types without ``__eq__`` (compares
    their attribute dicts instead, e.g. pregel's node records)."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(
            structurally_equal(v, b[k]) for k, v in a.items()
        )
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            structurally_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, (set, frozenset)):
        return a == b
    if isinstance(a, np.ndarray):
        return a.shape == b.shape and bool(np.array_equal(a, b))
    if hasattr(a, "__dict__"):
        return structurally_equal(a.__dict__, b.__dict__)
    if hasattr(a, "__slots__"):
        return all(
            structurally_equal(getattr(a, s, None), getattr(b, s, None))
            for s in a.__slots__
        )
    return a == b


def make_cluster():
    # Inline backend: state stays on the coordinator copies, so the
    # mid-flight pause below observes populated operator state directly.
    return ClusterComputation(
        num_processes=2, workers_per_process=2, backend="inline"
    )


def operators_program(comp):
    """select / where / select_many / distinct / group_by / count_by /
    aggregate_by / join / union / top_k in one graph."""
    lines = comp.new_input("lines")
    pairs = comp.new_input("pairs")
    out = []
    words = Stream.from_input(lines).select_many(str.split)
    counted = words.where(lambda w: w != "stop").count_by(lambda w: w)
    keyed = Stream.from_input(pairs).select(lambda p: (p[0], p[1] * 2))
    counted.join(
        keyed,
        lambda rec: rec[0],
        lambda rec: rec[0],
        lambda lhs, rhs: (lhs[0], lhs[1], rhs[1]),
    ).subscribe(lambda t, recs: out.extend(recs))
    words.distinct().union(words.select(lambda w: w.upper())).top_k(
        3, score=lambda w: w
    ).subscribe(lambda t, recs: out.extend(recs))
    words.group_by(
        lambda w: w[0], lambda key, recs: [(key, len(recs))]
    ).aggregate_by(
        lambda rec: rec[0], lambda rec: rec[1], lambda a, b: a + b
    ).subscribe(lambda t, recs: out.extend(recs))

    def feed():
        lines.on_next(["a b a c stop", "d a b"])
        pairs.on_next([("a", 1), ("b", 2), ("zz", 9)])
        lines.on_next(["c c d e"])
        pairs.on_next([("e", 5)])
        lines.on_completed()
        pairs.on_completed()

    return feed


def wcc_program(comp):
    """Loop ingress/egress/feedback plus the min-label vertex."""
    edges = comp.new_input("edges")
    out = []
    weakly_connected_components(Stream.from_input(edges)).subscribe(
        lambda t, recs: out.extend(recs)
    )

    def feed():
        edges.on_next([(1, 2), (2, 3), (4, 5)])
        edges.on_next([(3, 4), (6, 7)])
        edges.on_completed()

    return feed


def incremental_program(comp):
    """Incremental distinct / count / reduce / join / windowed CC."""
    left = comp.new_input("left")
    right = comp.new_input("right")
    out = []
    lhs = Collection.from_records(Stream.from_input(left))
    rhs = Collection.from_records(Stream.from_input(right))
    lhs.map(lambda x: x % 7).distinct().count_by(
        lambda x: x % 2
    ).stream.subscribe(lambda t, recs: out.extend(recs))
    lhs.map(lambda x: (x % 3, x)).join(
        rhs.map(lambda x: (x % 3, x * 10)),
        left_key=lambda rec: rec[0],
        right_key=lambda rec: rec[0],
    ).stream.subscribe(lambda t, recs: out.extend(recs))
    lhs.map(lambda x: (x % 5, x % 4)).connected_components(
        allow_deletions=True
    ).stream.subscribe(lambda t, recs: out.extend(recs))
    rhs.reduce_by(
        lambda x: x % 2, lambda key, values: [(key, sum(values))]
    ).stream.subscribe(lambda t, recs: out.extend(recs))

    def feed():
        left.on_next(list(range(10)))
        right.on_next([2, 4, 6])
        left.on_next([3, 13, 23])
        right.on_next([5])
        left.on_completed()
        right.on_completed()

    return feed


def bloom_program(comp):
    """Bloom-style coordination-free operators."""
    left = comp.new_input("left")
    right = comp.new_input("right")
    out = []
    lhs = Stream.from_input(left)
    rhs = Stream.from_input(right)
    async_distinct(lhs).subscribe(lambda t, recs: out.extend(recs))
    async_join(
        lhs.select(lambda x: (x % 3, x)),
        rhs.select(lambda x: (x % 3, x)),
        left_key=lambda rec: rec[0],
        right_key=lambda rec: rec[0],
        result=lambda a, b: (a[1], b[1]),
    ).subscribe(lambda t, recs: out.extend(recs))
    monotonic_aggregate(
        lhs,
        key=lambda x: x % 2,
        value=lambda x: x,
        better=lambda new, old: new > old,
    ).subscribe(lambda t, recs: out.extend(recs))

    def feed():
        left.on_next([1, 2, 3, 4, 2, 1])
        right.on_next([6, 7])
        left.on_next([9, 9])
        left.on_completed()
        right.on_completed()

    return feed


def allreduce_program(comp):
    """Both AllReduce implementations over numpy vectors."""
    inp = comp.new_input("grads")
    out = []
    contributions = Stream.from_input(inp)
    allreduce(contributions).subscribe(lambda t, recs: out.extend(recs))
    tree_allreduce(contributions).subscribe(lambda t, recs: out.extend(recs))

    def feed():
        workers = comp.num_processes * comp.workers_per_process
        inp.on_next([(w, np.full(8, float(w))) for w in range(workers)])
        inp.on_next([(w, np.ones(8)) for w in range(workers)])
        inp.on_completed()

    return feed


def pregel_program(comp):
    """Pregel vertex + combiner + global aggregator."""
    inp = comp.new_input("graph")
    labels = {}

    def cc_compute(ctx):
        best = min(ctx.messages) if ctx.messages else ctx.state
        if ctx.superstep == 0 or best < ctx.state:
            if best < ctx.state:
                ctx.contribute(1)
            ctx.set_state(min(best, ctx.state))
            ctx.send_to_neighbors(ctx.state)
        ctx.vote_to_halt()

    states = pregel(
        Stream.from_input(inp),
        cc_compute,
        max_supersteps=20,
        combine=min,
        aggregator=lambda a, b: a + b,
    )
    final_states(states).subscribe(
        lambda t, records: labels.update(dict(records))
    )

    def feed():
        inp.on_next([(1, 1, [2]), (2, 2, [1, 3]), (3, 3, [2]), (9, 9, [])])
        inp.on_completed()

    return feed


def hashtag_program(comp):
    """The Figure 1 application (union-find, joins, query vertex)."""
    tweets = comp.new_input("tweets")
    queries = comp.new_input("queries")
    responses = []
    hashtag_component_app(
        Stream.from_input(tweets),
        Stream.from_input(queries),
        lambda t, recs: responses.extend(recs),
        fresh=True,
    )

    def feed():
        tweets.on_next(
            [Tweet(1, (2,), ("x",)), Tweet(3, (4,), ("y", "x"))]
        )
        queries.on_next([(1, "q0")])
        tweets.on_next([Tweet(2, (3,), ("z",))])
        queries.on_next([(4, "q1")])
        tweets.on_completed()
        queries.on_completed()

    return feed


PROGRAMS = {
    "operators": operators_program,
    "wcc": wcc_program,
    "incremental": incremental_program,
    "bloom": bloom_program,
    "allreduce": allreduce_program,
    "pregel": pregel_program,
    "hashtag": hashtag_program,
}


def checkpoint_all(comp):
    return {
        (stage.name, index): vertex.checkpoint()
        for (stage, index), vertex in comp.vertices.items()
    }


@pytest.mark.parametrize("name", sorted(PROGRAMS))
class TestCheckpointPickle:
    def run_paused(self, name):
        comp = make_cluster()
        feed = PROGRAMS[name](comp)
        comp.build()
        feed()
        # Pause mid-flight so buffers, counts and join state are live.
        comp.run(max_steps=40)
        return comp

    def test_states_round_trip_through_pickle(self, name):
        comp = self.run_paused(name)
        states = checkpoint_all(comp)
        assert states
        reloaded = pickle.loads(pickle.dumps(states))
        for key, state in states.items():
            assert structurally_equal(state, reloaded[key]), key
        comp.run()
        assert comp.drained(), comp.debug_state()

    def test_restore_reproduces_the_checkpoint(self, name):
        comp = self.run_paused(name)
        for (stage, index), vertex in comp.vertices.items():
            state = vertex.checkpoint()
            vertex.restore(pickle.loads(pickle.dumps(state)))
            assert structurally_equal(vertex.checkpoint(), state), (
                stage.name,
                index,
            )
        # The restore must be a semantic no-op: the run still completes.
        comp.run()
        assert comp.drained(), comp.debug_state()
