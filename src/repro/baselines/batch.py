"""Batch-dataflow baselines for Table 1 (DryadLINQ, PDW, SHS).

Najork et al. [34] compare a distributed database (PDW), a
general-purpose batch processor (DryadLINQ) and a disk-based graph
store (SHS) on PageRank/SCC/WCC/ASP.  The structural property Table 1
isolates is that these systems have **no cross-iteration in-memory
state**: every iteration is a fresh job that reloads, recomputes over
the *entire* graph (dense iterations — no sparse/asynchronous
convergence), reshuffles, and rewrites its state.

:class:`BatchIterativeEngine` really executes the algorithms (the
results are checked against the same oracles as the Naiad versions) in
that dense bulk-synchronous style and charges a virtual-time cost per
iteration:

    t_iter = job_overhead                        (scheduling, task launch)
           + state r/w:   2 * state_bytes / (disk_bw * machines)
           + shuffle:     shuffle_bytes / (net_bw * machines)
           + compute:     touched_records * per_record / machines

PDW and SHS are expressed as calibrated variants: PDW pays relational
per-record overheads (query compilation, join machinery), SHS pays
per-edge random-access storage reads.  Constants are chosen so
single-system behaviour matches the published ratios' order of
magnitude; the reproduction claim is the *shape* (Naiad's in-memory,
sparse iterations win by 1-3 orders of magnitude), not absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

Edge = Tuple[Any, Any]


@dataclass
class BatchCosts:
    """Virtual-time constants for one engine personality."""

    #: Per-iteration job scheduling/launch overhead, seconds.
    job_overhead: float = 4.0
    #: Aggregate disk bandwidth per machine, bytes/s.
    disk_bandwidth: float = 100e6
    #: Aggregate network bandwidth per machine, bytes/s.
    network_bandwidth: float = 125e6
    #: CPU cost per record touched, seconds.
    per_record: float = 2e-7
    #: Serialized bytes per record of state.
    record_bytes: int = 16


DRYADLINQ = BatchCosts()
#: PDW: relational execution — query startup and per-record overheads.
PDW = BatchCosts(job_overhead=8.0, per_record=6e-7, record_bytes=32)
#: SHS: disk-resident graph store — every edge access hits storage.
SHS = BatchCosts(
    job_overhead=2.0, disk_bandwidth=30e6, per_record=1e-6, record_bytes=24
)


class BatchIterativeEngine:
    """A miniature DryadLINQ-style iterative batch processor."""

    def __init__(self, num_machines: int = 16, costs: BatchCosts = DRYADLINQ):
        self.num_machines = num_machines
        self.costs = costs
        self.elapsed = 0.0
        self.iterations_run = 0

    # ------------------------------------------------------------------
    # Cost accounting.
    # ------------------------------------------------------------------

    def estimate_time(
        self, touched_records: int, state_records: int, iterations: int
    ) -> float:
        """Analytic per-iteration cost at arbitrary (paper) scale.

        The executable engine runs scaled-down inputs; Table 1 also
        reports extrapolations at the ClueWeb Category A scale, where
        the per-record and storage terms (not job overhead) dominate
        and the engine personalities separate as in Najork et al.
        """
        costs, machines = self.costs, self.num_machines
        state_bytes = state_records * costs.record_bytes
        shuffle_bytes = touched_records * costs.record_bytes
        per_iteration = (
            costs.job_overhead
            + 2.0 * state_bytes / (costs.disk_bandwidth * machines)
            + shuffle_bytes / (costs.network_bandwidth * machines)
            + touched_records * costs.per_record / machines
        )
        return per_iteration * iterations

    def _charge_iteration(self, touched_records: int, state_records: int) -> None:
        costs, machines = self.costs, self.num_machines
        state_bytes = state_records * costs.record_bytes
        shuffle_bytes = touched_records * costs.record_bytes
        self.elapsed += (
            costs.job_overhead
            + 2.0 * state_bytes / (costs.disk_bandwidth * machines)
            + shuffle_bytes / (costs.network_bandwidth * machines)
            + touched_records * costs.per_record / machines
        )
        self.iterations_run += 1

    # ------------------------------------------------------------------
    # The four Table 1 algorithms, dense bulk-synchronous style.
    # ------------------------------------------------------------------

    def pagerank(
        self, edges: Sequence[Edge], iterations: int = 10
    ) -> Dict[Any, float]:
        out_edges: Dict[Any, List[Any]] = {}
        for src, dst in edges:
            out_edges.setdefault(src, []).append(dst)
            out_edges.setdefault(dst, [])
        ranks = {node: 1.0 for node in out_edges}
        for _ in range(1, iterations):
            acc = {node: 0.0 for node in out_edges}
            for node, targets in out_edges.items():
                if targets:
                    share = ranks[node] / len(targets)
                    for dst in targets:
                        acc[dst] += share
            ranks = {node: 0.15 + 0.85 * acc[node] for node in out_edges}
            self._charge_iteration(
                touched_records=len(edges) + len(out_edges),
                state_records=len(out_edges),
            )
        return ranks

    def wcc(self, edges: Sequence[Edge]) -> Dict[Any, Any]:
        adjacency: Dict[Any, List[Any]] = {}
        for u, v in edges:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        labels = {node: node for node in adjacency}
        changed = True
        while changed:
            changed = False
            updates = {}
            # Dense: every node re-examines every neighbour each round.
            for node, neighbours in adjacency.items():
                best = min(
                    [labels[node]] + [labels[nbr] for nbr in neighbours]
                )
                if best < labels[node]:
                    updates[node] = best
            for node, label in updates.items():
                labels[node] = label
                changed = True
            self._charge_iteration(
                touched_records=2 * len(edges) + len(adjacency),
                state_records=len(adjacency),
            )
        return labels

    def asp(
        self, edges: Sequence[Edge], landmarks: Sequence[Any]
    ) -> Dict[Tuple[Any, Any], int]:
        adjacency: Dict[Any, List[Any]] = {}
        for u, v in edges:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        distances: Dict[Tuple[Any, Any], int] = {}
        frontier: Dict[Any, List[Any]] = {}
        for landmark in landmarks:
            distances[(landmark, landmark)] = 0
            frontier.setdefault(landmark, []).append(landmark)
        depth = 0
        while frontier:
            depth += 1
            next_frontier: Dict[Any, List[Any]] = {}
            for node, lms in frontier.items():
                for neighbour in adjacency.get(node, ()):
                    for landmark in lms:
                        if (neighbour, landmark) not in distances:
                            distances[(neighbour, landmark)] = depth
                            next_frontier.setdefault(neighbour, []).append(landmark)
            frontier = next_frontier
            # Dense batch BFS: the whole distance relation is re-joined
            # with the edge relation every round.
            self._charge_iteration(
                touched_records=2 * len(edges) * len(landmarks),
                state_records=len(distances),
            )
        return distances

    def scc(self, edges: Sequence[Edge]) -> Dict[Any, Any]:
        nodes = set()
        for u, v in edges:
            nodes.add(u)
            nodes.add(v)
        remaining_edges = list(edges)
        remaining_nodes = set(nodes)
        assignment: Dict[Any, Any] = {}
        while remaining_nodes:
            colors = self._dense_minlabel(
                remaining_nodes, remaining_edges, forward=True
            )
            same_color = [
                (u, v) for u, v in remaining_edges if colors[u] == colors[v]
            ]
            marks = self._dense_minlabel(
                remaining_nodes, same_color, forward=False
            )
            done = {
                node
                for node in remaining_nodes
                if marks[node] == colors[node]
            }
            for node in done:
                assignment[node] = colors[node]
            remaining_nodes -= done
            remaining_edges = [
                (u, v)
                for u, v in remaining_edges
                if u in remaining_nodes and v in remaining_nodes
            ]
        return assignment

    def _dense_minlabel(
        self, nodes: Iterable[Any], edges: Sequence[Edge], forward: bool
    ) -> Dict[Any, Any]:
        adjacency: Dict[Any, List[Any]] = {}
        for u, v in edges:
            if forward:
                adjacency.setdefault(u, []).append(v)
            else:
                adjacency.setdefault(v, []).append(u)
        labels = {node: node for node in nodes}
        changed = True
        node_count = len(labels)
        while changed:
            changed = False
            for node, targets in adjacency.items():
                label = labels[node]
                for target in targets:
                    if label < labels[target]:
                        labels[target] = label
                        changed = True
            self._charge_iteration(
                touched_records=len(edges) + node_count,
                state_records=node_count,
            )
        return labels
