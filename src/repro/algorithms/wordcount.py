"""WordCount — the embarrassingly parallel scaling workload (§5.4).

Two variants: the straightforward MapReduce pipeline, and the
combiner variant the paper's Figure 6e discussion relies on ("the
amount of data exchanged in WordCount is far smaller than in WCC
because of the greater effectiveness of combiners before the data
exchange"): words are pre-aggregated on the worker that parsed them, so
only one ``(word, partial_count)`` per distinct word crosses the
network per epoch.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..lib.stream import Stream


def wordcount(lines: Stream, name: str = "wordcount") -> Stream:
    """``(word, count)`` per epoch; counts exchanged per occurrence."""
    return lines.select_many(str.split, name="%s.split" % name).count_by(
        lambda word: word, name="%s.count" % name
    )


def _local_counts(records: List[Any]) -> List[Any]:
    counts: Dict[Any, int] = {}
    for word in records:
        counts[word] = counts.get(word, 0) + 1
    return list(counts.items())


def wordcount_with_combiner(lines: Stream, name: str = "wordcount") -> Stream:
    """``(word, count)`` with worker-local combining before the exchange."""
    partials = lines.select_many(str.split, name="%s.split" % name).buffered(
        _local_counts, partitioner=None, name="%s.combine" % name
    )
    return partials.aggregate_by(
        lambda rec: rec[0],
        lambda rec: rec[1],
        lambda a, b: a + b,
        name="%s.reduce" % name,
    )
