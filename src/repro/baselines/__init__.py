"""Comparison systems from the paper's evaluation (section 6).

Each baseline really executes its algorithm (results are verified
against the same oracles as the Naiad implementations) while charging
virtual time from a documented cost model.  See DESIGN.md's
substitution table.
"""

from .batch import DRYADLINQ, PDW, SHS, BatchCosts, BatchIterativeEngine
from .kineograph import KineographCosts, KineographEngine
from .powergraph import GasCosts, PowerGraphEngine
from .vw_allreduce import (
    VwCosts,
    naiad_iteration_time,
    speedup_curve,
    vw_iteration_time,
)

__all__ = [
    "BatchCosts",
    "BatchIterativeEngine",
    "DRYADLINQ",
    "GasCosts",
    "KineographCosts",
    "KineographEngine",
    "PDW",
    "PowerGraphEngine",
    "SHS",
    "VwCosts",
    "naiad_iteration_time",
    "speedup_curve",
    "vw_iteration_time",
]
