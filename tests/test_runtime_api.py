"""Conformance tests for the unified :class:`repro.core.TimelyRuntime` API.

Every test here is parametrized over both runtimes — the single-threaded
reference scheduler and the simulated distributed cluster — and exercises
only the shared control surface: ``run``/``step``/``drained``/``frontier``,
``checkpoint``/``restore``, ``attach_trace_sink`` and ``debug_state``.
"""

import pytest

from repro.core import Computation, RuntimeDebugState, TimelyRuntime
from repro.lib import Stream
from repro.obs import TraceSink
from repro.runtime import ClusterComputation

RUNTIMES = [
    pytest.param(lambda: Computation(), id="reference"),
    pytest.param(
        lambda: ClusterComputation(num_processes=2, workers_per_process=2),
        id="cluster",
    ),
]


def build_wordcount(comp):
    inp = comp.new_input()
    out = []
    (
        Stream.from_input(inp)
        .select_many(str.split)
        .count_by(lambda w: w)
        .subscribe(lambda t, recs: out.extend(recs))
    )
    comp.build()
    return inp, out


@pytest.mark.parametrize("make", RUNTIMES)
class TestTimelyRuntimeConformance:
    def test_is_a_timely_runtime(self, make):
        assert isinstance(make(), TimelyRuntime)

    def test_run_drains_and_produces_output(self, make):
        comp = make()
        inp, out = build_wordcount(comp)
        inp.on_next(["a b a", "b c"])
        inp.on_completed()
        comp.run()
        assert comp.drained()
        assert sorted(out) == [("a", 2), ("b", 2), ("c", 1)]

    def test_run_accepts_both_unified_keywords(self, make):
        comp = make()
        inp, _ = build_wordcount(comp)
        inp.on_next(["a b"])
        # max_steps bounds delivered events on both runtimes; until is a
        # virtual-time bound (a documented no-op without a virtual clock).
        comp.run(max_steps=1)
        assert not comp.drained()
        inp.on_completed()
        comp.run(until=None)
        comp.run()
        assert comp.drained()

    def test_run_max_events_is_deprecated_but_works(self, make):
        # ``max_events`` is the historical spelling of ``max_steps``;
        # both runtimes must accept it with a DeprecationWarning and
        # bound progress identically.
        comp = make()
        inp, _ = build_wordcount(comp)
        inp.on_next(["a b"])
        with pytest.warns(DeprecationWarning, match="max_events"):
            comp.run(max_events=1)
        assert not comp.drained()
        inp.on_completed()
        comp.run()
        assert comp.drained()

    def test_step_makes_progress_and_reports_exhaustion(self, make):
        comp = make()
        inp, _ = build_wordcount(comp)
        inp.on_next(["a"])
        inp.on_completed()
        stepped = 0
        while comp.step():
            stepped += 1
            assert stepped < 100_000
        assert stepped > 0
        assert comp.drained()

    def test_frontier_active_then_empty(self, make):
        comp = make()
        inp, _ = build_wordcount(comp)
        inp.on_next(["a b"])
        assert comp.frontier(), "open input must keep the frontier nonempty"
        inp.on_completed()
        comp.run()
        assert comp.frontier() == []

    def test_checkpoint_restore_round_trip(self, make):
        comp = make()
        inp, out = build_wordcount(comp)
        inp.on_next(["a b a"])
        inp.on_completed()
        comp.run()
        assert comp.drained()
        snapshot = comp.checkpoint()
        for key in ("vertices", "occurrence", "pending", "epochs"):
            assert key in snapshot
        before = sorted(out)
        comp.restore(snapshot)
        comp.run()
        assert comp.drained()
        assert sorted(out) == before  # nothing replays, nothing duplicates

    def test_attach_trace_sink_records_activity(self, make):
        comp = make()
        sink = TraceSink()
        comp.attach_trace_sink(sink)
        inp, _ = build_wordcount(comp)
        inp.on_next(["a b a", "c"])
        inp.on_completed()
        comp.run()
        assert comp.drained()
        kinds = {event.kind for event in sink}
        assert "input" in kinds
        assert "activation" in kinds or "notification" in kinds
        assert "frontier" in kinds
        # Detaching stops emission.
        comp.attach_trace_sink(None)
        recorded = len(sink)
        comp.run()
        assert len(sink) == recorded

    def test_debug_state_is_structured_and_str_compatible(self, make):
        comp = make()
        inp, _ = build_wordcount(comp)
        inp.on_next(["a b"])
        state = comp.debug_state()
        assert isinstance(state, RuntimeDebugState)
        assert state.runtime == type(comp).__name__
        assert state.frontier, "open input must appear in the frontier"
        assert str(state) == state.text
        # The historical string behaviours still work on the dataclass.
        assert state.text.split()  # renders to something non-empty
        inp.on_completed()
        comp.run()
        done = comp.debug_state()
        assert done.queued_messages == 0
        assert done.pending_notifications == 0
        assert done.frontier == ()

    def test_deliveries_counted(self, make):
        comp = make()
        inp, _ = build_wordcount(comp)
        inp.on_next(["a b c"])
        inp.on_completed()
        comp.run()
        state = comp.debug_state()
        assert state.delivered_messages > 0
        assert state.delivered_notifications > 0
