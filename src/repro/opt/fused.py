"""The fused super-vertex produced by the operator-fusion pass.

A :class:`FusedVertex` owns a pipeline of constituent vertices (built
from the original stages' factories) and runs the whole chain
synchronously inside one callback: a constituent's ``send_by`` becomes a
direct ``on_recv`` on the next constituent, and only the tail's output
leaves the fused stage.  One DES event therefore carries the Python work
of the entire chain — the point of fusion: per-event overhead (dispatch,
progress updates, queue traffic) is paid once instead of once per
operator, which fattens callback bodies and raises the fraction of work
the multiprocessing backend can offload.

Notifications are deduplicated at the fused boundary: however many
constituents request a notification at timestamp ``t``, the fused vertex
holds a single outer pointstamp and, when it is granted, dispatches the
constituents' ``on_notify(t)`` in chain order — upstream first, so a
buffering constituent's emission at ``t`` reaches its downstream
neighbours before their own completions run, exactly the order the
unfused plan guarantees via the frontier.

Fault tolerance composes: ``checkpoint()`` snapshots every constituent
(each applying its own ``_CONFIG_ATTRS`` exclusions, so the composite
state round-trips through pickle) plus the pending-notification table,
and ``restore()`` rolls each constituent back — the section 3.4 recovery
machinery and the pool's per-(stage, worker) pinning work unchanged.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Set, Tuple

from ..columnar import ColumnarBatch
from ..core.timestamp import Timestamp
from ..core.vertex import Vertex


def _deliver(target: Vertex, records: Any, timestamp: Timestamp) -> None:
    """Dispatch a payload to a constituent, columnar fast path included."""
    if type(records) is ColumnarBatch:
        target.on_recv_batch(0, records, timestamp)
    else:
        target.on_recv(0, records, timestamp)


class _ChainHarness:
    """The private harness constituents run under inside a fused vertex.

    Routes a constituent's ``send`` to the next constituent's
    ``on_recv`` (synchronously, same timestamp) and the tail's ``send``
    out through the fused vertex.  Notification requests are folded into
    the fused vertex's pending table.  ``total_workers`` delegates to
    the fused vertex's *current* harness, so constituents see the right
    peer count in every execution context (reference runtime, DES
    worker, forked pool child) without rebinding.
    """

    __slots__ = ("fused", "_position", "_next")

    def __init__(self, fused: "FusedVertex", parts: List[Vertex]):
        self.fused = fused
        self._position: Dict[int, int] = {}
        self._next: Dict[int, Vertex] = {}
        for position, part in enumerate(parts):
            self._position[id(part)] = position
            self._next[id(part)] = (
                parts[position + 1] if position + 1 < len(parts) else None
            )

    @property
    def total_workers(self) -> int:
        return self.fused._harness.total_workers

    def send(
        self, vertex: Vertex, output_port: int, records: List[Any], timestamp: Timestamp
    ) -> None:
        if output_port != 0:
            raise ValueError(
                "fused constituents are single-output (got port %d)" % output_port
            )
        target = self._next[id(vertex)]
        if target is None:
            self.fused.send_by(0, records, timestamp)
        else:
            _deliver(target, records, timestamp)

    def request_notification(
        self, vertex: Vertex, timestamp: Timestamp, capability: bool = True
    ) -> None:
        self.fused._request(self._position[id(vertex)], timestamp)


class FusedVertex(Vertex):
    """A pipeline of unary vertices executing as one physical vertex.

    Constituents must be 1-in/1-out operators that request at most one
    notification per timestamp and send only at the time of the running
    callback — the properties the fusion pass checks via ``OpSpec``
    before building this vertex.
    """

    # The constituent list and chain harness contain user closures and
    # back-references; per-constituent state is captured explicitly by
    # the composite checkpoint below.
    _CONFIG_ATTRS = ("names", "parts", "_chain")

    def __init__(self, parts: List[Vertex], names: Tuple[str, ...]):
        super().__init__()
        if not parts:
            raise ValueError("a fused vertex needs at least one constituent")
        self.parts = list(parts)
        self.names = tuple(names)
        self.notifies = any(
            getattr(part, "notifies", True) for part in self.parts
        )
        self._chain = _ChainHarness(self, self.parts)
        for part in self.parts:
            part._harness = self._chain
        #: Timestamp -> constituent positions awaiting on_notify there.
        #: An entry's existence means one outer notification is held.
        self._pending: Dict[Timestamp, Set[int]] = {}

    # ------------------------------------------------------------------
    # Callbacks.
    # ------------------------------------------------------------------

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        self.parts[0].on_recv(0, records, timestamp)

    def on_recv_batch(self, input_port: int, batch: Any, timestamp: Timestamp) -> None:
        # The head constituent decides whether it has a column kernel;
        # its default shim materializes, so semantics are unchanged.
        self.parts[0].on_recv_batch(0, batch, timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        positions = self._pending.pop(timestamp, None)
        if positions is None:
            return
        parts = self.parts
        # Chain order: an upstream constituent's completion may emit at
        # ``timestamp`` into its downstream neighbours, which must
        # observe those records before their own on_notify runs.
        for position in sorted(positions):
            parts[position].on_notify(timestamp)

    def _request(self, position: int, timestamp: Timestamp) -> None:
        waiting = self._pending.get(timestamp)
        if waiting is None:
            self._pending[timestamp] = {position}
            # One outer pointstamp covers every constituent request at
            # this time; re-requests during on_notify dispatch (a
            # downstream constituent first touched by an upstream
            # completion) create a fresh entry and a second grant.
            self.notify_at(timestamp)
        else:
            waiting.add(position)

    # ------------------------------------------------------------------
    # Fault tolerance: composite snapshot.
    # ------------------------------------------------------------------

    def checkpoint(self) -> Any:
        return {
            "parts": [part.checkpoint() for part in self.parts],
            "pending": {
                timestamp: sorted(positions)
                for timestamp, positions in self._pending.items()
            },
        }

    def restore(self, state: Any) -> None:
        for part, snapshot in zip(self.parts, state["parts"]):
            part.restore(snapshot)
        self._pending = {
            timestamp: set(positions)
            for timestamp, positions in copy.deepcopy(state["pending"]).items()
        }

    def __repr__(self) -> str:
        base = super().__repr__()
        return "%s<%s>" % (base, "+".join(self.names))
