"""Timely dataflow core: timestamps, graphs, progress tracking, scheduler.

This package implements the computational model of sections 2 and 4.3 of
the paper: :class:`Timestamp` and :class:`Pointstamp`, path summaries and
the could-result-in relation, the structured dataflow graph with loop
contexts, the vertex programming model, and a single-threaded scheduler
(:class:`Computation`) that delivers notifications exactly when they are
in the frontier of active pointstamps.
"""

from .computation import Computation, InputHandle, TimestampViolation
from .dot import to_dot
from .runtime_api import RuntimeDebugState, TimelyRuntime
from .graph import (
    Connector,
    CrossScopeConnectError,
    DataflowGraph,
    FeedbackNotConnectedError,
    GraphValidationError,
    LoopContext,
    Stage,
    StageKind,
    UnclosedScopeError,
)
from .pathsummary import Antichain, PathSummary, minimal_summaries
from .pointstamp import could_result_in
from .progress import Pointstamp, ProgressState
from .timestamp import Timestamp, ZERO
from .vertex import ForwardingVertex, Vertex

__all__ = [
    "Antichain",
    "Computation",
    "Connector",
    "CrossScopeConnectError",
    "DataflowGraph",
    "FeedbackNotConnectedError",
    "ForwardingVertex",
    "GraphValidationError",
    "UnclosedScopeError",
    "InputHandle",
    "LoopContext",
    "PathSummary",
    "Pointstamp",
    "ProgressState",
    "RuntimeDebugState",
    "Stage",
    "StageKind",
    "TimelyRuntime",
    "Timestamp",
    "TimestampViolation",
    "Vertex",
    "ZERO",
    "could_result_in",
    "minimal_summaries",
    "to_dot",
]
