"""Figure 6a: all-to-all exchange throughput versus cluster size.

The paper's microbenchmark: a cyclic dataflow repeatedly exchanges a
fixed number of 8-byte records between all computers.  Three lines:
"Ideal" (aggregate NIC bandwidth), ".NET Socket" (achievable with large
messages and no data-plane costs) and "Naiad" (per-record serialization
and partitioning overheads included).  The paper finds Naiad scales
linearly but below the socket line; the same shape must emerge here.

Synthetic record batches let the experiment move the paper's full 50M
records per computer through the real routing/progress code paths.
"""

from repro.core import Timestamp, Vertex
from repro.lib import Stream
from repro.runtime import ClusterComputation, CostModel, SyntheticRecords

from bench_harness import format_table, report

RECORDS_PER_COMPUTER = 50_000_000
RECORD_BYTES = 8
ITERATIONS = 3
COMPUTERS = [2, 4, 8, 16, 32, 64]


class AllToAllVertex(Vertex):
    """Sends one synthetic batch to every worker, each iteration."""

    def __init__(self):
        super().__init__()
        self.sent = set()

    def on_recv(self, port, records, timestamp: Timestamp) -> None:
        if timestamp in self.sent:
            return
        self.sent.add(timestamp)
        per_dest = RECORDS_PER_COMPUTER // self.peers
        batch = [
            SyntheticRecords(per_dest, RECORD_BYTES, dest=dest)
            for dest in range(self.peers)
        ]
        self.send_by(0, batch, timestamp)


def run_exchange(num_computers: int, cost_model: CostModel) -> float:
    """Returns aggregate application throughput in bytes/second."""
    comp = ClusterComputation(
        num_processes=num_computers,
        workers_per_process=1,
        cost_model=cost_model,
        progress_mode="local+global",
    )
    inp = comp.new_input()
    with comp.scope("exchange", max_iterations=ITERATIONS) as loop:
        stage = loop.stage("exchange", lambda s, w: AllToAllVertex(), 2, 1)
        loop.enter(Stream.from_input(inp)).connect_to(stage, 0)
        loop.feed(Stream(comp, stage, 0))
        loop.feedback.connect_to(stage, 1, partitioner=lambda b: b.dest)
    comp.build()
    inp.on_next(list(range(num_computers)))  # one token per worker
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    payload = comp.network.stats.bytes("data")
    return payload / comp.now


def test_fig6a_throughput(benchmark):
    # Exchange-calibrated costs: the vertex does nothing per record, so
    # the per-record charge models only partitioning + serialization of
    # an 8-byte record (the paper: "near worst-case overheads for
    # serialization and evaluating the partitioning function").
    naiad_costs = CostModel(
        per_record_cost=20e-9, serialize_per_byte=4e-9, deserialize_per_byte=4e-9
    )
    # "Socket level": big buffers, no per-record data-plane costs.
    socket_costs = CostModel(
        per_record_cost=0.0, serialize_per_byte=0.0, deserialize_per_byte=0.0
    )

    def experiment():
        rows = []
        for computers in COMPUTERS:
            ideal = computers * 125e6
            socket = run_exchange(computers, socket_costs)
            naiad = run_exchange(computers, naiad_costs)
            rows.append((computers, ideal, socket, naiad))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["computers", "ideal Gb/s", "socket Gb/s", "naiad Gb/s"],
        [
            (c, "%.1f" % (i * 8e-9), "%.1f" % (s * 8e-9), "%.1f" % (n * 8e-9))
            for c, i, s, n in rows
        ],
    )
    report("fig6a_throughput", table)

    by_computers = {c: (i, s, n) for c, i, s, n in rows}
    # Ordering: naiad < socket <= ideal at every size.
    for computers, (ideal, socket, naiad) in by_computers.items():
        assert naiad < socket <= ideal * 1.001
    # Naiad throughput scales roughly linearly (per-computer throughput
    # at the largest size within 2x of the smallest size's).
    smallest, largest = COMPUTERS[0], COMPUTERS[-1]
    per_node_small = by_computers[smallest][2] / smallest
    per_node_large = by_computers[largest][2] / largest
    assert per_node_large > per_node_small / 2
