"""Integration tests for the simulated distributed runtime.

The two load-bearing invariants (DESIGN.md items 4 and 5):

- **Runtime equivalence**: any program produces the same per-epoch
  multiset of outputs on the reference runtime and on the cluster, for
  any process/worker count and protocol mode.
- **Notification safety, distributed**: per (stage, worker) vertex, no
  on_recv at t' <= t ever follows on_notify(t), even with packet loss,
  GC pauses and accumulators delaying progress updates arbitrarily.
"""

from collections import Counter

import pytest

from repro import Computation, Vertex
from repro.lib import Stream
from repro.runtime import ClusterComputation, FaultTolerance, SyntheticRecords
from repro.sim import NetworkConfig

MODES = ["none", "local", "global", "local+global"]


def wordcount_program(comp):
    inp = comp.new_input("lines")
    out = []
    (
        Stream.from_input(inp)
        .select_many(str.split)
        .count_by(lambda w: w)
        .subscribe(lambda t, recs: out.extend((t.epoch, r) for r in recs))
    )
    return inp, out


WORDCOUNT_EPOCHS = [
    ["a b a c", "d d"],
    ["b b b"],
    [],
    ["a c d e f g"],
]


def iterate_program(comp):
    inp = comp.new_input()
    out = []
    (
        Stream.from_input(inp)
        .iterate(
            lambda s: s.select(lambda x: x - 1).where(lambda x: x > 0),
            partitioner=lambda x: x,
        )
        .subscribe(lambda t, recs: out.extend((t.epoch, r) for r in recs))
    )
    return inp, out


ITERATE_EPOCHS = [list(range(8)), [3, 3, 12]]


def run_reference(program, epochs):
    comp = Computation()
    inp, out = program(comp)
    comp.build()
    for epoch in epochs:
        inp.on_next(epoch)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return Counter(out)


def run_cluster(program, epochs, **kwargs):
    comp = ClusterComputation(**kwargs)
    inp, out = program(comp)
    comp.build()
    for epoch in epochs:
        inp.on_next(epoch)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return Counter(out), comp


class TestRuntimeEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    def test_wordcount_matches_reference(self, mode):
        expected = run_reference(wordcount_program, WORDCOUNT_EPOCHS)
        actual, _ = run_cluster(
            wordcount_program,
            WORDCOUNT_EPOCHS,
            num_processes=3,
            workers_per_process=2,
            progress_mode=mode,
        )
        assert actual == expected

    @pytest.mark.parametrize("mode", MODES)
    def test_iteration_matches_reference(self, mode):
        expected = run_reference(iterate_program, ITERATE_EPOCHS)
        actual, _ = run_cluster(
            iterate_program,
            ITERATE_EPOCHS,
            num_processes=2,
            workers_per_process=2,
            progress_mode=mode,
        )
        assert actual == expected

    @pytest.mark.parametrize("procs,workers", [(1, 1), (1, 4), (4, 1), (8, 2)])
    def test_any_cluster_shape(self, procs, workers):
        expected = run_reference(wordcount_program, WORDCOUNT_EPOCHS)
        actual, _ = run_cluster(
            wordcount_program,
            WORDCOUNT_EPOCHS,
            num_processes=procs,
            workers_per_process=workers,
        )
        assert actual == expected

    def test_equivalence_under_stragglers(self):
        expected = run_reference(iterate_program, ITERATE_EPOCHS)
        actual, _ = run_cluster(
            iterate_program,
            ITERATE_EPOCHS,
            num_processes=4,
            workers_per_process=2,
            network=NetworkConfig(
                packet_loss_probability=0.2,
                gc_interval=5e-4,
                gc_pause=1e-3,
                nagle_delay=0.0,
            ),
            seed=3,
        )
        assert actual == expected

    def test_equivalence_with_logging_and_checkpoints(self):
        expected = run_reference(wordcount_program, WORDCOUNT_EPOCHS)
        for mode in ["logging", "checkpoint"]:
            actual, _ = run_cluster(
                wordcount_program,
                WORDCOUNT_EPOCHS,
                num_processes=2,
                workers_per_process=2,
                fault_tolerance=FaultTolerance(mode=mode, checkpoint_every=2),
            )
            assert actual == expected


class RecordingVertex(Vertex):
    """Buffers per time and logs callback order for safety checking."""

    # The log list is shared with the test driver; run on the
    # coordinator so appends are visible under the mp backend.
    coordinator_only = True

    def __init__(self, log):
        super().__init__()
        self.log = log
        self.requested = set()

    def on_recv(self, port, records, t):
        self.log.append(("recv", self.stage.name, self.worker, t))
        if t not in self.requested:
            self.requested.add(t)
            self.notify_at(t)
        self.send_by(0, [r + 1 for r in records if r < 3], t)

    def on_notify(self, t):
        self.log.append(("notify", self.stage.name, self.worker, t))


def assert_distributed_notification_safety(log):
    notified = {}
    for kind, stage, worker, t in log:
        key = (stage, worker)
        if kind == "notify":
            notified.setdefault(key, []).append(t)
        else:
            for earlier in notified.get(key, ()):
                assert not (
                    t.depth == earlier.depth and t.less_equal(earlier)
                ), "on_recv(%r) after on_notify(%r) at %r" % (t, earlier, key)


class TestDistributedNotificationSafety:
    @pytest.mark.parametrize("mode", MODES)
    def test_chain_with_hostile_network(self, mode):
        comp = ClusterComputation(
            num_processes=3,
            workers_per_process=2,
            progress_mode=mode,
            network=NetworkConfig(
                packet_loss_probability=0.3,
                retransmit_timeout=5e-3,
                gc_interval=1e-3,
                gc_pause=2e-3,
            ),
            seed=11,
        )
        inp = comp.new_input()
        log = []
        s = Stream.from_input(inp)
        for i in range(3):
            stage = comp.graph.new_stage(
                "rec%d" % i,
                lambda stage, worker: RecordingVertex(log),
                1,
                1,
            )
            s.connect_to(stage, 0, partitioner=lambda r: r * 31 + 7)
            s = Stream(comp, stage, 0)
        comp.build()
        for epoch in range(4):
            inp.on_next(list(range(5)))
        inp.on_completed()
        comp.run()
        assert comp.drained(), comp.debug_state()
        assert_distributed_notification_safety(log)
        # Every (stage, worker) that received data was notified.
        recv_keys = {(s_, w) for k, s_, w, _ in log if k == "recv"}
        notify_keys = {(s_, w) for k, s_, w, _ in log if k == "notify"}
        assert recv_keys == notify_keys

    def test_loop_safety_under_loss(self):
        comp = ClusterComputation(
            num_processes=2,
            workers_per_process=2,
            progress_mode="local+global",
            network=NetworkConfig(packet_loss_probability=0.25, retransmit_timeout=2e-3),
            seed=5,
        )
        inp = comp.new_input()
        log = []

        def body(stream):
            stage = comp.graph.new_stage(
                "body-rec",
                lambda stage, worker: RecordingVertex(log),
                1,
                1,
                context=stream.context,
            )
            stream.connect_to(stage, 0, partitioner=lambda r: r)
            return Stream(comp, stage, 0).where(lambda x: x < 3)

        Stream.from_input(inp).iterate(body, partitioner=lambda x: x)
        comp.build()
        inp.on_next([0, 1, 2])
        inp.on_completed()
        comp.run()
        assert comp.drained(), comp.debug_state()
        assert_distributed_notification_safety(log)


class TestPartitioning:
    def test_keys_are_colocated(self):
        comp = ClusterComputation(num_processes=2, workers_per_process=2)
        inp = comp.new_input()
        owners = {}

        def reducer(key, values):
            return [(key, len(values))]

        seen_by_worker = []

        class Probe(RecordingVertex):
            def __init__(self):
                Vertex.__init__(self)
                self.seen = {}

            def on_recv(self, port, records, t):
                for key, _ in records:
                    seen_by_worker.append((key, self.worker))

        stream = Stream.from_input(inp).count_by(lambda r: r)
        stage = comp.graph.new_stage("probe", lambda s, w: Probe(), 1, 0)
        stream.connect_to(stage, 0)
        comp.build()
        inp.on_next([1, 2, 3, 4] * 5)
        inp.on_completed()
        comp.run()
        for key, worker in seen_by_worker:
            owners.setdefault(key, set()).add(worker)
        # count_by produced exactly one record per key (one owner each).
        assert all(len(ws) == 1 for ws in owners.values())

    def test_synthetic_records_routing(self):
        comp = ClusterComputation(num_processes=2, workers_per_process=2)
        inp = comp.new_input()
        received = []

        class Sink(Vertex):
            coordinator_only = True  # appends to the driver-side list

            def on_recv(self, port, records, t):
                for r in records:
                    received.append((r.dest, self.worker))

        stage = comp.graph.new_stage("sink", lambda s, w: Sink(), 1, 0)
        Stream.from_input(inp).connect_to(stage, 0, partitioner=lambda b: b.dest)
        comp.build()
        inp.on_next([SyntheticRecords(1000, dest=d) for d in range(4)])
        inp.on_completed()
        comp.run()
        assert sorted(received) == [(0, 0), (1, 1), (2, 2), (3, 3)]


class TestVirtualTime:
    def test_time_advances_with_work(self):
        _, comp = run_cluster(
            wordcount_program,
            WORDCOUNT_EPOCHS,
            num_processes=2,
            workers_per_process=2,
        )
        assert comp.now > 0

    def test_more_data_takes_longer(self):
        small = [["a b"] * 2]
        large = [["a b"] * 500]
        _, comp_small = run_cluster(
            wordcount_program, small, num_processes=2, workers_per_process=2
        )
        _, comp_large = run_cluster(
            wordcount_program, large, num_processes=2, workers_per_process=2
        )
        assert comp_large.now > comp_small.now

    def test_progress_traffic_reduced_by_accumulation(self):
        results = {}
        for mode in ["none", "local"]:
            _, comp = run_cluster(
                iterate_program,
                [list(range(20))],
                num_processes=4,
                workers_per_process=2,
                progress_mode=mode,
            )
            results[mode] = comp.network.stats.bytes("progress")
        assert results["local"] < results["none"] / 2


class DoubleSendVertex(Vertex):
    """Sends its input in two halves to the same output connector from
    one callback — the shape whose per-message network accounting the
    sender-side merge fixes."""

    notifies = False

    def on_recv(self, input_port, records, timestamp):
        half = len(records) // 2
        self.send_by(0, records[:half], timestamp)
        self.send_by(0, records[half:], timestamp)


class TestSenderSideBatchAccounting:
    """A callback's repeat sends to one coalesced destination must be
    charged per-message wire overhead once, not per constituent send.

    The receiver has always merged adjacent same-(connector, timestamp)
    deliveries; before the sender-side merge, each constituent still
    paid its own ``per_message_bytes`` and occurrence round trip.  The
    plan below routes 8 records through a double-sending stage into a
    remote ``count_by`` (batchable, so the optimizer hints its input
    connector coalescible): unmerged that is 2 wire messages of 4
    records (2 * (4*8 + 64) = 192 bytes), merged exactly one
    (8*8 + 64 = 128 bytes).
    """

    RECORDS = list(range(8))

    def _run(self, optimize):
        comp = ClusterComputation(
            num_processes=2, workers_per_process=2, optimize=optimize
        )
        inp = comp.new_input()
        stage = comp.graph.new_stage(
            "double", lambda s, w: DoubleSendVertex(), 1, 1
        )
        # Pin the sender to worker 0 (process 0) and the counter to
        # worker 2 (process 1) so the merged batch crosses the network.
        Stream.from_input(inp).connect_to(stage, 0, partitioner=lambda r: 0)
        out = {}
        Stream(comp, stage, 0).count_by(lambda r: 2).subscribe(
            lambda t, recs: out.setdefault(t.epoch, sorted(recs))
        )
        comp.build()
        inp.on_next(self.RECORDS)
        inp.on_completed()
        comp.run()
        assert comp.drained(), comp.debug_state()
        return out, comp

    def test_coalesced_batch_charged_one_message(self):
        out, comp = self._run(optimize=True)
        assert out == {0: [(2, len(self.RECORDS))]}
        assert comp.sender_merged_dispatches == 1
        assert comp.network.stats.messages("data") == 1
        assert comp.network.stats.bytes("data") == 128

    def test_unhinted_plan_still_pays_per_send(self):
        # Without the coalesce hint the two sends stay distinct wire
        # messages — the merge keys on the optimizer's hint, never on
        # guesswork about delivery semantics.
        out, comp = self._run(optimize=False)
        assert out == {0: [(2, len(self.RECORDS))]}
        assert comp.sender_merged_dispatches == 0
        assert comp.network.stats.messages("data") == 2
        assert comp.network.stats.bytes("data") == 192
