"""Property-based runtime equivalence on randomly generated programs.

DESIGN.md invariant 5, in its strongest form: hypothesis composes random
operator pipelines (including iteration) and random epoch inputs; the
per-epoch output multisets must be identical on the reference runtime
and on simulated clusters of random shapes and protocol modes — and
unaffected by packet loss or GC stragglers.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro import Computation
from repro.lib import Stream
from repro.runtime import ClusterComputation
from repro.sim import NetworkConfig

# ----------------------------------------------------------------------
# Random pipelines: each element appends one operator to the chain.
# ----------------------------------------------------------------------

OPERATORS = {
    "select": lambda s: s.select(lambda x: x * 3 + 1),
    "where": lambda s: s.where(lambda x: x % 2 == 1),
    "select_many": lambda s: s.select_many(lambda x: [x, x // 2]),
    "distinct": lambda s: s.distinct(),
    "count_by": lambda s: s.count_by(lambda x: x % 5),
    "sum_by": lambda s: s.aggregate_by(
        lambda x: x % 3, lambda x: x, lambda a, b: a + b
    ),
    "min_by": lambda s: s.min_by(lambda x: x % 3, lambda x: x),
    "top_k": lambda s: s.top_k(3, score=lambda x: x),
    "iterate": lambda s: s.iterate(
        lambda body: body.select(lambda x: x - 2).where(lambda x: x > 0),
        partitioner=lambda x: x if isinstance(x, int) else hash(x),
    ),
}

# Keyed outputs (tuples) change the record type; restrict what follows.
AFTER_TUPLES = {"distinct", "top_k"}
TUPLE_PRODUCERS = {"count_by", "sum_by", "min_by"}


@st.composite
def pipelines(draw):
    names = []
    tuples = False
    for _ in range(draw(st.integers(1, 4))):
        pool = sorted(AFTER_TUPLES) if tuples else sorted(OPERATORS)
        name = draw(st.sampled_from(pool))
        names.append(name)
        if name in TUPLE_PRODUCERS:
            tuples = True
    return names


def build_pipeline(names, stream):
    for name in names:
        stream = OPERATORS[name](stream)
    return stream


epoch_inputs = st.lists(
    st.lists(st.integers(min_value=0, max_value=30), max_size=12),
    min_size=1,
    max_size=3,
)


def run_program(comp, names, epochs):
    inp = comp.new_input()
    out = Counter()
    build_pipeline(names, Stream.from_input(inp)).subscribe(
        lambda t, recs: out.update((t.epoch, r) for r in recs)
    )
    comp.build()
    for records in epochs:
        inp.on_next(records)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return out


class TestRandomProgramEquivalence:
    @given(
        pipelines(),
        epoch_inputs,
        st.sampled_from([(1, 2), (2, 2), (3, 1), (2, 3)]),
        st.sampled_from(["none", "local", "global", "local+global"]),
        st.sampled_from(["scoped", "flat"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_cluster_matches_reference(self, names, epochs, shape, mode, tracking):
        expected = run_program(Computation(), names, epochs)
        actual = run_program(
            ClusterComputation(
                num_processes=shape[0],
                workers_per_process=shape[1],
                progress_mode=mode,
                progress_tracking=tracking,
            ),
            names,
            epochs,
        )
        assert actual == expected, names

    @given(pipelines(), epoch_inputs, st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_stragglers_never_change_results(self, names, epochs, seed):
        expected = run_program(Computation(), names, epochs)
        actual = run_program(
            ClusterComputation(
                num_processes=3,
                workers_per_process=2,
                progress_mode="local+global",
                network=NetworkConfig(
                    packet_loss_probability=0.2,
                    retransmit_timeout=3e-3,
                    gc_interval=1e-3,
                    gc_pause=2e-3,
                ),
                seed=seed,
            ),
            names,
            epochs,
        )
        assert actual == expected, names


class TestNewOperators:
    def test_union(self):
        comp = Computation()
        a, b = comp.new_input(), comp.new_input()
        got = Stream.from_input(a).union(Stream.from_input(b)).collect()
        comp.build()
        a.on_next([1, 2, 2])
        b.on_next([2, 3])
        a.on_completed()
        b.on_completed()
        comp.run()
        assert sorted(got[0][1]) == [1, 2, 3]

    def test_min_by_max_by(self):
        comp = Computation()
        inp = comp.new_input()
        lows = Stream.from_input(inp).min_by(lambda r: r[0], lambda r: r[1]).collect()
        comp.build()
        inp.on_next([("a", 5), ("a", 2), ("b", 9)])
        inp.on_completed()
        comp.run()
        assert sorted(lows[0][1]) == [("a", 2), ("b", 9)]

    def test_top_k(self):
        comp = Computation()
        inp = comp.new_input()
        got = Stream.from_input(inp).top_k(2, score=lambda x: x).collect()
        comp.build()
        inp.on_next([5, 1, 9, 7, 3])
        inp.on_completed()
        comp.run()
        assert sorted(got[0][1]) == [7, 9]

    def test_top_k_distributed_combiner(self):
        comp = ClusterComputation(2, 2)
        inp = comp.new_input()
        results = []
        Stream.from_input(inp).top_k(3, score=lambda x: x).subscribe(
            lambda t, recs: results.extend(recs)
        )
        comp.build()
        inp.on_next(list(range(40)))
        inp.on_completed()
        comp.run()
        assert sorted(results) == [37, 38, 39]
