"""repro.opt — the dataflow plan optimizer.

Sits between program construction (:mod:`repro.lib.stream` builders
annotate stages with :class:`~repro.opt.plan.OpSpec`) and execution
(:class:`repro.core.Computation` / :class:`repro.runtime.cluster.
ClusterComputation` call :func:`compile_plan` before freezing the graph
when built with ``optimize=True`` or under ``REPRO_FUSION=1``).

See DESIGN.md ("The plan optimizer") for the fusion legality rules and
the elision proof obligations.
"""

from .fused import FusedVertex
from .plan import (
    HashPartitioner,
    LogicalPlan,
    OpSpec,
    PhysicalPlan,
    describe_graph,
    partitioners_agree,
    plan_signature,
)
from .passes import (
    BatchingHintPass,
    ExchangeElisionPass,
    FusionPass,
    compile_plan,
    default_passes,
    parse_optimize_env,
)

__all__ = [
    "BatchingHintPass",
    "ExchangeElisionPass",
    "FusedVertex",
    "FusionPass",
    "HashPartitioner",
    "LogicalPlan",
    "OpSpec",
    "PhysicalPlan",
    "compile_plan",
    "default_passes",
    "describe_graph",
    "parse_optimize_env",
    "partitioners_agree",
    "plan_signature",
]
