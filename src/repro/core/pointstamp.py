"""Convenience helpers for reasoning about pointstamps (section 2.3).

The heavy lifting lives in :mod:`repro.core.pathsummary` (minimal path
summaries) and :mod:`repro.core.progress` (occurrence/precursor
counting); this module exposes the standalone could-result-in test used
by tests and diagnostic tooling.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from .pathsummary import Antichain
from .progress import Pointstamp


def could_result_in(
    summaries: Dict[Tuple[Hashable, Hashable], Antichain],
    p1: Pointstamp,
    p2: Pointstamp,
) -> bool:
    """True iff an event at ``p1`` could lead to an event at ``p2``.

    ``summaries`` is the table produced by
    :meth:`repro.core.graph.DataflowGraph.freeze`.
    """
    antichain = summaries.get((p1.location, p2.location))
    return antichain is not None and antichain.dominates(p1.timestamp, p2.timestamp)
