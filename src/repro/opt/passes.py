"""The plan-rewrite pass pipeline.

Three passes ship, applied in order by :func:`compile_plan`:

``exchange-elision``
    drops an exchange edge when the producer's records are provably
    already partitioned the way the consumer requires, turning a
    simulated all-to-all into a local pipeline hop (no network bytes,
    no per-share progress updates).  The proof propagates a
    "distribution property" through record-preserving stages and
    compares partitioners via :func:`repro.opt.plan.partitioners_agree`;
    with a single worker every exchange is trivially local.  Runs first
    so an elided edge can unlock fusion across it.

``operator-fusion``
    collapses maximal chains of fusable 1-in/1-out stages linked by
    pipeline (non-exchange, single-fan-out) connectors into one stage
    whose vertices are :class:`repro.opt.fused.FusedVertex` pipelines.
    Exchanges, loop ingress/egress/feedback, multi-input operators,
    fan-out points and opaque stages are fusion barriers.  Timestamp
    types match within a chain by construction: the graph layer rejects
    NORMAL-to-NORMAL connectors that cross a loop-context boundary.

``batch-coalescing``
    marks connectors whose destination tolerates merged deliveries
    (``OpSpec.batchable``, or any system forwarding stage); the cluster
    runtime then coalesces adjacent same-(connector, timestamp) queue
    entries into a single callback, cutting DES event counts on
    fan-in-heavy graphs where fusion alone cannot (e.g. the WCC label
    loop, whose one chain is a lone ``select_many``).

Every pass is idempotent: re-running the pipeline on its own output
performs zero rewrites, which the property tests assert via
:func:`repro.opt.plan.plan_signature`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence

from ..core.graph import DataflowGraph, Stage, StageKind
from ..obs.trace import TraceEvent, TraceSink
from .fused import FusedVertex
from .plan import (
    SYSTEM_BATCHABLE,
    LogicalPlan,
    OpSpec,
    PassResult,
    PhysicalPlan,
    describe_graph,
    partitioners_agree,
)


class ExchangeElisionPass:
    """Remove exchange edges whose routing is provably the identity."""

    name = "exchange-elision"

    def run(self, plan: LogicalPlan) -> List[str]:
        graph = plan.graph
        rewrites: List[str] = []
        if plan.total_workers == 1:
            # One worker: every partitioner and the round-robin input
            # spray both reduce to "worker 0", including input edges.
            for connector in graph.connectors:
                if connector.partitioner is not None:
                    connector.partitioner = None
                    rewrites.append(
                        "elided exchange (%s -> %s): single worker"
                        % (connector.src.name, connector.dst.name)
                    )
            return rewrites
        located = self._distribution_properties(graph)
        for connector in graph.connectors:
            wanted = connector.partitioner
            if wanted is None:
                continue
            if connector.src.kind is StageKind.INPUT:
                continue  # ingest is round-robin, never provably keyed
            have = located.get(connector.src)
            if have is not None and partitioners_agree(have, wanted):
                connector.partitioner = None
                rewrites.append(
                    "elided exchange (%s -> %s): producer already partitioned "
                    "by an equal key" % (connector.src.name, connector.dst.name)
                )
        return rewrites

    def _distribution_properties(self, graph: DataflowGraph) -> Dict[Stage, object]:
        """For each stage, the partitioner its output records provably
        follow (records reside at ``p(r) % total``), or nothing.

        Established by an exchange edge; preserved by stages whose
        outputs are a subset of their inputs on the same worker
        (``OpSpec.preserves_partitioning`` and the system forwarding
        stages); destroyed by transforms, disagreeing multi-input
        merges, and — conservatively — feedback cycles.
        """
        located: Dict[Stage, object] = {}
        for stage in self._topo_no_feedback(graph):
            if stage.kind is StageKind.INPUT or stage.kind is StageKind.FEEDBACK:
                continue
            if stage.kind is StageKind.NORMAL:
                spec = stage.opspec
                if spec is None or not spec.preserves_partitioning:
                    continue
            incoming = []
            for connector in stage.inputs:
                if connector is None:
                    incoming = []
                    break
                have = (
                    connector.partitioner
                    if connector.partitioner is not None
                    else located.get(connector.src)
                )
                if have is None:
                    incoming = []
                    break
                incoming.append(have)
            if not incoming:
                continue
            first = incoming[0]
            if all(partitioners_agree(first, other) for other in incoming[1:]):
                located[stage] = first
        return located

    @staticmethod
    def _topo_no_feedback(graph: DataflowGraph) -> List[Stage]:
        """Stages in dependency order, ignoring feedback back-edges
        (mirrors the acyclicity check in :meth:`DataflowGraph.validate`)."""
        in_degree = {stage: 0 for stage in graph.stages}
        for connector in graph.connectors:
            if connector.src.kind is StageKind.FEEDBACK:
                continue
            in_degree[connector.dst] += 1
        ready = [stage for stage in graph.stages if in_degree[stage] == 0]
        order: List[Stage] = []
        while ready:
            stage = ready.pop()
            order.append(stage)
            if stage.kind is StageKind.FEEDBACK:
                continue
            for outputs in stage.outputs:
                for connector in outputs:
                    in_degree[connector.dst] -= 1
                    if in_degree[connector.dst] == 0:
                        ready.append(connector.dst)
        return order


class FusionPass:
    """Fuse maximal pipeline chains of unary operators into one stage."""

    name = "operator-fusion"

    def run(self, plan: LogicalPlan) -> List[str]:
        graph = plan.graph
        rewrites: List[str] = []
        changed = False
        for head in list(graph.stages):
            if not self._fusable(head) or self._chain_predecessor(head) is not None:
                continue
            chain = [head]
            while True:
                successor = self._chain_successor(chain[-1])
                if successor is None:
                    break
                chain.append(successor)
            if len(chain) < 2:
                continue
            self._rewrite(graph, chain)
            changed = True
            rewrites.append(
                "fused [%s] into one stage" % " -> ".join(stage.name for stage in chain)
            )
        if changed:
            plan.reindex()
        return rewrites

    # -- legality ------------------------------------------------------

    @staticmethod
    def _fusable(stage: Stage) -> bool:
        return (
            stage.kind is StageKind.NORMAL
            and stage.num_inputs == 1
            and stage.num_outputs == 1
            and stage.opspec is not None
            and stage.opspec.fusable
        )

    @classmethod
    def _chain_predecessor(cls, stage: Stage) -> Optional[Stage]:
        connector = stage.inputs[0]
        if connector is None or connector.partitioner is not None:
            return None
        src = connector.src
        if not cls._fusable(src) or len(src.outputs[0]) != 1:
            return None
        return src

    @classmethod
    def _chain_successor(cls, stage: Stage) -> Optional[Stage]:
        if len(stage.outputs[0]) != 1:
            return None
        connector = stage.outputs[0][0]
        if connector.partitioner is not None:
            return None
        dst = connector.dst
        if not cls._fusable(dst):
            return None
        return dst

    # -- rewrite -------------------------------------------------------

    @staticmethod
    def _rewrite(graph: DataflowGraph, chain: List[Stage]) -> None:
        names = tuple(stage.name for stage in chain)
        specs = [stage.opspec for stage in chain]
        originals = list(chain)

        def factory(stage: Stage, worker: int) -> FusedVertex:
            parts = [orig.factory(orig, worker) for orig in originals]
            return FusedVertex(parts, names)

        head, tail = chain[0], chain[-1]
        fused = Stage(
            graph,
            head.index,
            "fuse(%s)" % "+".join(names),
            StageKind.NORMAL,
            factory,
            1,
            1,
            head.context,
        )
        fused.opspec = OpSpec(
            "fused",
            fusable=False,
            batchable=all(spec.batchable for spec in specs),
            preserves_partitioning=all(spec.preserves_partitioning for spec in specs),
            constituents=names,
            cost_scale=sum(spec.cost_scale for spec in specs),
            # The chain consumes what its head consumed; deliveries
            # enter through parts[0], so the head's schema is the one
            # the columnar plane may encode against.
            schema=specs[0].schema,
        )
        incoming = head.inputs[0]
        if incoming is not None:
            incoming.dst = fused
            fused.inputs[0] = incoming
        outgoing = list(tail.outputs[0])
        for connector in outgoing:
            connector.src = fused
        fused.outputs[0] = outgoing
        for stage in chain[1:]:
            graph.connectors.remove(stage.inputs[0])
        position = graph.stages.index(head)
        graph.stages[position] = fused
        for stage in chain[1:]:
            graph.stages.remove(stage)


class BatchingHintPass:
    """Mark connectors whose destination tolerates merged deliveries."""

    name = "batch-coalescing"

    def run(self, plan: LogicalPlan) -> List[str]:
        rewrites: List[str] = []
        for connector in plan.graph.connectors:
            if connector.coalesce:
                continue
            dst = connector.dst
            if dst.kind in SYSTEM_BATCHABLE:
                batchable = True
            else:
                batchable = dst.opspec is not None and dst.opspec.batchable
            if batchable:
                connector.coalesce = True
                rewrites.append(
                    "coalesce hint on (%s -> %s)" % (connector.src.name, dst.name)
                )
        return rewrites


def default_passes() -> List:
    return [ExchangeElisionPass(), FusionPass(), BatchingHintPass()]


def compile_plan(
    graph: DataflowGraph,
    total_workers: Optional[int] = None,
    passes: Optional[Sequence] = None,
    trace: Optional[TraceSink] = None,
    now: float = 0.0,
) -> PhysicalPlan:
    """Run ``graph`` through the pass pipeline; returns the physical plan.

    The graph is rewritten *in place* (it must not be frozen yet); the
    returned :class:`PhysicalPlan` records before/after summaries and
    the per-pass rewrite log for :meth:`~PhysicalPlan.explain`.  With a
    trace sink attached, each pass emits one ``"plan"`` event whose
    detail is ``(rewrites, stages_after, connectors_after)``.
    """
    plan = LogicalPlan(graph, total_workers)
    before = describe_graph(graph)
    results: List[PassResult] = []
    for compiler_pass in default_passes() if passes is None else passes:
        rewrites = compiler_pass.run(plan)
        results.append(PassResult(compiler_pass.name, list(rewrites)))
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "plan",
                    now,
                    0.0,
                    perf_counter(),
                    -1,
                    -1,
                    compiler_pass.name,
                    (),
                    (len(rewrites), len(graph.stages), len(graph.connectors)),
                )
            )
    return PhysicalPlan(graph, before, describe_graph(graph), results)


def parse_optimize_env(value: Optional[str]) -> bool:
    """Interpret the ``REPRO_FUSION`` / ``REPRO_COLUMNAR`` variables."""
    if value is None:
        return False
    return value.strip().lower() in ("1", "true", "yes", "on")


def mark_columnar(graph: DataflowGraph) -> int:
    """Annotate connectors with the columnar schema of their eventual
    destination; returns the number of connectors marked.

    A connector qualifies when every NORMAL stage reachable from it
    through system forwarding stages (ingress/egress/feedback, which
    pass batches through whole) declares the same ``OpSpec.schema``.
    Senders on a marked connector encode conforming record batches as
    :class:`~repro.columnar.ColumnarBatch` payloads; everything else is
    untouched, so marking is a pure opt-in performed by the cluster
    runtime at build time (after the pass pipeline, before freeze) and
    never appears in pass-pipeline golden reports.
    """
    forwarding = (StageKind.INGRESS, StageKind.EGRESS, StageKind.FEEDBACK)

    def eventual_schema(connector, seen):
        dst = connector.dst
        if dst.kind is StageKind.NORMAL:
            return None if dst.opspec is None else dst.opspec.schema
        if dst.kind in forwarding:
            if dst in seen:
                return None
            seen = seen | {dst}
            schemas = set()
            for outputs in dst.outputs:
                for downstream in outputs:
                    schemas.add(eventual_schema(downstream, seen))
            if len(schemas) == 1:
                return schemas.pop()
        return None

    marked = 0
    for connector in graph.connectors:
        schema = eventual_schema(connector, frozenset())
        if schema is not None:
            connector.columnar = schema
            marked += 1
    return marked
