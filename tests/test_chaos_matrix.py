"""The chaos matrix: kill injection across every runtime configuration.

Sweeps {barrier, async} checkpointing x {inline, mp} execution backends
x {fused, unfused} plans, killing a process at three schedule points in
each configuration, and asserts the one invariant that must hold
everywhere: the per-epoch output multisets are bit-identical to a
failure-free run.  This is the composition test — the marker protocol,
partial rollback, the vertex pool's drain/re-seed, composite fused
checkpoints and exactly-once journal replay all have to agree.

These runs are deliberately heavier than the unit suite, so they are
marked ``chaos`` and run as a separate CI leg::

    PYTHONPATH=src python -m pytest -m chaos -q
"""

import pytest

from tests.test_recovery import baseline, make_ft, run_cluster

#: Fractions of the failure-free duration at which the kill lands:
#: early (first cycles still assembling), mid-stream, and late (most
#: epochs already released).
KILL_POINTS = (0.2, 0.5, 0.8)

CHECKPOINT_MODES = ("barrier", "async")
BACKENDS = ("inline", "mp")
PLANS = ("unfused", "fused")

MATRIX = [
    (mode, backend, plan)
    for mode in CHECKPOINT_MODES
    for backend in BACKENDS
    for plan in PLANS
]


def _ids(config):
    return "-".join(config)


@pytest.mark.chaos
@pytest.mark.parametrize("mode,backend,plan", MATRIX, ids=_ids)
def test_kill_matrix_outputs_bit_identical(mode, backend, plan):
    expected, duration = baseline("wordcount", (2, 2))
    kwargs = {}
    if backend == "mp":
        kwargs["backend"] = "mp"
        kwargs["pool_workers"] = 2
    if plan == "fused":
        kwargs["optimize"] = True
    for frac in KILL_POINTS:
        ft = make_ft("checkpoint")
        ft.checkpoint_mode = mode
        out, comp = run_cluster(
            "wordcount",
            (2, 2),
            ft=ft,
            kill=(1, duration * frac),
            **kwargs
        )
        assert out == expected, (mode, backend, plan, frac)
        assert len(comp.recovery.failures) == 1
        if mode == "async":
            # Async recovery must not silently degrade: the single kill
            # is handled without a whole-cluster rollback.
            assert comp.recovery.failures[0]["mode"] in ("partial", "skip")


#: Planned membership changes injected at the same schedule points as
#: the kills: grow by one process, drain one out, or both in sequence.
RESCALE_EVENTS = ("add", "remove", "add-remove")

RESCALE_MATRIX = [
    (event, backend, plan)
    for event in RESCALE_EVENTS
    for backend in BACKENDS
    for plan in PLANS
]


def _rescale_ops(event, duration, frac):
    at = duration * frac
    if event == "add":
        return [("add", at)]
    if event == "remove":
        return [("remove", 2, at)]
    # Grow, then drain a founding member shortly after: the remove's
    # cut must cope with the add's migration replay still in the past.
    return [("add", at), ("remove", 1, duration * (frac + 0.1))]


@pytest.mark.chaos
@pytest.mark.parametrize("event,backend,plan", RESCALE_MATRIX, ids=_ids)
def test_rescale_matrix_outputs_bit_identical(event, backend, plan):
    expected, duration = baseline("wordcount", (3, 2))
    kwargs = {}
    if backend == "mp":
        kwargs["backend"] = "mp"
        kwargs["pool_workers"] = 2
    if plan == "fused":
        kwargs["optimize"] = True
    for frac in KILL_POINTS:
        ft = make_ft("checkpoint", policy="reassign")
        ft.checkpoint_mode = "async"
        out, comp = run_cluster(
            "wordcount",
            (3, 2),
            ft=ft,
            rescale=_rescale_ops(event, duration, frac),
            **kwargs
        )
        assert out == expected, (event, backend, plan, frac)
        kinds = [r["kind"] for r in comp.rescales]
        assert kinds == event.split("-"), (event, kinds)
        # Planned changes are not failures: nothing may escalate to a
        # whole-cluster rollback.
        assert not comp.recovery.failures, (event, backend, plan, frac)


def _serving_run(ft, kill=None, rescale=None, shape=(2, 2)):
    """The Figure 8 serving workload with mixed-SLO open sessions."""
    from repro.runtime import ClusterComputation
    from tests.test_serve import fig8_workload, serve_run

    tweet_epochs, query_epochs = fig8_workload(epochs=8, sessions=20)
    fresh_half = [q[:10] for q in query_epochs]
    stale_half = [q[10:] for q in query_epochs]
    comp = ClusterComputation(shape[0], shape[1], fault_tolerance=ft)
    manager, _ = serve_run(
        comp,
        tweet_epochs,
        [f + s for f, s in zip(fresh_half, stale_half)],
        slo="mixed",
        bound=3,
        kill=kill,
        rescale=rescale,
    )
    fresh = sorted(
        (a.query_id, a.user, a.value)
        for a in manager.answers
        if a.slo == "fresh"
    )
    stale = [a for a in manager.answers if a.slo == "stale"]
    return fresh, stale, comp


@pytest.mark.chaos
@pytest.mark.parametrize("mode", CHECKPOINT_MODES)
def test_kill_matrix_serving_case(mode):
    # Open query sessions across a mid-run kill: fresh answers are
    # bit-identical to the failure-free run, stale answers never exceed
    # their measured-staleness bound.
    def ft():
        out = make_ft("checkpoint")
        out.checkpoint_mode = mode
        return out

    base_fresh, base_stale, comp0 = _serving_run(ft())
    duration = comp0.sim.now
    for frac in (0.3, 0.6):
        fresh, stale, comp = _serving_run(ft(), kill=(1, duration * frac))
        assert len(comp.recovery.failures) == 1
        assert fresh == base_fresh, (mode, frac)
        assert len(stale) == len(base_stale)
        assert all(answer.staleness <= 3 for answer in stale), (mode, frac)


@pytest.mark.chaos
def test_rescale_matrix_serving_case():
    # Live membership changes with open sessions: same invariants, and
    # planned changes never escalate to a failure.
    def ft():
        out = make_ft("checkpoint", policy="reassign")
        out.checkpoint_mode = "async"
        return out

    base_fresh, base_stale, comp0 = _serving_run(ft(), shape=(3, 2))
    duration = comp0.sim.now
    for ops in (
        [("add", duration * 0.4)],
        [("remove", 2, duration * 0.4)],
        [("add", duration * 0.3), ("remove", 1, duration * 0.6)],
    ):
        fresh, stale, comp = _serving_run(ft(), rescale=ops, shape=(3, 2))
        assert fresh == base_fresh, ops
        assert all(answer.staleness <= 3 for answer in stale), ops
        assert not comp.recovery.failures, ops
        assert len(comp.rescales) == len(ops)


@pytest.mark.chaos
@pytest.mark.parametrize("mode", CHECKPOINT_MODES)
def test_kill_matrix_iteration_case(mode):
    # The loop case exercises in-flight feedback-channel messages in
    # the cut; one kill point per mode keeps the leg bounded.
    expected, duration = baseline("iterate", (4, 1))
    ft = make_ft("checkpoint")
    ft.checkpoint_mode = mode
    out, comp = run_cluster(
        "iterate", (4, 1), ft=ft, kill=(2, duration * 0.5)
    )
    assert out == expected
    assert len(comp.recovery.failures) == 1
