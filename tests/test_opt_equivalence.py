"""A/B equivalence of optimized and unoptimized plans.

The optimizer's contract is that fusion, exchange elision and batch
coalescing are invisible in the outputs: for every program in the
recovery matrix, the fused plan must release exactly the same per-epoch
output multisets as the unfused plan — across fault-tolerance modes,
with mid-run process kills, and under the multiprocessing backend
(where the mp run of a fused plan must additionally stay bit-identical
to the inline run of the same fused plan).  Virtual time and DES event
counts legitimately differ between fused and unfused plans — that is
the point — so only outputs are compared across that boundary, and the
WCC test asserts the event count actually *drops*.
"""

import random
from collections import Counter

import pytest

from repro.algorithms import weakly_connected_components
from repro.lib import Stream
from repro.obs import TraceSink, event_counts, frontier_trace
from repro.parallel import fork_available
from repro.runtime import ClusterComputation, CostModel

from tests.test_recovery import (
    CASES,
    FT_MODES,
    SHAPES,
    baseline,
    collect_per_epoch,
    make_ft,
    run_cluster,
)

_fused_baselines = {}


def fused_baseline(case, shape):
    """Per-epoch outputs and duration of the fused, no-failure run."""
    key = (case, shape)
    if key not in _fused_baselines:
        out, comp = run_cluster(case, shape, optimize=True)
        _fused_baselines[key] = (out, comp.now)
    return _fused_baselines[key]


class TestFusedOutputsMatchUnfused:
    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("shape", SHAPES)
    def test_per_epoch_outputs_identical(self, case, shape):
        expected, _ = baseline(case, shape)
        out, comp = run_cluster(case, shape, optimize=True)
        assert out == expected
        # The optimizer really did something to every one of these
        # programs (at minimum, coalescing hints).
        assert comp.plan is not None and comp.plan.rewrite_count > 0

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("mode", FT_MODES)
    def test_kill_and_recover_with_fusion(self, case, mode):
        shape = (2, 2)
        expected, _ = baseline(case, shape)
        _, duration = fused_baseline(case, shape)
        rng = random.Random(31 * FT_MODES.index(mode) + sorted(CASES).index(case))
        kill = (rng.randrange(shape[0]), duration * rng.uniform(0.2, 0.8))
        out, comp = run_cluster(
            case, shape, ft=make_ft(mode), kill=kill, optimize=True
        )
        assert out == expected
        assert len(comp.recovery.failures) == 1


# ----------------------------------------------------------------------
# Composite checkpoint/restore of a *stateful* fused chain under kill.
# ----------------------------------------------------------------------

STATEFUL_EPOCHS = [
    list(range(12)),
    [5, 5, 9, 30],
    [],
    [2, 4, 6, 8, 10, 12],
]


def run_stateful(shape=(2, 2), ft=None, kill=None, optimize=False, **kwargs):
    """select -> buffered -> where fuses into a chain whose middle
    constituent holds per-timestamp buffers and uses notifications, so a
    rollback must restore state *inside* the fused vertex."""
    comp = ClusterComputation(
        num_processes=shape[0],
        workers_per_process=shape[1],
        fault_tolerance=ft,
        optimize=optimize,
        **kwargs
    )
    inp = comp.new_input("nums")
    out = {}
    (
        Stream.from_input(inp)
        .select(lambda x: x + 1)
        .buffered(lambda rs: sorted(rs))
        .where(lambda x: x % 2 == 0)
        .count_by(lambda x: x % 3)
        .subscribe(collect_per_epoch(out))
    )
    comp.build()
    if optimize:
        constituents = [
            s.opspec.constituents for s in comp.plan.fused_stages()
        ]
        assert ("select", "buffered", "where") in constituents
    if kill is not None:
        comp.kill_process(kill[0], at=kill[1])
    for epoch in STATEFUL_EPOCHS:
        inp.on_next(epoch)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return out, comp


class TestStatefulFusedChainRecovery:
    def test_outputs_match_unfused(self):
        expected, _ = run_stateful(optimize=False)
        out, _ = run_stateful(optimize=True)
        assert out == expected

    @pytest.mark.parametrize("mode", FT_MODES)
    @pytest.mark.parametrize("fraction", [0.3, 0.7])
    def test_kill_restores_fused_internal_state(self, mode, fraction):
        expected, _ = run_stateful(optimize=False)
        _, fused_comp = run_stateful(optimize=True)
        out, comp = run_stateful(
            ft=make_ft(mode),
            kill=(1, fused_comp.now * fraction),
            optimize=True,
        )
        assert out == expected
        assert len(comp.recovery.failures) == 1


# ----------------------------------------------------------------------
# mp backend x fusion: inline-fused and mp-fused stay bit-identical.
# ----------------------------------------------------------------------


def observe_fused(case, shape, backend, ft=None, kill=None):
    sink = TraceSink()
    out, comp = run_cluster(
        case,
        shape,
        ft=ft,
        kill=kill,
        backend=backend,
        pool_workers=2,
        trace=sink,
        optimize=True,
    )
    events = list(sink)
    counts = event_counts(events)
    counts.pop("pool", None)
    observables = {
        "virtual_time": comp.sim.now,
        "events_executed": comp.sim.events_executed,
        "outputs": out,
        "frontier": frontier_trace(events),
        "event_counts": counts,
    }
    offloaded = comp.pool.tasks_offloaded if backend == "mp" else None
    comp.close()
    return observables, offloaded


@pytest.mark.skipif(
    not fork_available(), reason="mp backend requires the fork start method"
)
class TestFusedMpBackend:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_fused_plans_are_backend_bit_identical(self, case):
        inline, _ = observe_fused(case, (2, 2), "inline")
        mp, offloaded = observe_fused(case, (2, 2), "mp")
        for key in inline:
            assert inline[key] == mp[key], (case, key)
        assert offloaded > 0  # fused stages offload like any NORMAL stage

    @pytest.mark.parametrize("mode", FT_MODES)
    def test_fused_kill_recovery_backend_bit_identical(self, mode):
        case, shape = "wordcount", (2, 2)
        _, duration = fused_baseline(case, shape)
        kill = (0, duration * 0.4)
        inline, _ = observe_fused(case, shape, "inline", ft=make_ft(mode), kill=kill)
        mp, _ = observe_fused(case, shape, "mp", ft=make_ft(mode), kill=kill)
        for key in inline:
            assert inline[key] == mp[key], (mode, key)


# ----------------------------------------------------------------------
# The optimizer pays off on the flagship workload: WCC on 64 computers.
# ----------------------------------------------------------------------


def run_wcc64(optimize, edges):
    comp = ClusterComputation(
        num_processes=64,
        workers_per_process=2,
        progress_mode="local+global",
        cost_model=CostModel(per_record_cost=2e-5, record_bytes=800),
        optimize=optimize,
    )
    out = []
    inp = comp.new_input()
    weakly_connected_components(Stream.from_input(inp)).subscribe(
        lambda t, recs: out.extend(recs)
    )
    comp.build()
    inp.on_next(edges)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return sorted(out), comp


def test_fusion_reduces_wcc64_event_count():
    from repro.workloads import uniform_random_graph

    edges = uniform_random_graph(600, 1200, seed=2)
    labels, plain = run_wcc64(False, edges)
    fused_labels, fused = run_wcc64(True, edges)
    assert fused_labels == labels
    # Coalesced proposal fan-in plus the fused arcs stage must show up
    # as a real event-count reduction (the Fig 6 preset measures ~30%;
    # the smaller graph here still clears 10% comfortably).
    assert fused.sim.events_executed < 0.9 * plain.sim.events_executed
    assert fused.coalesced_batches > 0
    counts = Counter(r[1] for r in labels)
    assert sum(counts.values()) == len(labels)
