"""The Figure 1 / section 6.4 application: streaming iterative graph
analytics with interactive queries.

A continually arriving tweet stream is split into mention edges and
hashtag records.  Mention edges drive an incremental connected
components computation; hashtags are joined with each user's component
id and counted per component; a per-component "top hashtag" is
maintained incrementally.  A second input stream carries queries
``(user, query_id)`` which are answered with the top hashtag of that
user's component.

Freshness modes (the Figure 8 trade-off):

- ``fresh``: queries at epoch *e* are answered only after the state
  reflects every tweet of epoch *e* (answers wait behind the update
  work — the paper's "shark fin" latency pattern);
- ``stale``: queries are answered immediately from whatever state has
  been applied (bounded staleness, milliseconds-level responses).

The program logic mirrors the paper's 27-line description: extraction,
incremental CC, two joins and a grouping, plus the query-serving vertex
built on the low-level API.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from ..lib.incremental import Collection
from ..lib.stream import Stream
from ..workloads.tweets import Tweet


class QueryVertex(Vertex):
    """Serves "top hashtag in my component" queries from live state.

    Input 0: queries ``(user, query_id)``.  Input 1: component label
    diffs ``((user, cid), ±1)``.  Input 2: top-hashtag diffs
    ``((cid, hashtag), ±1)``.  Output 0: ``(query_id, user, hashtag)``.

    In fresh mode every input is buffered per timestamp and applied at
    the notification, in timestamp order: a query at epoch *e* sees
    exactly the state of epochs ``<= e`` — never a prefix of a later
    epoch that happened to be scheduled early.  That makes fresh answers
    a pure function of the per-epoch input multisets, so they survive a
    failure-recovery replay bit-identically.  Stale mode keeps applying
    (and answering) on arrival; bounded staleness is its contract, and
    it is *measured*: every stale answer is a 4-tuple whose last field
    is ``state_epoch``, the newest epoch the read state is guaranteed
    complete through (tracked with capability-free notifications; -1
    until the first epoch completes).  The state may additionally hold
    partial later diffs, so the tag is the conservative floor a
    staleness bound can be enforced against.
    """

    def __init__(self, fresh: bool = True):
        super().__init__()
        self.fresh = fresh
        self.component: Dict[Any, Any] = {}
        self.top: Dict[Any, Any] = {}
        #: timestamp -> [(input_port, records), ...] in arrival order.
        self.pending: Dict[Timestamp, List[Tuple[int, List[Any]]]] = {}
        #: Stale mode: newest epoch all state diffs are applied through.
        self.state_epoch = -1
        #: Stale mode: timestamps with a completion watermark requested.
        self.watermarks: set = set()

    def _answer(self, user: Any, query_id: Any) -> Tuple[Any, Any, Any]:
        cid = self.component.get(user)
        hashtag = self.top.get(cid) if cid is not None else None
        return (query_id, user, hashtag)

    def _apply(self, input_port: int, records: List[Any]) -> None:
        if input_port == 1:
            for (user, cid), multiplicity in records:
                if multiplicity > 0:
                    self.component[user] = cid
                elif self.component.get(user) == cid:
                    del self.component[user]
        else:
            for (cid, hashtag), multiplicity in records:
                if multiplicity > 0:
                    self.top[cid] = hashtag
                elif self.top.get(cid) == hashtag:
                    del self.top[cid]

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        if self.fresh:
            pending = self.pending.get(timestamp)
            if pending is None:
                pending = self.pending[timestamp] = []
                self.notify_at(timestamp)
            pending.append((input_port, list(records)))
            return
        # Stale mode: a capability-free notification per timestamp marks
        # when the state is complete through that epoch (section 2.4 —
        # no pointstamp held, so answering latency is unaffected).
        if timestamp not in self.watermarks:
            self.watermarks.add(timestamp)
            self.notify_at(timestamp, capability=False)
        if input_port == 0:
            self.send_by(
                0,
                [
                    self._answer(user, qid) + (self.state_epoch,)
                    for user, qid in records
                ],
                timestamp,
            )
        else:
            self._apply(input_port, records)

    def on_notify(self, timestamp: Timestamp) -> None:
        if not self.fresh:
            # Watermark cleanup: every diff at or before this timestamp
            # has been applied (the frontier passed it).
            self.watermarks.discard(timestamp)
            if timestamp.epoch > self.state_epoch:
                self.state_epoch = timestamp.epoch
            return
        queries: List[Tuple[Any, Any]] = []
        for input_port, records in self.pending.pop(timestamp, ()):
            if input_port == 0:
                queries.extend(records)
            else:
                self._apply(input_port, records)
        if queries:
            self.send_by(
                0, [self._answer(user, qid) for user, qid in queries], timestamp
            )


def top_hashtags_by_component(tweets: Collection) -> Tuple[Collection, Collection]:
    """From a collection of :class:`Tweet`, derive labels and top tags.

    Returns ``(labels, top)``: ``labels`` carries ``(user, cid)`` diffs
    and ``top`` carries ``(cid, hashtag)`` diffs (one current top per
    component).
    """
    edges = tweets.flat_map(
        lambda tweet: [(tweet.user, mention) for mention in tweet.mentions],
        name="mentions",
    )
    labels = edges.connected_components()
    hashtags = tweets.flat_map(
        lambda tweet: [(tweet.user, tag) for tag in tweet.hashtags],
        name="hashtags",
    )
    # (user, tag) joined with (user, cid) -> (cid, tag)
    tagged = hashtags.join(
        labels,
        left_key=lambda rec: rec[0],
        right_key=lambda rec: rec[0],
        result=lambda tag_rec, label_rec: (label_rec[1], tag_rec[1]),
        name="tag_components",
    )
    counted = tagged.count_by(lambda rec: rec, name="tag_counts")
    # ((cid, tag), count) -> top (cid, tag); deterministic tie-break.
    top = counted.reduce_by(
        lambda rec: rec[0][0],
        lambda cid, recs: [
            (cid, max(recs, key=lambda r: (r[1], repr(r[0][1])))[0][1])
        ],
        name="top_hashtag",
    )
    return labels, top


def hashtag_component_app(
    tweets_input: Stream,
    queries_input: Stream,
    on_response: Callable[[Timestamp, List[Tuple[Any, Any, Any]]], None],
    fresh: bool = True,
) -> None:
    """Assemble the full Figure 1 dataflow.

    ``tweets_input`` carries :class:`repro.workloads.tweets.Tweet`
    records; ``queries_input`` carries ``(user, query_id)`` pairs;
    ``on_response`` receives ``(query_id, user, hashtag)`` batches.
    ``fresh`` selects the freshness mode described above.
    """
    computation = tweets_input.computation
    tweets = Collection.from_records(tweets_input)
    labels, top = top_hashtags_by_component(tweets)

    stage = computation.graph.new_stage(
        "queries", lambda s, w: QueryVertex(fresh), 3, 1
    )
    # Queries and label diffs are partitioned by user; top-hashtag diffs
    # must reach every user's worker, so route all three by user where a
    # user key exists and replicate tops via the single-partition trick.
    queries_input.connect_to(stage, 0, partitioner=lambda rec: 0)
    labels.stream.connect_to(stage, 1, partitioner=lambda rec: 0)
    top.stream.connect_to(stage, 2, partitioner=lambda rec: 0)
    responses = Stream(computation, stage, 0)
    if fresh:
        responses.subscribe(on_response)
    else:
        # Stale mode answers from on_recv; deliver responses without
        # waiting for epoch completeness either.
        sink = computation.graph.new_stage(
            "responses", lambda s, w: _ImmediateSink(on_response), 1, 0
        )
        responses.connect_to(sink, 0)


class _ImmediateSink(Vertex):
    """Delivers batches to a callback as they arrive (no coordination)."""

    coordinator_only = True
    _CONFIG_ATTRS = ("callback",)

    def __init__(self, callback):
        super().__init__()
        self.callback = callback

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        self.callback(timestamp, records)


def hashtag_component_arrangements(
    tweets_input: Stream,
    retain: int = 4,
) -> Tuple[Any, Any]:
    """The Figure 1 update path rebuilt on shared arrangements.

    Instead of a per-session :class:`QueryVertex` privately copying the
    component and top-hashtag maps, the two derived collections are
    arranged once — ``labels_arr`` keyed by user with ``(user, cid)``
    records, ``top_arr`` keyed by component id with ``(cid, hashtag)``
    records — and any number of serving sessions read them through a
    :class:`repro.serve.SessionManager` with
    :func:`component_top_resolver`.  Returns ``(labels_arr, top_arr)``.
    """
    tweets = Collection.from_records(tweets_input)
    labels, top = top_hashtags_by_component(tweets)
    labels_arr = labels.arrange_by(
        lambda rec: rec[0], name="labels_arr", retain=retain
    )
    top_arr = top.arrange_by(lambda rec: rec[0], name="top_arr", retain=retain)
    return labels_arr, top_arr


def component_top_resolver(views: Dict[str, Any], user: Any) -> Any:
    """Answer "top hashtag in ``user``'s component" from arrangement
    views (the resolver a :class:`repro.serve.SessionManager` takes).

    Matches :class:`QueryVertex` semantics exactly: the effective label
    is the last-applied ``(user, cid)`` record — diff order makes that
    the maximum surviving record under the arrangement's multiset, since
    the incremental CC retracts old labels as it refines — and likewise
    for the component's current top hashtag.
    """
    labels = views["labels_arr"].get(user)
    if not labels:
        return None
    cid = labels[-1][1] if len(labels) == 1 else max(labels)[1]
    tops = views["top_arr"].get(cid)
    if not tops:
        return None
    return tops[-1][1] if len(tops) == 1 else max(tops)[1]


def app_oracle(
    tweet_epochs: List[List[Tweet]],
    query_epochs: List[List[Tuple[Any, Any]]],
) -> List[Tuple[Any, Any, Any]]:
    """Fresh-mode reference answers computed with plain Python."""
    parent: Dict[Any, Any] = {}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    tag_counts: Dict[Tuple[Any, Any], int] = {}
    responses = []
    users_tags: List[Tuple[Any, Any]] = []
    for epoch, tweets in enumerate(tweet_epochs):
        for tweet in tweets:
            for node in (tweet.user,) + tweet.mentions:
                parent.setdefault(node, node)
            for mention in tweet.mentions:
                ru, rv = find(tweet.user), find(mention)
                if ru != rv:
                    parent[max(ru, rv)] = min(ru, rv)
            for tag in tweet.hashtags:
                users_tags.append((tweet.user, tag))
        # Component ids are min member ids; recompute counts per epoch.
        def cid(user):
            if user not in parent:
                return None
            root = find(user)
            members = [n for n in parent if find(n) == root]
            return min(members)

        queries = query_epochs[epoch] if epoch < len(query_epochs) else []
        counts: Dict[Tuple[Any, Any], int] = {}
        for user, tag in users_tags:
            if user in parent:
                counts[(cid(user), tag)] = counts.get((cid(user), tag), 0) + 1
        top: Dict[Any, Tuple[int, str]] = {}
        for (component, tag), count in counts.items():
            key = (count, repr(tag))
            if component not in top or key > top[component][0]:
                top[component] = (key, tag)
        for user, query_id in queries:
            component = cid(user)
            hashtag = top.get(component, (None, None))[1] if component is not None else None
            responses.append((query_id, user, hashtag))
    return responses
