"""Tests for the `repro.obs` observability layer.

Covers the trace-event schema round-trip (emit -> JSONL -> reload ->
identical analysis results) and the zero-overhead-when-off guarantee:
with no sink attached the hot paths must not construct a single
:class:`TraceEvent` and must execute the identical schedule.
"""

import pytest

import repro.obs.trace as trace_mod
from repro.core import Computation
from repro.lib import Stream
from repro.obs import (
    TraceEvent,
    TraceSink,
    critical_path,
    event_counts,
    frontier_trace,
    stage_timelines,
    worker_timelines,
)
from repro.runtime import ClusterComputation


def run_traced_wcc_like(sink=None):
    """A small iterative job on the cluster runtime; returns the comp."""
    comp = ClusterComputation(
        num_processes=2, workers_per_process=2, progress_mode="local+global"
    )
    if sink is not None:
        comp.attach_trace_sink(sink)
    inp = comp.new_input()
    out = []
    (
        Stream.from_input(inp)
        .select_many(str.split)
        .count_by(lambda w: w)
        .subscribe(lambda t, recs: out.extend(recs))
    )
    comp.build()
    inp.on_next(["a b a c", "b b a"])
    inp.on_next(["c a"])
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return comp, out


class TestTraceRoundTrip:
    def test_jsonl_round_trip_is_exact(self, tmp_path):
        sink = TraceSink()
        run_traced_wcc_like(sink)
        assert len(sink) > 0
        path = str(tmp_path / "trace.jsonl")
        written = sink.dump_jsonl(path)
        assert written == len(sink)
        reloaded = TraceSink.load_jsonl(path)
        # Bit-identical events: floats serialize via repr and reload
        # exactly, tuples keep their types.
        assert list(reloaded) == list(sink)

    def test_reloaded_trace_gives_identical_analyses(self, tmp_path):
        sink = TraceSink()
        run_traced_wcc_like(sink)
        path = str(tmp_path / "trace.jsonl")
        sink.dump_jsonl(path)
        reloaded = TraceSink.load_jsonl(path)
        original, again = list(sink), list(reloaded)
        assert critical_path(again).lines() == critical_path(original).lines()
        assert event_counts(again) == event_counts(original)
        assert frontier_trace(again) == frontier_trace(original)
        assert stage_timelines(again).keys() == stage_timelines(original).keys()
        assert worker_timelines(again).keys() == worker_timelines(original).keys()

    def test_trace_covers_the_expected_kinds(self):
        sink = TraceSink()
        run_traced_wcc_like(sink)
        counts = event_counts(list(sink))
        for kind in ("input", "activation", "deliver", "message", "frontier"):
            assert counts.get(kind, 0) > 0, counts
        # Every event maps into the SnailTrail activity vocabulary.
        assert all(e.activity != "unknown" for e in sink)

    def test_critical_path_spans_the_run(self):
        sink = TraceSink()
        comp, _ = run_traced_wcc_like(sink)
        summary = critical_path(list(sink))
        # The makespan covers the span window (first activation start to
        # last callback finish); trailing progress-only traffic can keep
        # the virtual clock running slightly past it.
        assert 0 < summary.makespan <= comp.now
        assert summary.segments > 0
        total = summary.processing + summary.communication + summary.waiting
        assert total == pytest.approx(summary.path_time)

    def test_reference_runtime_accepts_the_same_sink(self, tmp_path):
        comp = Computation()
        sink = TraceSink()
        comp.attach_trace_sink(sink)
        inp = comp.new_input()
        out = []
        (
            Stream.from_input(inp)
            .select_many(str.split)
            .count_by(lambda w: w)
            .subscribe(lambda t, recs: out.extend(recs))
        )
        comp.build()
        inp.on_next(["a b a"])
        inp.on_completed()
        comp.run()
        counts = event_counts(list(sink))
        for kind in ("input", "activation", "frontier"):
            assert counts.get(kind, 0) > 0, counts
        path = str(tmp_path / "ref.jsonl")
        sink.dump_jsonl(path)
        assert list(TraceSink.load_jsonl(path)) == list(sink)


class TestZeroOverheadWhenOff:
    def test_untraced_run_constructs_no_trace_events(self, monkeypatch):
        def forbidden(cls, *args, **kwargs):
            raise AssertionError(
                "TraceEvent constructed with tracing off: %r %r" % (args, kwargs)
            )

        monkeypatch.setattr(trace_mod.TraceEvent, "__new__", forbidden)
        comp, out = run_traced_wcc_like(sink=None)
        assert comp.drained()
        # Per-epoch counts: epoch 0 = "a b a c" + "b b a", epoch 1 = "c a".
        assert sorted(out) == [("a", 1), ("a", 3), ("b", 3), ("c", 1), ("c", 1)]

    def test_tracing_does_not_perturb_the_schedule(self):
        untraced, out_a = run_traced_wcc_like(sink=None)
        traced, out_b = run_traced_wcc_like(TraceSink())
        assert traced.now == untraced.now
        assert traced.sim.events_executed == untraced.sim.events_executed
        assert sorted(out_a) == sorted(out_b)

    def test_detach_stops_emission(self):
        comp = ClusterComputation(num_processes=2, workers_per_process=1)
        sink = TraceSink()
        comp.attach_trace_sink(sink)
        inp = comp.new_input()
        Stream.from_input(inp).count_by(lambda x: x).subscribe(lambda t, r: None)
        comp.build()
        inp.on_next([1, 2, 3])
        comp.run()
        recorded = len(sink)
        assert recorded > 0
        comp.attach_trace_sink(None)
        inp.on_completed()
        comp.run()
        assert comp.drained()
        assert len(sink) == recorded


class TestTraceEventSchema:
    def test_activity_distinguishes_progress_messages(self):
        data = TraceEvent("message", 0.0, 1e-4, 0.0, -1, 0, "", (), (0, 1, 64, "data"))
        progress = TraceEvent(
            "message", 0.0, 1e-4, 0.0, -1, 0, "", (), (0, 1, 64, "progress")
        )
        assert data.activity == "data message"
        assert progress.activity == "control message"

    def test_finish_is_start_plus_duration(self):
        event = TraceEvent("activation", 2.0, 0.5, 0.0, 0, 0, "s", (1,), ())
        assert event.finish == 2.5
