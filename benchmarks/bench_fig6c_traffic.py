"""Figure 6c (scoped): progress traffic under boundary-summary tracking.

Companion to ``bench_fig6c_progress.py``: that file sweeps the paper's
four *accumulation* strategies; this one fixes the best accumulation
("local+global") and sweeps the *dissemination* strategy introduced by
the scoped-progress redesign — ``progress_tracking="flat"`` (every
interior pointstamp broadcast, the paper's protocol) versus ``"scoped"``
(only boundary projections of summarized loop scopes cross the network,
batched on the Naiad-style update timer).

For each WCC preset the report records progress messages, progress
bytes, hold-scan evaluations and memoized hold verdicts, plus the
flat/scoped reduction factors.  The flagship 64-computer preset also
backs the CI regression guard (``-k budget``): scoped traffic must stay
under a recorded budget and at least 5x below the recorded flat
baseline (60,708 messages / 10.5 MB).
"""

from repro.lib import Stream
from repro.algorithms import weakly_connected_components
from repro.runtime import ClusterComputation
from repro.workloads import uniform_random_graph

from bench_harness import format_table, human_bytes, report

#: name -> (num_processes, workers_per_process, nodes, edges, seed)
PRESETS = {
    "wcc/8": (8, 2, 1250, 2500, 1),
    "wcc/16": (16, 2, 1250, 2500, 1),
    "wcc/64": (64, 2, 2000, 4000, 2),
}

#: Recorded flat baseline for wcc/64 (pre-redesign dissemination).
BASELINE_MESSAGES = 60_708
BASELINE_BYTES = 10_500_000

#: Regression budget for scoped wcc/64 (recorded: 1,215 msgs /
#: 301,360 bytes; ~2x headroom for cost-model drift).
BUDGET_MESSAGES = 3_000
BUDGET_BYTES = 800_000


def run_wcc(preset: str, tracking: str) -> dict:
    processes, workers, nodes, edges, seed = PRESETS[preset]
    comp = ClusterComputation(
        num_processes=processes,
        workers_per_process=workers,
        progress_mode="local+global",
        progress_tracking=tracking,
    )
    inp = comp.new_input()
    weakly_connected_components(Stream.from_input(inp)).subscribe(
        lambda t, recs: None
    )
    comp.build()
    inp.on_next(uniform_random_graph(nodes, edges, seed=seed))
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    evals = sum(node.hold_evals for node in comp.nodes)
    hits = sum(node.hold_memo_hits for node in comp.nodes)
    if comp.central is not None:
        evals += comp.central.hold_evals
        hits += comp.central.hold_memo_hits
    return {
        "messages": comp.network.stats.messages("progress"),
        "bytes": comp.network.stats.bytes("progress"),
        "hold_evals": evals,
        "memo_hits": hits,
    }


def test_fig6c_traffic(benchmark):
    def experiment():
        return {
            preset: {t: run_wcc(preset, t) for t in ("flat", "scoped")}
            for preset in PRESETS
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for preset, by_tracking in results.items():
        for tracking in ("flat", "scoped"):
            r = by_tracking[tracking]
            rate = r["memo_hits"] / max(1, r["memo_hits"] + r["hold_evals"])
            rows.append(
                [
                    preset,
                    tracking,
                    r["messages"],
                    human_bytes(r["bytes"]),
                    r["hold_evals"],
                    "%.1f%%" % (100 * rate),
                ]
            )
        flat, scoped = by_tracking["flat"], by_tracking["scoped"]
        rows.append(
            [
                preset,
                "ratio",
                "%.1fx" % (flat["messages"] / max(1, scoped["messages"])),
                "%.1fx" % (flat["bytes"] / max(1, scoped["bytes"])),
                "%.1fx" % (flat["hold_evals"] / max(1, scoped["hold_evals"])),
                "",
            ]
        )
    report(
        "fig6c_traffic",
        format_table(
            ["preset", "tracking", "progress msgs", "progress bytes",
             "hold evals", "memo hit rate"],
            rows,
        ),
    )

    for preset, by_tracking in results.items():
        flat, scoped = by_tracking["flat"], by_tracking["scoped"]
        # Boundary-summary dissemination wins on every preset, and the
        # memoized hold verdicts actually hit (the 0.0% regression).
        assert scoped["messages"] < flat["messages"]
        assert scoped["bytes"] < flat["bytes"]
        assert scoped["memo_hits"] > 0
    flagship = results["wcc/64"]["scoped"]
    assert flagship["messages"] * 5 <= BASELINE_MESSAGES
    assert flagship["bytes"] * 5 <= BASELINE_BYTES


def test_progress_traffic_budget():
    """CI regression guard: the flagship preset's scoped traffic stays
    under the recorded budget (and >=5x below the flat baseline)."""
    r = run_wcc("wcc/64", "scoped")
    assert r["messages"] <= BUDGET_MESSAGES, r
    assert r["bytes"] <= BUDGET_BYTES, r
    assert r["messages"] * 5 <= BASELINE_MESSAGES, r
    assert r["bytes"] * 5 <= BASELINE_BYTES, r
    assert r["memo_hits"] > 0, r
