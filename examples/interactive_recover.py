"""Mid-query failure recovery for the Figure 1 interactive app.

The paper's flagship application — streaming connected components over
user mentions joined with trending hashtags, queried interactively —
running on the simulated cluster with *asynchronous* checkpoints
(``FaultTolerance(checkpoint_mode="async")``).  A process is killed
while a query's epoch is still in flight: the marker-based cut lets the
runtime restore only the lost process's vertices and replay their
journal suffix while the survivors keep streaming, and the query is
still answered exactly — the same response batches, epoch by epoch, as
a run with no failure.

Run:  python examples/interactive_recover.py
"""

from repro.algorithms import hashtag_component_app
from repro.lib import Stream
from repro.runtime import ClusterComputation, FaultTolerance
from repro.workloads import TweetGenerator, TweetStreamConfig

EPOCHS = 6
TWEETS_PER_EPOCH = 60


def make_stream():
    generator = TweetGenerator(
        TweetStreamConfig(num_users=200, num_hashtags=15, seed=8)
    )
    epochs = []
    for epoch in range(EPOCHS):
        batch = generator.batch(TWEETS_PER_EPOCH)
        queries = [(generator.query(), "q%d" % epoch)]
        epochs.append((batch, queries))
    return epochs


def run(kill=None, crash=None, supervise=None):
    """The Figure 1 app under async checkpointing; optionally kill.

    ``kill`` is the oracle failure (the cluster is told immediately);
    ``crash`` is a *silent* failure that only a ``supervise``-attached
    heartbeat detector can notice (see ``repro.runtime.supervisor``).

    Returns ``(responses, comp)`` where ``responses`` maps each query
    epoch to the sorted ``(query_id, user, hashtag)`` answers.
    """
    comp = ClusterComputation(
        num_processes=4,
        workers_per_process=1,
        fault_tolerance=FaultTolerance(
            mode="checkpoint",
            checkpoint_every=2,
            checkpoint_mode="async",
            restart_delay=0.02,
        ),
    )
    tweets_in = comp.new_input("tweets")
    queries_in = comp.new_input("queries")
    responses = {}
    hashtag_component_app(
        Stream.from_input(tweets_in),
        Stream.from_input(queries_in),
        lambda t, batch: responses.setdefault(t.epoch, []).extend(batch),
        fresh=True,
    )
    comp.build()
    if supervise is not None:
        comp.attach_supervisor(None if supervise is True else supervise)
    if kill is not None:
        process, at = kill
        comp.kill_process(process, at=at)
    if crash is not None:
        process, at = crash
        comp.crash_process(process, at=at)
    for batch, queries in make_stream():
        tweets_in.on_next(batch)
        queries_in.on_next(queries)
    tweets_in.on_completed()
    queries_in.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    # Answers may arrive as several batches whose arrival order depends
    # on the schedule; the *set* of answers per epoch is the invariant.
    return {epoch: sorted(batch) for epoch, batch in responses.items()}, comp


def main():
    print("== failure-free run ==")
    expected, clean = run()
    for epoch in sorted(expected):
        for query_id, user, hashtag in expected[epoch]:
            print(
                "  [epoch %d] %s: user %s's component is talking about %s"
                % (epoch, query_id, user, hashtag or "(nothing yet)")
            )
    duration = clean.now
    print("  virtual duration: %.6f s" % duration)

    kill_at = duration * 0.5  # queries still in flight
    print()
    print("== same run, killing process 2 at t=%.6f s ==" % kill_at)
    responses, comp = run(kill=(2, kill_at))
    failure = comp.recovery.failures[0]
    print(
        "  failure: process %d at t=%.6f s; recovery mode=%s; "
        "restored from the cut at t=%.6f s; ready at t=%.6f s"
        % (
            failure["process"],
            failure["at"],
            failure["mode"],
            failure["restored_from"],
            failure["ready"],
        )
    )
    assert responses == expected, "recovery changed a query answer!"
    print()
    print(
        "every query answered identically to the failure-free run "
        "(mid-query recovery is invisible)."
    )


if __name__ == "__main__":
    main()
