"""Discrete-event simulation substrate for the distributed runtime.

See DESIGN.md ("The central substitution") for why the paper's physical
cluster is reproduced as a simulation: the phenomena the evaluation
measures are properties of the protocol state machines and dataflow
structure, which execute for real here, while time and bytes follow
calibrated models.
"""

from .des import Simulator
from .network import Network, NetworkConfig, TrafficStats

__all__ = ["Network", "NetworkConfig", "Simulator", "TrafficStats"]
