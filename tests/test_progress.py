"""Unit tests for repro.core.progress: occurrence/precursor counting."""


from repro.core import (
    Antichain,
    PathSummary,
    Pointstamp,
    ProgressState,
    Timestamp,
)


def ts(epoch, *counters):
    return Timestamp(epoch, tuple(counters))


def chain_summaries():
    """A three-location pipeline a -> b -> c at depth 0."""
    ident = Antichain([PathSummary.identity(0)])
    table = {}
    for pair in [("a", "b"), ("b", "c"), ("a", "c"), ("a", "a"), ("b", "b"), ("c", "c")]:
        table[pair] = ident
    return table


class TestOccurrenceCounting:
    def test_activation_and_deactivation(self):
        state = ProgressState(chain_summaries())
        p = Pointstamp(ts(0), "a")
        state.update(p, +1)
        assert state.is_active(p)
        state.update(p, -1)
        assert not state.is_active(p)
        assert len(state) == 0

    def test_counts_accumulate(self):
        state = ProgressState(chain_summaries())
        p = Pointstamp(ts(0), "a")
        state.update(p, +2)
        state.update(p, -1)
        assert state.is_active(p)
        state.update(p, -1)
        assert not state.is_active(p)

    def test_zero_delta_ignored(self):
        state = ProgressState(chain_summaries())
        state.update(Pointstamp(ts(0), "a"), 0)
        assert len(state) == 0

    def test_negative_transient_blocks(self):
        # Distributed runs can apply a -1 before the matching +1 arrives;
        # the pointstamp must still be treated as active (blocking).
        state = ProgressState(chain_summaries())
        p = Pointstamp(ts(0), "a")
        state.update(p, -1)
        assert state.is_active(p)
        state.update(p, +1)
        assert not state.is_active(p)

    def test_update_many(self):
        state = ProgressState(chain_summaries())
        state.update_many([(Pointstamp(ts(0), "a"), 1), (Pointstamp(ts(1), "b"), 1)])
        assert len(state) == 2


class TestFrontier:
    def test_upstream_blocks_downstream(self):
        state = ProgressState(chain_summaries())
        pa = Pointstamp(ts(0), "a")
        pc = Pointstamp(ts(0), "c")
        state.update(pa, +1)
        state.update(pc, +1)
        assert state.in_frontier(pa)
        assert not state.in_frontier(pc)
        state.update(pa, -1)
        assert state.in_frontier(pc)

    def test_later_time_blocked_same_location(self):
        state = ProgressState(chain_summaries())
        p0 = Pointstamp(ts(0), "b")
        p1 = Pointstamp(ts(1), "b")
        state.update(p0, +1)
        state.update(p1, +1)
        assert state.in_frontier(p0)
        assert not state.in_frontier(p1)

    def test_earlier_time_not_blocked_by_later(self):
        state = ProgressState(chain_summaries())
        p0 = Pointstamp(ts(0), "c")
        p1 = Pointstamp(ts(1), "a")
        state.update(p0, +1)
        state.update(p1, +1)
        # (1, a) could-result-in nothing at epoch 0, so (0, c) is free.
        assert state.in_frontier(p0)
        assert state.in_frontier(p1)

    def test_unrelated_locations_independent(self):
        # No (c, a) entry: c cannot reach a.
        state = ProgressState(chain_summaries())
        pc = Pointstamp(ts(0), "c")
        pa = Pointstamp(ts(5), "a")
        state.update(pc, +1)
        state.update(pa, +1)
        assert state.in_frontier(pc)
        assert state.in_frontier(pa)

    def test_frontier_listing(self):
        state = ProgressState(chain_summaries())
        state.update(Pointstamp(ts(0), "a"), +1)
        state.update(Pointstamp(ts(0), "b"), +1)
        assert state.frontier() == [Pointstamp(ts(0), "a")]
        assert set(state.active_pointstamps()) == {
            Pointstamp(ts(0), "a"),
            Pointstamp(ts(0), "b"),
        }

    def test_inactive_pointstamp_not_in_frontier(self):
        state = ProgressState(chain_summaries())
        assert not state.in_frontier(Pointstamp(ts(0), "a"))


class TestLoopFrontier:
    def loop_summaries(self):
        """body -> body around a feedback cycle at depth 1."""
        return {
            ("body", "body"): Antichain([PathSummary.identity(1)]),
        }

    def test_iteration_order(self):
        state = ProgressState(self.loop_summaries())
        p0 = Pointstamp(ts(0, 0), "body")
        p1 = Pointstamp(ts(0, 1), "body")
        state.update(p0, +1)
        state.update(p1, +1)
        assert state.in_frontier(p0)
        assert not state.in_frontier(p1)
        state.update(p0, -1)
        assert state.in_frontier(p1)

    def test_incomparable_iterations_both_free(self):
        state = ProgressState(self.loop_summaries())
        # (epoch 0, iter 5) and (epoch 1, iter 0) are incomparable.
        pa = Pointstamp(ts(0, 5), "body")
        pb = Pointstamp(ts(1, 0), "body")
        state.update(pa, +1)
        state.update(pb, +1)
        assert state.in_frontier(pa)
        assert state.in_frontier(pb)

    def test_could_result_in(self):
        state = ProgressState(self.loop_summaries())
        assert state.could_result_in(
            Pointstamp(ts(0, 0), "body"), Pointstamp(ts(0, 3), "body")
        )
        assert not state.could_result_in(
            Pointstamp(ts(0, 3), "body"), Pointstamp(ts(0, 0), "body")
        )
        assert not state.could_result_in(
            Pointstamp(ts(0, 0), "body"), Pointstamp(ts(0, 0), "nowhere")
        )
