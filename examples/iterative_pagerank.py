"""Iterative PageRank on the simulated distributed runtime (section 6.1).

Builds the source-partitioned PageRank dataflow — a loop context with a
feedback edge carrying rank contributions — and runs the identical
program twice: on the single-threaded reference runtime, and on a
simulated 8-computer cluster, reporting the modeled execution time and
network traffic alongside the (identical) results.

Run:  python examples/iterative_pagerank.py
"""

from repro import Computation
from repro.lib import Stream
from repro.algorithms import pagerank_vertex, pagerank_oracle
from repro.runtime import ClusterComputation
from repro.workloads import power_law_graph

ITERATIONS = 10


def run(comp, edges):
    inp = comp.new_input("edges")
    ranks = {}
    pagerank_vertex(Stream.from_input(inp), iterations=ITERATIONS).subscribe(
        lambda t, records: ranks.update(dict(records))
    )
    comp.build()
    inp.on_next(edges)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return ranks


def main():
    edges = power_law_graph(500, edges_per_node=4, seed=1)
    print("graph: %d edges, %d iterations" % (len(edges), ITERATIONS))

    reference = run(Computation(), edges)
    cluster = ClusterComputation(
        num_processes=8, workers_per_process=2, progress_mode="local+global"
    )
    distributed = run(cluster, edges)

    assert set(reference) == set(distributed)
    drift = max(abs(reference[n] - distributed[n]) for n in reference)
    assert drift < 1e-9, "runtimes must agree (up to FP summation order)"
    oracle = pagerank_oracle(edges, ITERATIONS)
    worst = max(abs(reference[n] - oracle[n]) for n in oracle)
    print(
        "runtimes agree (max FP drift %.1e); max |err| vs oracle: %.2e"
        % (drift, worst)
    )

    top = sorted(distributed.items(), key=lambda kv: -kv[1])[:5]
    print("top ranks:", ", ".join("%d=%.3f" % kv for kv in top))
    print("simulated cluster time: %.2f ms" % (cluster.now * 1e3))
    print(
        "data exchanged: %.1f KB, progress protocol: %.1f KB"
        % (
            cluster.network.stats.bytes("data") / 1024,
            cluster.network.stats.bytes("progress") / 1024,
        )
    )


if __name__ == "__main__":
    main()
