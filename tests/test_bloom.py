"""Tests for the asynchronous Bloom-style library (section 4.2)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro import Computation
from repro.lib import (
    Stream,
    async_distinct,
    async_join,
    monotonic_aggregate,
    transitive_closure,
)


def build(program):
    comp = Computation()
    inp = comp.new_input()
    out = []
    program(Stream.from_input(inp)).subscribe(lambda t, recs: out.extend(recs))
    comp.build()
    return comp, inp, out


class TestAsyncDistinct:
    def test_dedupes_across_epochs(self):
        comp, inp, out = build(lambda s: async_distinct(s))
        inp.on_next([1, 2, 1])
        inp.on_next([2, 3])
        inp.on_completed()
        comp.run()
        assert sorted(out) == [1, 2, 3]

    def test_no_notifications_used(self):
        comp, inp, out = build(lambda s: async_distinct(s))
        inp.on_next([1])
        inp.on_completed()
        comp.run()
        # Only the subscribe sink requests notifications.
        assert comp.delivered_notifications == 1


class TestAsyncJoin:
    def test_joins_across_epochs(self):
        comp = Computation()
        a, b = comp.new_input(), comp.new_input()
        out = []
        async_join(
            Stream.from_input(a),
            Stream.from_input(b),
            lambda x: x,
            lambda y: y,
            lambda x, y: (x, y),
        ).subscribe(lambda t, recs: out.extend(recs))
        comp.build()
        a.on_next([1])
        b.on_next([])
        comp.run()
        assert out == []
        a.on_next([])
        b.on_next([1])  # joins with the epoch-0 left record
        a.on_completed()
        b.on_completed()
        comp.run()
        assert out == [(1, 1)]

    def test_output_timestamp_is_lub(self):
        comp = Computation()
        a, b = comp.new_input(), comp.new_input()
        times = []
        async_join(
            Stream.from_input(a),
            Stream.from_input(b),
            lambda x: x,
            lambda y: y,
            lambda x, y: (x, y),
        ).subscribe(lambda t, recs: times.append(t.epoch))
        comp.build()
        a.on_next([7])
        b.on_next([])
        a.on_next([])
        b.on_next([7])
        a.on_completed()
        b.on_completed()
        comp.run()
        assert times == [1]  # lub(epoch 0, epoch 1)

    def test_context_mismatch_rejected(self):
        comp = Computation()
        a = Stream.from_input(comp.new_input())
        b = Stream.from_input(comp.new_input())
        with a.scoped_loop() as loop:
            loop.feed(loop.entered)
            with pytest.raises(ValueError):
                async_join(
                    loop.entered, b, lambda x: x, lambda y: y, lambda x, y: x
                )


class TestTransitiveClosure:
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx(self, edges):
        comp, inp, out = build(lambda s: transitive_closure(s))
        inp.on_next(edges)
        inp.on_completed()
        comp.run()
        g = nx.DiGraph(edges)
        # Reachability via paths of length >= 1 (includes (u, u) when u
        # sits on a cycle, which nx.descendants alone would miss).
        expected = set()
        for src in g.nodes:
            for succ in g.successors(src):
                expected.add((src, succ))
                for dst in nx.descendants(g, succ):
                    expected.add((src, dst))
        # TC emits derived pairs (paths of length >= 2 may duplicate
        # input edges); together with input edges it covers reachability.
        derived = set(out) | set(edges)
        assert expected <= derived
        # And it derives nothing unreachable.
        closure = expected | set(edges)
        assert set(out) <= closure

    def test_incremental_epochs(self):
        # Async state accumulates across epochs (the growing Datalog
        # database): an edge arriving later extends earlier paths, and
        # the derived pair appears at the lub epoch.
        comp, inp, out = build(lambda s: transitive_closure(s))
        inp.on_next([(0, 1)])
        comp.run()
        assert out == []
        inp.on_next([(1, 2)])
        inp.on_completed()
        comp.run()
        assert out == [(0, 2)]


class TestMonotonicAggregate:
    def test_emits_improvements_only(self):
        comp, inp, out = build(
            lambda s: monotonic_aggregate(
                s, key=lambda r: r[0], value=lambda r: r[1],
                better=lambda new, cur: new > cur,
            )
        )
        inp.on_next([("x", 1), ("x", 3), ("x", 2)])
        inp.on_next([("x", 5), ("x", 4)])
        inp.on_completed()
        comp.run()
        assert out == [("x", 1), ("x", 3), ("x", 5)]

    def test_state_persists_across_epochs(self):
        comp, inp, out = build(
            lambda s: monotonic_aggregate(
                s, key=lambda r: r[0], value=lambda r: r[1],
                better=lambda new, cur: new < cur,
            )
        )
        inp.on_next([("k", 10)])
        inp.on_next([("k", 20)])  # not an improvement
        inp.on_completed()
        comp.run()
        assert out == [("k", 10)]
