"""The unified runtime control surface (`TimelyRuntime`).

Both runtimes — the single-threaded reference scheduler
(:class:`repro.core.Computation`) and the simulated distributed cluster
(:class:`repro.runtime.ClusterComputation`) — implement this ABC, so
drivers, tests and benchmarks can be written once and parametrized over
either.  The shared surface is deliberately small:

``run(max_steps=None, until=None)``
    drive the computation; ``max_steps`` bounds delivered events,
    ``until`` bounds virtual time (accepted everywhere, meaningful only
    where a virtual clock exists).
``step()``
    deliver one event; False when nothing can run now.
``drained()``
    True when no work remains anywhere.
``frontier()``
    the current frontier of active pointstamps (a conservative,
    process-0 view on the cluster).
``checkpoint()`` / ``restore(snapshot)``
    the section 3.4 fault-tolerance cycle.
``attach_trace_sink(sink)``
    start emitting :class:`repro.obs.TraceEvent` records into ``sink``;
    both runtimes accept the same sink object.
``debug_state()``
    a structured :class:`RuntimeDebugState` snapshot whose ``str()``
    keeps the historical human-readable rendering.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class TimelyRuntime(abc.ABC):
    """Abstract control API shared by every timely dataflow runtime."""

    @abc.abstractmethod
    def run(
        self, max_steps: Optional[int] = None, until: Optional[float] = None
    ):
        """Deliver events until quiescent, ``max_steps`` events, or
        (where a virtual clock exists) virtual time ``until``."""

    @abc.abstractmethod
    def step(self) -> bool:
        """Deliver one event; False when no work can currently run."""

    @abc.abstractmethod
    def drained(self) -> bool:
        """True when no events remain anywhere in the computation."""

    @abc.abstractmethod
    def frontier(self) -> List[Any]:
        """The current frontier of active pointstamps."""

    @abc.abstractmethod
    def checkpoint(self) -> Dict[str, Any]:
        """Produce a consistent snapshot of the computation."""

    @abc.abstractmethod
    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Reset the computation to a :meth:`checkpoint` snapshot."""

    @abc.abstractmethod
    def attach_trace_sink(self, sink) -> None:
        """Emit trace events into ``sink`` (None detaches)."""


@dataclass
class RuntimeDebugState:
    """Structured introspection snapshot (see ``debug_state()``).

    ``str()`` of this object reproduces the free-form text the API
    returned historically, and ``in`` tests against that text keep
    working, so existing callers that treated the result as a string
    are unaffected.
    """

    #: Concrete runtime class name ("Computation", "ClusterComputation").
    runtime: str
    #: Virtual cluster time; None on runtimes without a virtual clock.
    now: Optional[float] = None
    #: Undelivered simulator events (0 for the reference runtime).
    pending_events: int = 0
    #: Messages delivered so far.
    delivered_messages: int = 0
    #: Notifications delivered so far.
    delivered_notifications: int = 0
    #: Queued-but-undelivered messages.
    queued_messages: int = 0
    #: Outstanding notification requests.
    pending_notifications: int = 0
    #: Fault-tolerance facts: mode, recovery policy, draining flag,
    #: checkpoint/journal counters (empty when FT is not configured).
    fault_tolerance: Dict[str, Any] = field(default_factory=dict)
    #: Processes currently without live workers.
    dead_processes: Tuple[int, ...] = ()
    #: One record per injected failure.
    failures: Tuple[Dict[str, Any], ...] = ()
    #: ``(worker, process, queue length)`` for workers with work.
    busy_workers: Tuple[Tuple[int, int, int], ...] = ()
    #: Summarized frontier: ``(epoch, *counters)`` tuples, sorted.
    frontier: Tuple[Tuple[int, ...], ...] = ()
    #: The historical human-readable rendering.
    text: str = ""

    def __str__(self) -> str:
        return self.text

    def __contains__(self, item: str) -> bool:
        return item in self.text
