"""Integration tests for the single-threaded reference runtime.

Includes the paper's Figure 4 DistinctCount vertex and a recording
harness that asserts the core notification-safety guarantee: on_notify(t)
happens only after every on_recv at times t' <= t.
"""

import pytest

from repro.core import Computation, Timestamp, TimestampViolation, Vertex


def ts(epoch, *counters):
    return Timestamp(epoch, tuple(counters))


class Collect(Vertex):
    # The sink is an external list shared with the test; it must survive
    # checkpoint/restore untouched rather than being deep-copied.
    _TRANSIENT_ATTRS = Vertex._TRANSIENT_ATTRS + ("sink",)

    def __init__(self, sink):
        super().__init__()
        self.sink = sink

    def on_recv(self, port, records, t):
        self.sink.append((t, list(records)))


class DistinctCount(Vertex):
    """Figure 4 of the paper, transliterated."""

    def __init__(self):
        super().__init__()
        self.counts = {}

    def on_recv(self, port, records, t):
        if t not in self.counts:
            self.counts[t] = {}
            self.notify_at(t)
        for msg in records:
            if msg not in self.counts[t]:
                self.counts[t][msg] = 0
                self.send_by(0, [msg], t)
            self.counts[t][msg] += 1

    def on_notify(self, t):
        self.send_by(1, sorted(self.counts.pop(t).items()), t)


def build_distinct_count():
    comp = Computation()
    inp = comp.new_input("in")
    dc = comp.add_stage("distinct-count", DistinctCount, 1, 2)
    distinct, counts = [], []
    comp.connect(inp.stage, dc)
    comp.connect(dc, comp.add_stage("d", lambda: Collect(distinct), 1, 0), src_port=0)
    comp.connect(dc, comp.add_stage("c", lambda: Collect(counts), 1, 0), src_port=1)
    comp.build()
    return comp, inp, distinct, counts


class TestDistinctCount:
    def test_two_epochs(self):
        comp, inp, distinct, counts = build_distinct_count()
        inp.on_next(["a", "b", "a"])
        inp.on_next(["b", "b"])
        inp.on_completed()
        comp.run()
        assert [(t.epoch, r) for t, r in counts] == [
            (0, [("a", 2), ("b", 1)]),
            (1, [("b", 2)]),
        ]
        assert sorted(r for t, rs in distinct if t.epoch == 0 for r in rs) == ["a", "b"]
        assert comp.drained()

    def test_distinct_emitted_before_epoch_completes(self):
        comp, inp, distinct, counts = build_distinct_count()
        inp.on_next(["x"])
        # Do not complete further epochs: the count for epoch 0 can be
        # notified (epoch 0's input pointstamp was retired by on_next),
        # but run only messages first to observe low-latency output.
        comp.run()
        assert distinct and distinct[0][1] == ["x"]
        assert counts and counts[0][1] == [("x", 1)]

    def test_empty_epoch(self):
        comp, inp, distinct, counts = build_distinct_count()
        inp.on_next([])
        inp.on_next(["z"])
        inp.on_completed()
        comp.run()
        assert [(t.epoch, r) for t, r in counts] == [(1, [("z", 1)])]

    def test_input_after_close_rejected(self):
        comp, inp, _, _ = build_distinct_count()
        inp.on_completed()
        with pytest.raises(RuntimeError):
            inp.on_next(["a"])

    def test_on_completed_idempotent(self):
        comp, inp, _, _ = build_distinct_count()
        inp.on_completed()
        inp.on_completed()
        comp.run()
        assert comp.drained()


class RecordingVertex(Vertex):
    """Logs every callback; used to check notification safety."""

    def __init__(self, log, name, emit=None, request=True):
        super().__init__()
        self.log = log
        self.name = name
        self.emit = emit
        self.request = request
        self.requested = set()

    def on_recv(self, port, records, t):
        self.log.append(("recv", self.name, t, tuple(records)))
        if self.request and t not in self.requested:
            self.requested.add(t)
            self.notify_at(t)
        if self.emit is not None:
            out = self.emit(port, records, t)
            for out_port, out_records in out:
                if out_records:
                    self.send_by(out_port, out_records, t)

    def on_notify(self, t):
        self.log.append(("notify", self.name, t, ()))


def assert_notification_safety(log):
    """No on_recv at t' <= t for a vertex after its on_notify(t)."""
    notified = {}
    for kind, name, t, _ in log:
        if kind == "notify":
            notified.setdefault(name, []).append(t)
        else:
            for earlier in notified.get(name, ()):
                assert not (
                    t.depth == earlier.depth and t.less_equal(earlier)
                ), "on_recv(%r) after on_notify(%r) at %s" % (t, earlier, name)


class TestNotificationSafety:
    def test_pipeline(self):
        comp = Computation()
        inp = comp.new_input()
        log = []
        a = comp.add_stage("a", lambda: RecordingVertex(
            log, "a", emit=lambda p, r, t: [(0, [x + 1 for x in r])]), 1, 1)
        b = comp.add_stage("b", lambda: RecordingVertex(log, "b"), 1, 0)
        comp.connect(inp.stage, a)
        comp.connect(a, b)
        comp.build()
        for epoch in range(4):
            inp.on_next([epoch, epoch * 10])
        inp.on_completed()
        comp.run()
        assert_notification_safety(log)
        assert comp.drained()
        # b must see exactly one notification per epoch.
        assert sum(1 for k, n, _, _ in log if k == "notify" and n == "b") == 4

    def test_loop_iterations_notified_in_order(self):
        comp = Computation()
        inp = comp.new_input()
        log = []
        loop = comp.new_loop_context()
        ing = comp.add_ingress(loop)
        body = comp.graph.new_stage(
            "body",
            lambda s, w: RecordingVertex(
                log, "body",
                emit=lambda p, r, t: [(0, [x - 1 for x in r if x > 0])],
            ),
            2, 1, context=loop,
        )
        fb = comp.add_feedback(loop)
        comp.connect(inp.stage, ing)
        comp.connect(ing, body, dst_port=0)
        comp.connect(body, fb)
        comp.connect(fb, body, dst_port=1)
        comp.build()
        inp.on_next([3])
        inp.on_completed()
        comp.run()
        assert_notification_safety(log)
        body_notifies = [t for k, n, t, _ in log if k == "notify" and n == "body"]
        # One per non-empty iteration, in increasing iteration order.
        iters = [t.counters[0] for t in body_notifies]
        assert iters == sorted(iters)
        assert len(iters) >= 3
        assert comp.drained()

    def test_interleaved_epochs_still_safe(self):
        comp = Computation()
        inp = comp.new_input()
        log = []
        a = comp.add_stage("a", lambda: RecordingVertex(log, "a"), 1, 0)
        comp.connect(inp.stage, a)
        comp.build()
        inp.on_next([1])
        inp.on_next([2])
        comp.run()
        inp.on_next([3])
        inp.on_completed()
        comp.run()
        assert_notification_safety(log)
        assert comp.drained()


class TestCausalityEnforcement:
    class BadVertex(Vertex):
        def __init__(self, mode):
            super().__init__()
            self.mode = mode

        def on_recv(self, port, records, t):
            if self.mode == "send":
                self.send_by(0, records, Timestamp(max(0, t.epoch - 1)))
            else:
                self.notify_at(Timestamp(max(0, t.epoch - 1)))

    @pytest.mark.parametrize("mode", ["send", "notify"])
    def test_backwards_in_time_rejected(self, mode):
        comp = Computation()
        inp = comp.new_input()
        bad = comp.add_stage("bad", lambda: TestCausalityEnforcement.BadVertex(mode), 1, 1)
        comp.connect(inp.stage, bad)
        comp.build()
        inp.on_next(["x"])
        inp.on_next(["y"])
        with pytest.raises(TimestampViolation):
            comp.run()


class TestCheckpointRestore:
    def test_roundtrip_preserves_results(self):
        comp, inp, distinct, counts = build_distinct_count()
        inp.on_next(["a", "b"])
        comp.run()
        snapshot = comp.checkpoint()
        baseline_counts = list(counts)

        # Diverge: feed another epoch and drain.
        inp.on_next(["c"])
        inp.on_completed()
        comp.run()
        assert len(counts) > len(baseline_counts)

        # Restore and replay the same input: results must match.
        del counts[len(baseline_counts):]
        comp.restore(snapshot)
        inp.on_next(["c"])
        inp.on_completed()
        comp.run()
        assert [(t.epoch, r) for t, r in counts] == [
            (0, [("a", 1), ("b", 1)]),
            (1, [("c", 1)]),
        ]
        assert comp.drained()

    def test_checkpoint_flushes_messages(self):
        comp, inp, distinct, counts = build_distinct_count()
        inp.on_next(["a"])
        # No run(): messages are still queued.
        comp.checkpoint()
        # Flushing delivered the messages (but not notifications).
        assert distinct and distinct[0][1] == ["a"]

    def test_vertex_default_checkpoint_roundtrip(self):
        v = DistinctCount()
        v.counts = {ts(0): {"a": 2}}
        state = v.checkpoint()
        v.counts = {}
        v.restore(state)
        assert v.counts == {ts(0): {"a": 2}}


class TestSchedulerBasics:
    def test_step_before_build_raises(self):
        comp = Computation()
        comp.new_input()
        with pytest.raises(RuntimeError):
            comp.step()

    def test_run_returns_step_count(self):
        comp, inp, _, _ = build_distinct_count()
        inp.on_next(["a"])
        steps = comp.run()
        assert steps == comp.delivered_messages + comp.delivered_notifications

    def test_max_steps(self):
        comp, inp, _, _ = build_distinct_count()
        inp.on_next(["a", "b", "c"])
        assert comp.run(max_steps=1) == 1

    def test_frontier_exposed(self):
        comp, inp, _, _ = build_distinct_count()
        assert comp.frontier()  # input pointstamp at epoch 0
        inp.on_completed()
        comp.run()
        assert comp.frontier() == []

    def test_messages_delivered_before_notifications(self):
        comp, inp, distinct, counts = build_distinct_count()
        inp.on_next(["a"])
        inp.on_completed()
        order = []
        while comp.step():
            order.append((comp.delivered_messages, comp.delivered_notifications))
        # The first steps are all message deliveries.
        first_notify = next(i for i, (m, n) in enumerate(order) if n > 0)
        assert all(n == 0 for m, n in order[:first_notify])
