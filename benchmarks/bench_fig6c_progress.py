"""Figure 6c: progress-protocol traffic under accumulation strategies.

The paper runs weakly connected components on a random graph and counts
progress-protocol bytes under four configurations: no accumulation
("None"), cluster-level ("GlobalAcc"), computer-level ("LocalAcc") and
both.  Accumulation cuts traffic by one to two orders of magnitude, and
local accumulation alone captures most of the benefit.

Same experiment, scaled: WCC over a random graph on the simulated
cluster, one line per protocol mode, bytes from the network's traffic
accounting.
"""

from repro.lib import Stream
from repro.algorithms import weakly_connected_components
from repro.runtime import ClusterComputation
from repro.workloads import uniform_random_graph

from bench_harness import format_table, human_bytes, report

MODES = ["none", "global", "local", "local+global"]
COMPUTERS = [2, 4, 8]
EDGES = 2500


def run_wcc(num_computers: int, mode: str) -> int:
    edges = uniform_random_graph(EDGES // 2, EDGES, seed=1)
    comp = ClusterComputation(
        num_processes=num_computers,
        workers_per_process=2,
        progress_mode=mode,
    )
    inp = comp.new_input()
    weakly_connected_components(Stream.from_input(inp)).subscribe(
        lambda t, recs: None
    )
    comp.build()
    inp.on_next(edges)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return comp.network.stats.bytes("progress")


def test_fig6c_progress_traffic(benchmark):
    def experiment():
        return {
            mode: {c: run_wcc(c, mode) for c in COMPUTERS} for mode in MODES
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["computers"] + MODES,
        [
            [c] + [human_bytes(results[mode][c]) for mode in MODES]
            for c in COMPUTERS
        ],
    )
    report("fig6c_progress_traffic", table)

    largest = COMPUTERS[-1]
    none = results["none"][largest]
    local = results["local"][largest]
    both = results["local+global"][largest]
    glob = results["global"][largest]
    # Accumulation reduces traffic by one-to-two orders of magnitude
    # (the paper's phrasing: "one or two orders of magnitude, depending
    # on whether the accumulation is performed at the computer level,
    # at the cluster level, or both").
    assert none / local > 5
    assert none / both > 20
    # Global-only accumulation also helps, though less than local
    # (each worker batch still crosses the network to the central
    # accumulator before netting).
    assert glob < none
    # The paper: "little difference ... with and without global
    # accumulation; local accumulation is sufficient" — local and
    # local+global land within a small factor of each other.
    assert 0.2 < local / both < 5
    # Traffic grows with cluster size in every mode (broadcasts).
    for mode in MODES:
        assert results[mode][COMPUTERS[-1]] > results[mode][COMPUTERS[0]]
