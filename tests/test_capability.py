"""Tests for guarantee/capability-decoupled notifications (section 2.4).

``notify_at(t, capability=False)`` requests a "state purging"
notification: guaranteed not to fire before time ``t`` completes, but
holding no pointstamp — so it never delays other notifications and may
not produce events.
"""

import pytest

from repro import Computation, Timestamp, Vertex
from repro.core import TimestampViolation
from repro.lib import Stream
from repro.runtime import ClusterComputation


class PurgingVertex(Vertex):
    """Forwards eagerly; uses a capability-free notification to purge."""

    # The log is shared with the test; keep it out of checkpoints and
    # pin the vertex to the coordinator under the multiprocessing
    # backend so the driver-side list actually sees the appends.
    coordinator_only = True
    _TRANSIENT_ATTRS = Vertex._TRANSIENT_ATTRS + ("log",)

    def __init__(self, log):
        super().__init__()
        self.log = log
        self.state = {}

    def on_recv(self, port, records, t):
        if t not in self.state:
            self.state[t] = 0
            self.notify_at(t, capability=False)
        self.state[t] += len(records)
        self.send_by(0, records, t)

    def on_notify(self, t):
        self.log.append(("purge", self.worker, t.epoch, self.state.pop(t)))


def build(cluster=False):
    comp = ClusterComputation(2, 2) if cluster else Computation()
    inp = comp.new_input()
    log = []
    stage = comp.graph.new_stage(
        "purging", lambda s, w: PurgingVertex(log), 1, 1
    )
    Stream.from_input(inp).connect_to(stage, 0)
    out = Stream(comp, stage, 0).collect()
    comp.build()
    return comp, inp, log, out


class TestReferenceRuntime:
    def test_purge_fires_after_epoch_completes(self):
        comp, inp, log, out = build()
        inp.on_next([1, 2, 3])
        comp.run()
        assert log == [("purge", 0, 0, 3)]

    def test_purge_does_not_block_downstream(self):
        # A capability-free notification holds no pointstamp: the
        # downstream subscriber's epoch completes regardless of whether
        # the purge has been delivered.
        comp, inp, log, out = build()
        inp.on_next([7])
        # Deliver the message and the downstream notification only.
        while comp._message_queue or any(
            comp.progress.in_frontier(p) for p in comp._pending_notifications
        ):
            comp.step()
        assert [t.epoch for t, _ in out] == [0]

    def test_purge_callback_cannot_send(self):
        comp = Computation()
        inp = comp.new_input()
        log = []

        class BadPurge(PurgingVertex):
            def on_notify(self, t):
                self.send_by(0, ["oops"], t)

        stage = comp.graph.new_stage("bad", lambda s, w: BadPurge(log), 1, 1)
        Stream.from_input(inp).connect_to(stage, 0)
        Stream(comp, stage, 0).collect()
        comp.build()
        inp.on_next([1])
        with pytest.raises(TimestampViolation):
            comp.run()

    def test_purge_callback_cannot_request_notification(self):
        comp = Computation()
        inp = comp.new_input()
        log = []

        class BadPurge(PurgingVertex):
            def on_notify(self, t):
                self.notify_at(Timestamp(t.epoch + 1))

        stage = comp.graph.new_stage("bad", lambda s, w: BadPurge(log), 1, 1)
        Stream.from_input(inp).connect_to(stage, 0)
        Stream(comp, stage, 0).collect()
        comp.build()
        inp.on_next([1])
        with pytest.raises(TimestampViolation):
            comp.run()

    def test_ordering_guarantee_still_holds(self):
        # The purge for epoch e never fires before epoch e's messages.
        comp, inp, log, out = build()
        for e in range(4):
            inp.on_next([e])
        inp.on_completed()
        comp.run()
        assert [entry[2] for entry in log] == [0, 1, 2, 3]
        assert all(entry[3] == 1 for entry in log)

    def test_checkpoint_preserves_pending_cleanups(self):
        comp, inp, log, out = build()
        inp.on_next([1])
        snapshot = comp.checkpoint()
        assert snapshot["cleanups"] or comp._pending_cleanups
        comp.restore(snapshot)
        comp.run()
        assert ("purge", 0, 0, 1) in log


class TestClusterRuntime:
    def test_purges_fire_on_every_worker(self):
        comp, inp, log, out = build(cluster=True)
        inp.on_next(list(range(8)))
        inp.on_completed()
        comp.run()
        assert comp.drained()
        # Every worker that received records purged exactly its share.
        assert sum(entry[3] for entry in log) == 8
        assert all(entry[2] == 0 for entry in log)

    def test_no_protocol_traffic_for_cleanups(self):
        # Compare progress bytes against the same vertex using a full
        # notification: the capability-free version must emit fewer
        # progress updates.
        def run(capability):
            comp = ClusterComputation(2, 2)
            inp = comp.new_input()

            class V(Vertex):
                def __init__(self):
                    super().__init__()
                    self.seen = set()

                def on_recv(self, port, records, t):
                    if t not in self.seen:
                        self.seen.add(t)
                        self.notify_at(t, capability=capability)
                    self.send_by(0, records, t)

            stage = comp.graph.new_stage("v", lambda s, w: V(), 1, 1)
            Stream.from_input(inp).connect_to(stage, 0)
            Stream(comp, stage, 0).collect()
            comp.build()
            for e in range(5):
                inp.on_next([e])
            inp.on_completed()
            comp.run()
            assert comp.drained()
            return comp.network.stats.bytes("progress")

        assert run(capability=False) < run(capability=True)
