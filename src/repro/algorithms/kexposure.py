"""The k-exposure metric from Kineograph (section 6.3, Figure 7c).

k-exposure identifies controversial topics on Twitter by counting, per
hashtag, how many distinct users have been *exposed* to it — a user is
exposed when someone they follow tweets the tag.  The paper implements
it "in 26 lines of code using standard data parallel operators of
Distinct, Join, and Count", which is exactly the pipeline here:

1. join tweets ``(tweeter, hashtag)`` with follower edges
   ``(follower, followee)`` on the tweeting user;
2. distinct ``(follower, hashtag)`` exposure pairs;
3. count exposures per hashtag.

Per-epoch semantics give Kineograph-style consistent snapshots: each
epoch's output reflects exactly the tweets ingested in that epoch.
"""

from __future__ import annotations


from ..lib.incremental import Collection
from ..lib.stream import Stream


def k_exposure(
    tweets: Stream,
    followers: Stream,
    name: str = "kexposure",
) -> Stream:
    """``(hashtag, exposed_user_count)`` per epoch.

    ``tweets`` carries ``(user, hashtag)`` pairs; ``followers`` carries
    ``(follower, followee)`` pairs (an edge per follow relationship,
    re-suppliable each epoch or joined against a static snapshot).
    """
    exposures = tweets.join(
        followers,
        left_key=lambda tweet: tweet[0],       # tweeting user
        right_key=lambda edge: edge[1],        # followee
        result=lambda tweet, edge: (edge[0], tweet[1]),  # (follower, tag)
        name="%s.join" % name,
    )
    return (
        exposures.distinct(name="%s.distinct" % name)
        .count_by(lambda pair: pair[1], name="%s.count" % name)
    )


def k_exposure_incremental(
    tweets: Collection,
    followers: Collection,
    name: str = "kexposure_inc",
) -> Collection:
    """Streaming k-exposure over incremental collections (section 6.3).

    The follower graph accumulates (fed once, or grown over time) and
    each epoch of tweets produces *diffs* to the per-hashtag exposure
    counts — Naiad's consistent-epoch answer to Kineograph's periodic
    snapshots.
    """
    exposures = tweets.join(
        followers,
        left_key=lambda tweet: tweet[0],
        right_key=lambda edge: edge[1],
        result=lambda tweet, edge: (edge[0], tweet[1]),
        name="%s.join" % name,
    )
    return exposures.distinct(name="%s.distinct" % name).count_by(
        lambda pair: pair[1], name="%s.count" % name
    )
