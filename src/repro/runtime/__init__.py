"""The simulated distributed runtime (paper section 3).

Exports :class:`ClusterComputation` (drop-in for
:class:`repro.core.Computation`), the cost/fault-tolerance policies,
the checkpoint/recovery machinery and the synthetic-record helpers
used by benchmarks.
"""

from .async_checkpoint import MARKER_BYTES, AsyncCheckpointManager
from .checkpoint import RECOVERY_POLICIES, RecoveryManager
from .cluster import ClusterComputation, CostModel, FaultTolerance
from .protocol import PROTOCOL_MODES, UPDATE_WIRE_BYTES
from .rescale import AutoscalePolicy, Autoscaler
from .supervisor import PhiAccrualDetector, Supervisor, SupervisorConfig
from .synthetic import SyntheticRecords, batch_bytes, record_count

__all__ = [
    "AsyncCheckpointManager",
    "AutoscalePolicy",
    "Autoscaler",
    "ClusterComputation",
    "MARKER_BYTES",
    "CostModel",
    "FaultTolerance",
    "PROTOCOL_MODES",
    "PhiAccrualDetector",
    "RECOVERY_POLICIES",
    "RecoveryManager",
    "Supervisor",
    "SupervisorConfig",
    "SyntheticRecords",
    "UPDATE_WIRE_BYTES",
    "batch_bytes",
    "record_count",
]
