"""Unit tests for repro.core.graph: structure, validation, summaries."""

import pytest

from repro.core import (
    DataflowGraph,
    GraphValidationError,
    PathSummary,
    StageKind,
)
from repro.core.vertex import ForwardingVertex


def fwd(stage, worker):
    return ForwardingVertex()


class TestConstruction:
    def test_stage_and_connector(self):
        g = DataflowGraph()
        a = g.new_stage("a", fwd, 0, 1)
        b = g.new_stage("b", fwd, 1, 0)
        c = g.connect(a, 0, b, 0)
        assert a.outputs[0] == [c]
        assert b.inputs[0] is c
        assert c.depth == 0

    def test_fan_out_allowed(self):
        g = DataflowGraph()
        a = g.new_stage("a", fwd, 0, 1)
        b = g.new_stage("b", fwd, 1, 0)
        c = g.new_stage("c", fwd, 1, 0)
        g.connect(a, 0, b, 0)
        g.connect(a, 0, c, 0)
        assert len(a.outputs[0]) == 2

    def test_double_connect_input_rejected(self):
        g = DataflowGraph()
        a = g.new_stage("a", fwd, 0, 1)
        b = g.new_stage("b", fwd, 1, 0)
        g.connect(a, 0, b, 0)
        with pytest.raises(GraphValidationError):
            g.connect(a, 0, b, 0)

    def test_bad_ports_rejected(self):
        g = DataflowGraph()
        a = g.new_stage("a", fwd, 0, 1)
        b = g.new_stage("b", fwd, 1, 0)
        with pytest.raises(GraphValidationError):
            g.connect(a, 1, b, 0)
        with pytest.raises(GraphValidationError):
            g.connect(a, 0, b, 5)

    def test_system_stage_requires_context(self):
        g = DataflowGraph()
        with pytest.raises(GraphValidationError):
            g.new_stage("i", fwd, 1, 1, StageKind.INGRESS)

    def test_input_stage_must_be_top_level(self):
        g = DataflowGraph()
        loop = g.new_loop_context()
        with pytest.raises(GraphValidationError):
            g.new_stage("in", None, 0, 1, StageKind.INPUT, loop)

    def test_frozen_graph_rejects_mutation(self):
        g = DataflowGraph()
        g.new_stage("a", fwd, 0, 1)  # unconnected output is fine
        g.freeze()
        with pytest.raises(GraphValidationError):
            g.new_stage("b", fwd, 0, 1)

    def test_freeze_idempotent(self):
        g = DataflowGraph()
        g.new_stage("a", fwd, 0, 0)
        g.freeze()
        g.freeze()
        assert g.frozen


class TestContexts:
    def build_loop(self):
        g = DataflowGraph()
        loop = g.new_loop_context()
        src = g.new_stage("src", fwd, 0, 1)
        ing = g.new_stage("ing", fwd, 1, 1, StageKind.INGRESS, loop)
        body = g.new_stage("body", fwd, 2, 2, StageKind.NORMAL, loop)
        fb = g.new_stage("fb", fwd, 1, 1, StageKind.FEEDBACK, loop)
        eg = g.new_stage("eg", fwd, 1, 1, StageKind.EGRESS, loop)
        out = g.new_stage("out", fwd, 1, 0)
        g.connect(src, 0, ing, 0)
        g.connect(ing, 0, body, 0)
        g.connect(body, 0, fb, 0)
        g.connect(fb, 0, body, 1)
        g.connect(body, 1, eg, 0)
        g.connect(eg, 0, out, 0)
        return g, dict(src=src, ing=ing, body=body, fb=fb, eg=eg, out=out, loop=loop)

    def test_depths(self):
        g, s = self.build_loop()
        assert s["src"].input_depth == 0 and s["src"].output_depth == 0
        assert s["ing"].input_depth == 0 and s["ing"].output_depth == 1
        assert s["body"].input_depth == 1 and s["body"].output_depth == 1
        assert s["eg"].input_depth == 1 and s["eg"].output_depth == 0
        assert s["fb"].input_depth == 1 and s["fb"].output_depth == 1

    def test_nested_context_depth(self):
        g = DataflowGraph()
        outer = g.new_loop_context()
        inner = g.new_loop_context(parent=outer)
        assert outer.depth == 1
        assert inner.depth == 2

    def test_context_crossing_rejected(self):
        g = DataflowGraph()
        loop = g.new_loop_context()
        src = g.new_stage("src", fwd, 0, 1)
        body = g.new_stage("body", fwd, 1, 1, StageKind.NORMAL, loop)
        with pytest.raises(GraphValidationError):
            g.connect(src, 0, body, 0)

    def test_cycle_without_feedback_rejected(self):
        g = DataflowGraph()
        loop = g.new_loop_context()
        a = g.new_stage("a", fwd, 1, 1, StageKind.NORMAL, loop)
        b = g.new_stage("b", fwd, 1, 1, StageKind.NORMAL, loop)
        g.connect(a, 0, b, 0)
        g.connect(b, 0, a, 0)
        with pytest.raises(GraphValidationError):
            g.freeze()

    def test_unconnected_input_rejected(self):
        g = DataflowGraph()
        g.new_stage("b", fwd, 1, 0)
        with pytest.raises(GraphValidationError):
            g.freeze()

    def test_summaries_for_loop(self):
        g, s = self.build_loop()
        g.freeze()
        table = g.summaries
        # Around the cycle: body reaches itself minimally via identity.
        assert list(table[(s["body"], s["body"])]) == [PathSummary.identity(1)]
        # src reaches out with identity at depth 0.
        assert list(table[(s["src"], s["out"])]) == [PathSummary.identity(0)]
        # fb -> body summary includes the increment.
        fb_to_body = table[(s["fb"], s["body"])]
        assert list(fb_to_body) == [PathSummary.feedback(1)]
        # No path from out back to src.
        assert (s["out"], s["src"]) not in table

    def test_timestamp_actions(self):
        g, s = self.build_loop()
        assert s["ing"].timestamp_action() == PathSummary.ingress(0)
        assert s["eg"].timestamp_action() == PathSummary.egress(1)
        assert s["fb"].timestamp_action() == PathSummary.feedback(1)
        assert s["body"].timestamp_action() == PathSummary.identity(1)

    def test_summaries_require_freeze(self):
        g = DataflowGraph()
        with pytest.raises(GraphValidationError):
            g.summaries

    def test_input_stages_listed(self):
        g = DataflowGraph()
        inp = g.new_stage("in", None, 0, 1, StageKind.INPUT)
        sink = g.new_stage("sink", fwd, 1, 0)
        g.connect(inp, 0, sink, 0)
        assert g.input_stages() == [inp]
