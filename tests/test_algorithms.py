"""Tests for the section 5/6 applications against plain-Python oracles."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Computation
from repro.lib import Stream
from repro.lib.allreduce import allreduce, tree_allreduce
from repro.algorithms import (
    app_oracle,
    approximate_shortest_paths,
    asp_oracle,
    hashtag_component_app,
    k_exposure,
    logistic_oracle,
    logistic_regression,
    make_dataset,
    pagerank_edge,
    pagerank_oracle,
    pagerank_pregel,
    pagerank_vertex,
    scc_oracle,
    strongly_connected_components,
    wcc_oracle,
    weakly_connected_components,
    wordcount,
    wordcount_with_combiner,
)
from repro.runtime import ClusterComputation
from repro.workloads import (
    Tweet,
    generate_corpus,
    power_law_graph,
    uniform_random_graph,
)


def run_one_epoch(build, records, cluster=False, **cluster_kwargs):
    comp = (
        ClusterComputation(
            num_processes=cluster_kwargs.pop("procs", 2),
            workers_per_process=cluster_kwargs.pop("workers", 2),
            **cluster_kwargs,
        )
        if cluster
        else Computation()
    )
    inp = comp.new_input()
    out = []
    build(Stream.from_input(inp)).subscribe(lambda t, recs: out.extend(recs))
    comp.build()
    inp.on_next(records)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return out


edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=40
)


class TestWordCount:
    @pytest.mark.parametrize("variant", [wordcount, wordcount_with_combiner])
    @pytest.mark.parametrize("cluster", [False, True])
    def test_counts(self, variant, cluster):
        lines = generate_corpus(50, words_per_line=6, vocabulary_size=30, seed=1)
        out = run_one_epoch(variant, lines, cluster=cluster)
        expected = Counter(word for line in lines for word in line.split())
        assert dict(out) == dict(expected)

    def test_combiner_reduces_exchange(self):
        lines = generate_corpus(300, words_per_line=8, vocabulary_size=20, seed=2)
        bytes_exchanged = {}
        for variant in (wordcount, wordcount_with_combiner):
            comp = ClusterComputation(num_processes=4, workers_per_process=2)
            inp = comp.new_input()
            variant(Stream.from_input(inp)).subscribe(lambda t, recs: None)
            comp.build()
            inp.on_next(lines)
            inp.on_completed()
            comp.run()
            bytes_exchanged[variant.__name__] = comp.network.stats.bytes("data")
        assert (
            bytes_exchanged["wordcount_with_combiner"]
            < bytes_exchanged["wordcount"] / 2
        )


class TestWCC:
    @given(edge_lists)
    @settings(max_examples=20, deadline=None)
    def test_matches_oracle(self, edges):
        out = run_one_epoch(weakly_connected_components, edges)
        assert dict(out) == wcc_oracle(edges)

    def test_cluster_matches_oracle(self):
        edges = uniform_random_graph(60, 100, seed=9)
        out = run_one_epoch(
            weakly_connected_components, edges, cluster=True, procs=3, workers=2
        )
        assert dict(out) == wcc_oracle(edges)

    def test_multiple_epochs_are_independent(self):
        comp = Computation()
        inp = comp.new_input()
        per_epoch = {}
        weakly_connected_components(Stream.from_input(inp)).subscribe(
            lambda t, recs: per_epoch.setdefault(t.epoch, []).extend(recs)
        )
        comp.build()
        inp.on_next([(1, 2)])
        inp.on_next([(2, 3)])
        inp.on_completed()
        comp.run()
        assert dict(per_epoch[0]) == {1: 1, 2: 1}
        assert dict(per_epoch[1]) == {2: 2, 3: 2}


class TestPageRank:
    GRAPH = power_law_graph(30, 3, seed=4)

    @pytest.mark.parametrize(
        "variant", [pagerank_vertex, pagerank_pregel, pagerank_edge]
    )
    @pytest.mark.parametrize("cluster", [False, True])
    def test_matches_oracle(self, variant, cluster):
        out = dict(
            run_one_epoch(
                lambda s: variant(s, iterations=6), self.GRAPH, cluster=cluster
            )
        )
        expected = pagerank_oracle(self.GRAPH, iterations=6)
        if variant is pagerank_edge:
            # The edge variant reports ranks for nodes with out-edges.
            expected = {
                node: rank
                for node, rank in expected.items()
                if any(src == node for src, _ in self.GRAPH)
            }
        for node, rank in expected.items():
            assert out[node] == pytest.approx(rank, abs=1e-12)

    def test_single_iteration(self):
        out = dict(
            run_one_epoch(lambda s: pagerank_vertex(s, iterations=1), [(0, 1)])
        )
        assert out == {0: 1.0, 1: 1.0}


class TestSCC:
    @given(edge_lists)
    @settings(max_examples=15, deadline=None)
    def test_matches_oracle(self, edges):
        got = strongly_connected_components(Computation, edges)
        assert got == scc_oracle(edges)

    def test_cluster_matches_oracle(self):
        edges = uniform_random_graph(25, 50, seed=6)
        got = strongly_connected_components(
            lambda: ClusterComputation(2, 2), edges
        )
        assert got == scc_oracle(edges)

    def test_cycle_is_one_component(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
        got = strongly_connected_components(Computation, edges)
        assert got == {0: 0, 1: 0, 2: 0, 3: 3}


class TestASP:
    @given(edge_lists)
    @settings(max_examples=15, deadline=None)
    def test_matches_bfs_oracle(self, edges):
        landmarks = sorted({edges[0][0], edges[-1][1]})
        out = dict(
            run_one_epoch(
                lambda s: approximate_shortest_paths(s, landmarks), edges
            )
        )
        assert out == asp_oracle(edges, landmarks)

    def test_cluster_matches_oracle(self):
        edges = uniform_random_graph(40, 60, seed=8)
        landmarks = [0, 3, 7]
        out = dict(
            run_one_epoch(
                lambda s: approximate_shortest_paths(s, landmarks),
                edges,
                cluster=True,
            )
        )
        assert out == asp_oracle(edges, landmarks)


class TestKExposure:
    def oracle(self, tweets, followers):
        exposures = set()
        for user, tag in tweets:
            for follower, followee in followers:
                if followee == user:
                    exposures.add((follower, tag))
        counts = Counter(tag for _, tag in exposures)
        return dict(counts)

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.sampled_from(["#a", "#b"])), max_size=15),
        st.lists(st.tuples(st.integers(10, 15), st.integers(0, 5)), max_size=15),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_oracle(self, tweets, followers):
        comp = Computation()
        ti, fi = comp.new_input(), comp.new_input()
        out = {}
        k_exposure(Stream.from_input(ti), Stream.from_input(fi)).subscribe(
            lambda t, recs: out.update(dict(recs))
        )
        comp.build()
        ti.on_next(tweets)
        fi.on_next(followers)
        ti.on_completed()
        fi.on_completed()
        comp.run()
        assert out == self.oracle(tweets, followers)


class TestLogisticRegression:
    @pytest.mark.parametrize("reducer", [allreduce, tree_allreduce])
    def test_matches_single_machine_gd(self, reducer):
        X, y, _ = make_dataset(120, 8, seed=3)
        expected = logistic_oracle(X, y, iterations=4, learning_rate=0.4)
        comp = ClusterComputation(2, 2)
        inp = comp.new_input()
        weights = {}
        logistic_regression(
            Stream.from_input(inp), 8, iterations=4, learning_rate=0.4,
            reducer=reducer,
        ).subscribe(lambda t, recs: weights.update(dict(recs)))
        comp.build()
        inp.stage.outputs[0][0].partitioner = lambda rec: rec[0]
        total = comp.total_workers
        inp.on_next([(w, X[w::total], y[w::total], len(y)) for w in range(total)])
        inp.on_completed()
        comp.run()
        assert comp.drained()
        for vec in weights.values():
            np.testing.assert_allclose(vec, expected, atol=1e-8)

    def test_training_reduces_loss(self):
        X, y, _ = make_dataset(400, 6, seed=11)
        w0 = logistic_oracle(X, y, iterations=0)
        w5 = logistic_oracle(X, y, iterations=25, learning_rate=0.5)

        def loss(w):
            z = X @ w
            return float(np.mean(np.log1p(np.exp(-np.abs(z))) + np.maximum(z, 0) - y * z))

        assert loss(w5) < loss(w0)


class TestHashtagApp:
    T_EPOCHS = [
        [Tweet(1, (2,), ("#x",)), Tweet(3, (), ("#y",))],
        [Tweet(2, (3,), ("#x",)), Tweet(3, (), ("#y",))],
        [Tweet(5, (6,), ()), Tweet(6, (), ("#z", "#z"))],
    ]
    Q_EPOCHS = [[(2, "q0")], [(3, "q1")], [(5, "q2"), (1, "q3")]]

    def run_app(self, fresh, cluster=False):
        comp = (
            ClusterComputation(2, 2) if cluster else Computation()
        )
        ti, qi = comp.new_input(), comp.new_input()
        answers = []
        hashtag_component_app(
            Stream.from_input(ti),
            Stream.from_input(qi),
            lambda t, recs: answers.extend(recs),
            fresh=fresh,
        )
        comp.build()
        for te, qe in zip(self.T_EPOCHS, self.Q_EPOCHS):
            ti.on_next(te)
            qi.on_next(qe)
            comp.run()
        ti.on_completed()
        qi.on_completed()
        comp.run()
        assert comp.drained()
        return answers

    @pytest.mark.parametrize("cluster", [False, True])
    def test_fresh_matches_oracle(self, cluster):
        answers = self.run_app(fresh=True, cluster=cluster)
        assert sorted(answers) == sorted(app_oracle(self.T_EPOCHS, self.Q_EPOCHS))

    def test_fresh_sees_same_epoch_updates(self):
        answers = dict(
            (qid, tag) for qid, _user, tag in self.run_app(fresh=True)
        )
        # q1 asks for user 3 right when the 2-3 mention merges the
        # components; fresh mode must see the merged component's top tag.
        assert answers["q1"] in ("#x", "#y")

    def test_stale_returns_quickly_possibly_stale(self):
        answers = self.run_app(fresh=False)
        # Stale mode still answers every query (possibly with None).
        assert len(answers) == sum(len(q) for q in self.Q_EPOCHS)
