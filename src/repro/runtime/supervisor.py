"""Heartbeat failure detection and supervised self-healing recovery.

Every failure the runtime could survive before this module was
*announced*: :meth:`ClusterComputation.kill_process` tells the
coordinator exactly who died and when.  Naiad section 3.5 shows why
detection is the hard part of production fault tolerance —
micro-stragglers (GC pauses, retransmit timeouts) are indistinguishable
from crashes on short horizons, so a fixed timeout either fires on
every collection pause or takes seconds to notice a real death.

This module closes that gap with three cooperating pieces:

**The detector** (:class:`PhiAccrualDetector`) is a phi-accrual accrual
failure detector (Hayashibara et al.): every monitored process sends
periodic heartbeats to process 0 *over the simulated network*, so
heartbeat traffic pays real latency, NIC occupancy and GC-pause costs —
a long collection on the monitored process genuinely delays its
heartbeats and genuinely risks false suspicion.  The detector keeps a
sliding window of observed inter-arrival gaps and computes

    phi(t) = -log10( P(next heartbeat arrives later than t) )

under a normal fit of the window.  Suspicion triggers when phi crosses
a threshold, i.e. at ``last_arrival + mu + z* sigma`` where ``z*`` is
the normal quantile of the threshold — an *adaptive* deadline that
stretches when the link is noisy (recurring GC pauses inflate sigma)
and tightens when it is quiet.

**The fence**: suspicion may be wrong (the process may merely be slow,
partitioned, or paused), so before recovery starts the suspected
incarnation is *fenced* — its per-process generation number advances,
every data message it stamped becomes provably stale and is discarded
at delivery, and its outstanding progress-protocol copies are settled
so all views agree on its final effects (see
:meth:`ClusterComputation._fence_process`).  A fenced zombie can keep
talking forever; nothing it says is ever applied.

**The supervisor** (:class:`Supervisor`) drives suspect -> fence ->
recover -> reintegrate automatically through the *same*
:meth:`RecoveryManager.fail_process` path the oracle uses, so outputs
are bit-identical to oracle-driven recovery.  Restart delays back off
exponentially with jitter across repeated deaths, and a process that
dies ``quarantine_deaths`` times inside ``quarantine_window`` is
evicted from the membership entirely (the planned-departure
bookkeeping of ``remove_process``) with the :class:`Autoscaler`
backfilling a replacement.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from statistics import NormalDist
from time import perf_counter
from typing import Any, Deque, Dict, List, Optional

from ..obs.trace import TraceEvent

_SQRT2 = math.sqrt(2.0)


class PhiAccrualDetector:
    """Adaptive suspicion over one process's heartbeat inter-arrivals.

    ``heartbeat(now)`` records an arrival; :meth:`phi` reports the
    current suspicion level and :meth:`deadline` the absolute virtual
    time at which phi will cross a given normal quantile if no further
    heartbeat lands — the supervisor schedules its checks there instead
    of polling.
    """

    __slots__ = ("window", "min_std", "min_samples", "intervals", "last_arrival")

    def __init__(self, window: int, min_std: float, min_samples: int):
        self.window = window
        self.min_std = min_std
        self.min_samples = min_samples
        self.intervals: Deque[float] = deque(maxlen=window)
        self.last_arrival: Optional[float] = None

    def heartbeat(self, now: float) -> Optional[float]:
        """Record an arrival; returns the observed gap (None if first)."""
        gap = None
        if self.last_arrival is not None:
            gap = now - self.last_arrival
            self.intervals.append(gap)
        self.last_arrival = now
        return gap

    @property
    def ready(self) -> bool:
        """Enough samples to trust the normal fit."""
        return len(self.intervals) >= self.min_samples

    def _mu_sigma(self):
        samples = self.intervals
        mu = sum(samples) / len(samples)
        var = sum((x - mu) ** 2 for x in samples) / len(samples)
        # The floor keeps a perfectly regular window (sigma -> 0) from
        # collapsing the deadline onto the mean, where ordinary network
        # jitter would trip it.
        return mu, max(math.sqrt(var), self.min_std)

    def phi(self, now: float) -> float:
        """Suspicion level at ``now`` (0 when the window is cold)."""
        if self.last_arrival is None or not self.ready:
            return 0.0
        mu, sigma = self._mu_sigma()
        elapsed = now - self.last_arrival
        p_later = 0.5 * math.erfc((elapsed - mu) / (sigma * _SQRT2))
        if p_later <= 0.0:
            return float("inf")
        return -math.log10(p_later)

    def deadline(self, z: float) -> Optional[float]:
        """Absolute time phi first crosses the threshold whose normal
        quantile is ``z``; None while the window is cold."""
        if self.last_arrival is None or not self.ready:
            return None
        mu, sigma = self._mu_sigma()
        return self.last_arrival + mu + z * sigma


@dataclass
class SupervisorConfig:
    """Tuning for the failure detector and the recovery state machine."""

    #: Heartbeat period per monitored process (virtual seconds).
    heartbeat_interval: float = 0.5e-3
    #: Heartbeat payload size (bytes on the wire, plus framing).
    heartbeat_bytes: int = 16
    #: Suspect when phi crosses this (phi 8 ~ a 1e-8 false-positive
    #: probability per check under the normal fit).
    phi_threshold: float = 8.0
    #: Inter-arrival window length (samples).
    window: int = 32
    #: Samples required before the adaptive deadline is trusted; until
    #: then ``bootstrap_timeout`` after the last arrival applies.
    min_samples: int = 8
    #: Floor on the fitted sigma (seconds).
    min_std: float = 50e-6
    #: Cold-start deadline: suspect a process that goes silent for this
    #: long before its window has warmed up.
    bootstrap_timeout: float = 20e-3
    #: A gap beyond ``naive_multiplier * heartbeat_interval`` counts as
    #: a naive-timeout violation — the false positives a fixed-timeout
    #: detector would have fired (reported, never acted on).
    naive_multiplier: float = 3.0
    #: Base restart delay for supervised recovery; None uses the
    #: cluster's ``FaultTolerance.restart_delay``.
    backoff_base: Optional[float] = None
    #: Exponential backoff factor across deaths in the window.
    backoff_factor: float = 2.0
    #: Backoff ceiling (seconds).
    backoff_max: float = 0.5
    #: Jitter fraction added on top of the deterministic backoff (drawn
    #: from the supervisor's own seeded RNG, never the simulator's —
    #: a draw from ``sim.rng`` would shift the GC/loss schedule and
    #: break bit-identity with oracle-driven recovery).
    backoff_jitter: float = 0.1
    #: Deaths inside ``quarantine_window`` that trigger eviction.
    quarantine_deaths: int = 3
    #: Crash-loop observation window (virtual seconds).
    quarantine_window: float = 5.0
    #: Recovery placement override ("restart" / "reassign"); None
    #: follows ``FaultTolerance.recovery``.
    placement: Optional[str] = None
    #: Seed for the jitter RNG.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                "SupervisorConfig.heartbeat_interval must be > 0 (got %r)"
                % (self.heartbeat_interval,)
            )
        if self.heartbeat_bytes < 0:
            raise ValueError(
                "SupervisorConfig.heartbeat_bytes must be >= 0 (got %r)"
                % (self.heartbeat_bytes,)
            )
        if self.phi_threshold <= 0:
            raise ValueError(
                "SupervisorConfig.phi_threshold must be > 0 (got %r)"
                % (self.phi_threshold,)
            )
        if self.min_samples < 2:
            raise ValueError(
                "SupervisorConfig.min_samples must be >= 2 (got %r)"
                % (self.min_samples,)
            )
        if self.window < self.min_samples:
            raise ValueError(
                "SupervisorConfig.window (%r) must be >= min_samples (%r)"
                % (self.window, self.min_samples)
            )
        if self.min_std <= 0:
            raise ValueError(
                "SupervisorConfig.min_std must be > 0 (got %r)" % (self.min_std,)
            )
        if self.bootstrap_timeout <= self.heartbeat_interval:
            raise ValueError(
                "SupervisorConfig.bootstrap_timeout (%r) must exceed the "
                "heartbeat_interval (%r): a cold-start deadline shorter "
                "than one period suspects every process immediately"
                % (self.bootstrap_timeout, self.heartbeat_interval)
            )
        if self.naive_multiplier <= 0:
            raise ValueError(
                "SupervisorConfig.naive_multiplier must be > 0 (got %r)"
                % (self.naive_multiplier,)
            )
        if self.backoff_base is not None and self.backoff_base < 0:
            raise ValueError(
                "SupervisorConfig.backoff_base must be >= 0 (got %r)"
                % (self.backoff_base,)
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                "SupervisorConfig.backoff_factor must be >= 1 (got %r)"
                % (self.backoff_factor,)
            )
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(
                "SupervisorConfig.backoff_jitter must be in [0, 1) (got %r)"
                % (self.backoff_jitter,)
            )
        if self.quarantine_deaths < 1:
            raise ValueError(
                "SupervisorConfig.quarantine_deaths must be >= 1 (got %r)"
                % (self.quarantine_deaths,)
            )
        if self.quarantine_window <= 0:
            raise ValueError(
                "SupervisorConfig.quarantine_window must be > 0 (got %r)"
                % (self.quarantine_window,)
            )
        if self.placement is not None and self.placement not in (
            "restart",
            "reassign",
        ):
            raise ValueError(
                "SupervisorConfig.placement must be None, 'restart' or "
                "'reassign' (got %r)" % (self.placement,)
            )


class Supervisor:
    """The self-healing control loop, hosted on process 0.

    ::

        comp.build()
        supervisor = comp.attach_supervisor(SupervisorConfig(...))
        ... drive inputs; crashes are detected and recovered unaided ...

    Heartbeat sends ride :meth:`Simulator.schedule_background` (the
    environment never keeps a finished simulation alive on its own);
    the suspicion deadline check is a *foreground* event so the clock
    keeps moving through the silent window after a crash, but it parks
    itself as a background reprobe whenever the computation has nothing
    outstanding — a drained cluster can always finish its run.
    """

    def __init__(
        self,
        cluster,
        config: Optional[SupervisorConfig] = None,
        autoscaler=None,
    ) -> None:
        cluster._check_built()
        self.cluster = cluster
        self.config = config or SupervisorConfig()
        #: Optional repro.runtime.rescale.Autoscaler; quarantine asks it
        #: to backfill the evicted process.
        self.autoscaler = autoscaler
        self._z = NormalDist().inv_cdf(1.0 - 10.0 ** -self.config.phi_threshold)
        self._rng = random.Random("supervisor:%r" % (self.config.seed,))
        self.detectors: Dict[int, PhiAccrualDetector] = {}
        #: Virtual time monitoring (re)started per process; the
        #: bootstrap deadline runs from here until the window warms.
        self._monitor_since: Dict[int, float] = {}
        #: Per-process heartbeat-chain epoch; a stale chain event whose
        #: epoch no longer matches dies silently (reintegration starts
        #: a fresh chain).
        self._chain_epoch: Dict[int, int] = {}
        self._deadline_token = 0
        #: Processes whose next heartbeat arrival should reset the
        #: inter-arrival clock instead of recording a gap (the chain
        #: idled with the computation; the gap is not silence).
        self._skip_gap: set = set()
        self._started = False
        #: Recent death times per process (the quarantine window).
        self.deaths: Dict[int, List[float]] = {}
        #: One record per suspicion acted on.
        self.suspicions: List[Dict[str, Any]] = []
        #: Processes evicted for crash-looping.
        self.quarantined: List[int] = []
        #: Gaps that would have tripped a naive fixed timeout.
        self.naive_violations = 0
        #: Stale-incarnation heartbeats discarded at process 0.
        self.heartbeat_drops = 0
        self.heartbeats_seen: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "Supervisor":
        """Begin monitoring every live process (idempotent)."""
        if self._started:
            return self
        self._started = True
        for process in list(self.cluster.live_processes):
            if process != 0 and self._process_alive(process):
                self._monitor(process)
        self._arm_deadline()
        return self

    def monitored(self) -> List[int]:
        return sorted(self.detectors)

    def _monitor(self, process: int) -> None:
        config = self.config
        self.detectors[process] = PhiAccrualDetector(
            config.window, config.min_std, config.min_samples
        )
        self._monitor_since[process] = self.cluster.sim.now
        self._chain_epoch[process] = self._chain_epoch.get(process, 0) + 1
        self._schedule_heartbeat(process, self._chain_epoch[process])

    def _unmonitor(self, process: int) -> None:
        self.detectors.pop(process, None)
        self._monitor_since.pop(process, None)
        self._chain_epoch[process] = self._chain_epoch.get(process, 0) + 1

    def _process_alive(self, process: int) -> bool:
        for worker in self.cluster.workers:
            if worker.process == process and not worker.dead:
                return True
        return False

    # ------------------------------------------------------------------
    # The heartbeat plane.
    # ------------------------------------------------------------------

    def _schedule_heartbeat(self, process: int, epoch: int) -> None:
        self.cluster.sim.schedule_background(
            self.config.heartbeat_interval,
            lambda: self._send_heartbeat(process, epoch),
        )

    def _send_heartbeat(self, process: int, epoch: int) -> None:
        if self._chain_epoch.get(process) != epoch:
            return  # superseded chain (the process was fenced/re-monitored)
        if not self._process_alive(process):
            return  # a silent crash kills the heartbeat source with it
        cluster = self.cluster
        if not self._computation_active():
            # Idle cluster: sending would put a foreground delivery on
            # the clock and the chain would keep a finished run alive
            # forever.  Stay parked in the background (which dies with
            # the run and resumes, at correct times, with the next one)
            # and skip the idle gap on the next arrival — it is not
            # silence.
            self._skip_gap.add(process)
            self._schedule_heartbeat(process, epoch)
            return
        generation = cluster.generations[process]
        cluster.network.send(
            process,
            0,
            self.config.heartbeat_bytes,
            "heartbeat",
            lambda: self._on_heartbeat(process, generation),
        )
        self._schedule_heartbeat(process, epoch)

    def _on_heartbeat(self, process: int, generation: int) -> None:
        cluster = self.cluster
        now = cluster.sim.now
        if cluster.generations[process] != generation:
            # A fenced incarnation's heartbeat straggling in (e.g. a
            # one-way partition healed): provably stale, discarded.
            self.heartbeat_drops += 1
            self._trace("drop", process, ("stale-heartbeat", process, generation))
            return
        detector = self.detectors.get(process)
        if detector is None:
            return  # no longer monitored (reassigned away / quarantined)
        self.heartbeats_seen[process] = self.heartbeats_seen.get(process, 0) + 1
        if process in self._skip_gap:
            # First arrival after the chain idled: reset the clock
            # without recording the idle stretch as an inter-arrival.
            self._skip_gap.discard(process)
            detector.last_arrival = now
            self._arm_deadline()
            return
        gap = detector.heartbeat(now)
        if (
            gap is not None
            and gap > self.config.naive_multiplier * self.config.heartbeat_interval
        ):
            self.naive_violations += 1
        self._arm_deadline()

    # ------------------------------------------------------------------
    # The suspicion deadline (foreground, token-guarded).
    # ------------------------------------------------------------------

    def _deadline_for(self, process: int) -> float:
        detector = self.detectors[process]
        deadline = detector.deadline(self._z)
        if deadline is None:
            anchor = detector.last_arrival
            if anchor is None:
                anchor = self._monitor_since[process]
            deadline = anchor + self.config.bootstrap_timeout
        return deadline

    def _next_deadline(self) -> Optional[float]:
        if not self.detectors:
            return None
        return min(self._deadline_for(p) for p in self.detectors)

    def _arm_deadline(self) -> None:
        deadline = self._next_deadline()
        if deadline is None:
            return  # nothing monitored
        self._deadline_token += 1
        token = self._deadline_token
        sim = self.cluster.sim
        sim.schedule_at(max(sim.now, deadline), lambda: self._check(token))

    def _park(self) -> None:
        """Nothing outstanding: wait in the background so the run can
        drain; fresh foreground activity wakes the check back up."""
        self._deadline_token += 1
        token = self._deadline_token

        def wake() -> None:
            if token != self._deadline_token:
                return
            # The idle gap is not silence — restart the arrival clocks
            # so it cannot be misread as missed heartbeats.
            now = self.cluster.sim.now
            for detector in self.detectors.values():
                if detector.last_arrival is not None:
                    detector.last_arrival = now
            self._arm_deadline()

        self.cluster.sim.schedule_background(
            self.config.heartbeat_interval, wake
        )

    def _computation_active(self) -> bool:
        """True while any pointstamp is outstanding anywhere.

        Crucially this includes work *lost in a silent crash*: the dead
        workers' occurrence counts stay in every view until recovery
        replays them, so a stuck cluster keeps the suspicion deadline
        in the foreground (the clock advances to it) instead of letting
        the run drain around the hole."""
        cluster = self.cluster
        if cluster.network.data_in_flight:
            return True
        for view in cluster._unique_views(live_only=True):
            if len(view.state):
                return True
        for worker in cluster.workers:
            if worker.has_work():
                return True
        return False

    def _check(self, token: int) -> None:
        if token != self._deadline_token:
            return
        if not self.detectors:
            return
        if not self._computation_active():
            self._park()
            return
        now = self.cluster.sim.now
        overdue = [
            process
            for process in sorted(self.detectors)
            if self._deadline_for(process) <= now
        ]
        for process in overdue:
            self._suspect(process)
        if self.detectors:
            self._arm_deadline()

    # ------------------------------------------------------------------
    # Suspicion -> fence -> recover -> reintegrate.
    # ------------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        config = self.config
        base = config.backoff_base
        if base is None:
            base = self.cluster.fault_tolerance.restart_delay
        delay = min(
            base * config.backoff_factor ** max(0, attempt - 1),
            max(base, config.backoff_max),
        )
        return delay * (1.0 + config.backoff_jitter * self._rng.random())

    def _suspect(self, process: int) -> None:
        cluster = self.cluster
        config = self.config
        now = cluster.sim.now
        detector = self.detectors[process]
        phi = detector.phi(now)
        recent = [
            t
            for t in self.deaths.get(process, [])
            if now - t <= config.quarantine_window
        ]
        recent.append(now)
        self.deaths[process] = recent
        seen = self.heartbeats_seen.get(process, 0)
        self._trace(
            "suspect",
            process,
            (phi if math.isfinite(phi) else -1.0, seen, len(recent)),
        )
        self._unmonitor(process)
        record = {
            "process": process,
            "at": now,
            "phi": phi,
            "heartbeats": seen,
            "deaths_in_window": len(recent),
            "action": "recover",
        }
        self.suspicions.append(record)
        if len(recent) >= config.quarantine_deaths and self._can_quarantine():
            record["action"] = "quarantine"
            self._quarantine(process, record)
            return
        policy = config.placement
        delay = self._backoff(len(recent))
        record["restart_delay"] = delay
        cluster.recovery.fail_process(
            process, policy=policy, restart_delay=delay
        )
        failure = cluster.recovery.failures[-1] if cluster.recovery.failures else None
        if failure is not None and failure["process"] == process:
            record["mode"] = failure["mode"]
            record["ready"] = failure["ready"]
            if failure["policy"] == "restart":
                # Reintegrate: the process comes back at `ready` as a
                # fresh incarnation; resume monitoring from there.
                self._remonitor_at(process, failure["ready"])
        self._arm_deadline()

    def _remonitor_at(self, process: int, ready: float) -> None:
        def reintegrate() -> None:
            if process in self.detectors:
                return
            cluster = self.cluster
            if process in cluster._removed_processes:
                return
            recovery = cluster.recovery
            if recovery is not None and process in recovery.dead_processes:
                return  # reassigned away in the meantime; nothing to watch
            # Monitor even if the process crashed *again* while it was
            # recovering: the fresh (cold) window sends no heartbeats
            # from a dead process, so the bootstrap deadline re-suspects
            # it — without this, a crash inside the recovery window
            # would go unwatched forever.
            self._monitor(process)
            self._arm_deadline()

        sim = self.cluster.sim
        sim.schedule_at(max(sim.now, ready), reintegrate)

    def _can_quarantine(self) -> bool:
        cluster = self.cluster
        try:
            cluster._check_rescalable("quarantine")
        except ValueError:
            return False
        # Eviction must leave a live host behind.
        return len(cluster._live_hosts()) > 1

    def _quarantine(self, process: int, record: Dict[str, Any]) -> None:
        """Crash loop: rehome the workers onto the survivors, drop the
        process from the membership for good, and backfill."""
        cluster = self.cluster
        now = cluster.sim.now
        cluster.recovery.fail_process(
            process, policy="reassign", restart_delay=self._backoff(1)
        )
        failure = cluster.recovery.failures[-1] if cluster.recovery.failures else None
        if failure is not None and failure["process"] == process:
            record["mode"] = failure["mode"]
            record["ready"] = failure["ready"]
        # The reassign recovery moved every worker off the process, so
        # eviction is the pure-bookkeeping branch of the remove_process
        # path (membership drop + rescale record).
        cluster._execute_remove(process)
        self.quarantined.append(process)
        self._trace("quarantine", process, (len(self.deaths.get(process, ())),))
        backfilled = False
        if self.autoscaler is not None:
            backfilled = self.autoscaler.backfill(reason="quarantine")
        record["backfilled"] = backfilled
        self._arm_deadline()

    # ------------------------------------------------------------------
    # Tracing.
    # ------------------------------------------------------------------

    def _trace(self, phase: str, process: int, detail: tuple) -> None:
        trace = self.cluster._trace
        if trace is None:
            return
        trace.emit(
            TraceEvent(
                "detect",
                self.cluster.sim.now,
                0.0,
                perf_counter(),
                -1,
                process,
                phase,
                (),
                detail,
            )
        )

    def __repr__(self) -> str:
        return "Supervisor(monitoring=%r, suspicions=%d, quarantined=%r)" % (
            self.monitored(),
            len(self.suspicions),
            self.quarantined,
        )
