"""LINQ-style data-parallel operator vertices (paper section 4.2).

Most operators build on unary and binary forms of a generic buffering
vertex whose ``on_recv`` adds records to lists indexed by timestamp and
whose ``on_notify(t)`` applies a transformation to the buffered list(s)
for ``t`` — exactly the structure the paper describes.  Operators that do
not require coordination are specialised: ``Select``/``SelectMany``
transform and forward records immediately, ``Concat`` forwards from both
inputs, ``Distinct`` emits a record the first time it is seen (and uses
its notification only to reclaim state), and ``Join`` is a per-timestamp
symmetric hash join that emits matches eagerly.

Collections are *per timestamp*: each epoch (and each loop iteration) is
an independent logical collection, which is what makes the operators
composable with incremental and iterative computation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex


class SelectVertex(Vertex):
    """Stateless 1:1 transformation; forwards immediately (no coordination)."""

    notifies = False
    _CONFIG_ATTRS = ("function",)

    def __init__(self, function: Callable[[Any], Any]):
        super().__init__()
        self.function = function

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        function = self.function
        self.send_by(0, [function(record) for record in records], timestamp)


class WhereVertex(Vertex):
    """Stateless filter; forwards immediately."""

    notifies = False
    _CONFIG_ATTRS = ("predicate",)

    def __init__(self, predicate: Callable[[Any], bool]):
        super().__init__()
        self.predicate = predicate

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        predicate = self.predicate
        kept = [record for record in records if predicate(record)]
        if kept:
            self.send_by(0, kept, timestamp)


class SelectManyVertex(Vertex):
    """Stateless 1:N transformation (flat map); forwards immediately."""

    notifies = False
    _CONFIG_ATTRS = ("function",)

    def __init__(self, function: Callable[[Any], Iterable[Any]]):
        super().__init__()
        self.function = function

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        function = self.function
        out: List[Any] = []
        for record in records:
            out.extend(function(record))
        if out:
            self.send_by(0, out, timestamp)


class ConcatVertex(Vertex):
    """Merge two streams; forwards immediately from both inputs."""

    notifies = False

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        self.send_by(0, records, timestamp)

    def on_recv_batch(self, input_port: int, batch: Any, timestamp: Timestamp) -> None:
        # Concat never inspects records: forward the batch whole.
        self.send_by(0, batch, timestamp)


class DistinctVertex(Vertex):
    """Per-timestamp distinct.

    A record is emitted the first time it is observed at a timestamp
    (low latency); the notification merely reclaims the per-timestamp
    set once no more records at that time can arrive.
    """

    def __init__(self):
        super().__init__()
        self.seen: Dict[Timestamp, set] = {}

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        seen = self.seen.get(timestamp)
        if seen is None:
            seen = self.seen[timestamp] = set()
            self.notify_at(timestamp)
        fresh = []
        for record in records:
            if record not in seen:
                seen.add(record)
                fresh.append(record)
        if fresh:
            self.send_by(0, fresh, timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        self.seen.pop(timestamp, None)


class UnaryBufferingVertex(Vertex):
    """The generic coordinated unary operator.

    Buffers records per timestamp; when notified that time ``t`` is
    complete, applies ``transform(records) -> output records`` and sends
    the result.
    """

    _CONFIG_ATTRS = ("transform",)

    def __init__(self, transform: Callable[[List[Any]], Iterable[Any]]):
        super().__init__()
        self.transform = transform
        self.buffers: Dict[Timestamp, List[Any]] = {}

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        buffer = self.buffers.get(timestamp)
        if buffer is None:
            buffer = self.buffers[timestamp] = []
            self.notify_at(timestamp)
        buffer.extend(records)

    def on_notify(self, timestamp: Timestamp) -> None:
        records = self.buffers.pop(timestamp, [])
        out = list(self.transform(records))
        if out:
            self.send_by(0, out, timestamp)


class BinaryBufferingVertex(Vertex):
    """The generic coordinated binary operator (two buffered inputs)."""

    _CONFIG_ATTRS = ("transform",)

    def __init__(self, transform: Callable[[List[Any], List[Any]], Iterable[Any]]):
        super().__init__()
        self.transform = transform
        self.buffers: Dict[Timestamp, Tuple[List[Any], List[Any]]] = {}

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        pair = self.buffers.get(timestamp)
        if pair is None:
            pair = self.buffers[timestamp] = ([], [])
            self.notify_at(timestamp)
        pair[input_port].extend(records)

    def on_notify(self, timestamp: Timestamp) -> None:
        left, right = self.buffers.pop(timestamp, ([], []))
        out = list(self.transform(left, right))
        if out:
            self.send_by(0, out, timestamp)


class GroupByVertex(UnaryBufferingVertex):
    """Collate records by key, then apply ``reducer(key, values)``.

    ``reducer`` returns an iterable of output records for the group,
    mirroring Naiad's ``GroupBy(key, (k, vs) => ...)``.
    """

    _CONFIG_ATTRS = ("transform", "key", "reducer")

    def __init__(
        self,
        key: Callable[[Any], Any],
        reducer: Callable[[Any, List[Any]], Iterable[Any]],
    ):
        super().__init__(self._group)
        self.key = key
        self.reducer = reducer

    def _group(self, records: List[Any]) -> Iterable[Any]:
        groups: Dict[Any, List[Any]] = {}
        key = self.key
        for record in records:
            groups.setdefault(key(record), []).append(record)
        out: List[Any] = []
        for k in groups:
            out.extend(self.reducer(k, groups[k]))
        return out


class CountByVertex(Vertex):
    """Emit ``(key, count)`` per timestamp; counts fold incrementally.

    ``key_col`` (optional) asserts ``key(record) == record[key_col]``;
    when set, columnar batches are counted straight off the key column
    without materializing record tuples.  The kernel must match the
    record path exactly — same keys, same dict insertion order — which
    it does because column values round-trip bit-exactly.
    """

    _CONFIG_ATTRS = ("key", "key_col")

    def __init__(self, key: Callable[[Any], Any], key_col: Optional[int] = None):
        super().__init__()
        self.key = key
        self.key_col = key_col
        self.counts: Dict[Timestamp, Dict[Any, int]] = {}

    def _counts_at(self, timestamp: Timestamp) -> Dict[Any, int]:
        counts = self.counts.get(timestamp)
        if counts is None:
            counts = self.counts[timestamp] = {}
            self.notify_at(timestamp)
        return counts

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        counts = self._counts_at(timestamp)
        key = self.key
        for record in records:
            k = key(record)
            counts[k] = counts.get(k, 0) + 1

    def on_recv_batch(self, input_port: int, batch: Any, timestamp: Timestamp) -> None:
        if self.key_col is None or batch.schema.scalar:
            return Vertex.on_recv_batch(self, input_port, batch, timestamp)
        counts = self._counts_at(timestamp)
        get = counts.get
        for k in batch.columns[self.key_col]:
            counts[k] = get(k, 0) + 1

    def on_notify(self, timestamp: Timestamp) -> None:
        counts = self.counts.pop(timestamp, {})
        if counts:
            self.send_by(0, list(counts.items()), timestamp)


class AggregateByVertex(Vertex):
    """Keyed incremental fold: emit ``(key, fold(values))`` at completion.

    ``combine(acc, value) -> acc`` folds eagerly as records arrive, so
    memory is one accumulator per key rather than the whole group.
    """

    _CONFIG_ATTRS = ("key", "value", "combine", "key_col", "value_col")

    def __init__(
        self,
        key: Callable[[Any], Any],
        value: Callable[[Any], Any],
        combine: Callable[[Any, Any], Any],
        key_col: Optional[int] = None,
        value_col: Optional[int] = None,
    ):
        super().__init__()
        self.key = key
        self.value = value
        self.combine = combine
        # Column assertions (key(r) == r[key_col], value(r) == r[value_col])
        # enabling the columnar kernel; None means record path only.
        self.key_col = key_col
        self.value_col = value_col
        self.state: Dict[Timestamp, Dict[Any, Any]] = {}

    _MISSING = object()

    def _state_at(self, timestamp: Timestamp) -> Dict[Any, Any]:
        state = self.state.get(timestamp)
        if state is None:
            state = self.state[timestamp] = {}
            self.notify_at(timestamp)
        return state

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        state = self._state_at(timestamp)
        key, value, combine = self.key, self.value, self.combine
        for record in records:
            k = key(record)
            v = value(record)
            acc = state.get(k, self._MISSING)
            state[k] = v if acc is self._MISSING else combine(acc, v)

    def on_recv_batch(self, input_port: int, batch: Any, timestamp: Timestamp) -> None:
        if self.key_col is None or self.value_col is None or batch.schema.scalar:
            return Vertex.on_recv_batch(self, input_port, batch, timestamp)
        state = self._state_at(timestamp)
        combine = self.combine
        get = state.get
        missing = self._MISSING
        columns = batch.columns
        for k, v in zip(columns[self.key_col], columns[self.value_col]):
            acc = get(k, missing)
            state[k] = v if acc is missing else combine(acc, v)

    def on_notify(self, timestamp: Timestamp) -> None:
        state = self.state.pop(timestamp, {})
        if state:
            self.send_by(0, list(state.items()), timestamp)


class JoinVertex(Vertex):
    """Per-timestamp symmetric hash join; emits matches eagerly.

    Input 0 is the left relation, input 1 the right.  ``result(l, r)``
    shapes the output.  The notification reclaims per-timestamp state.
    """

    _CONFIG_ATTRS = ("left_key", "right_key", "result", "left_key_col", "right_key_col")

    def __init__(
        self,
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result: Callable[[Any, Any], Any],
        left_key_col: Optional[int] = None,
        right_key_col: Optional[int] = None,
    ):
        super().__init__()
        self.left_key = left_key
        self.right_key = right_key
        self.result = result
        self.left_key_col = left_key_col
        self.right_key_col = right_key_col
        self.state: Dict[Timestamp, Tuple[Dict[Any, List[Any]], Dict[Any, List[Any]]]] = {}

    def _state_at(self, timestamp: Timestamp):
        state = self.state.get(timestamp)
        if state is None:
            state = self.state[timestamp] = ({}, {})
            self.notify_at(timestamp)
        return state

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        key = self.left_key if input_port == 0 else self.right_key
        self._probe(input_port, [key(r) for r in records], records, timestamp)

    def on_recv_batch(self, input_port: int, batch: Any, timestamp: Timestamp) -> None:
        col = self.left_key_col if input_port == 0 else self.right_key_col
        if col is None or batch.schema.scalar:
            return Vertex.on_recv_batch(self, input_port, batch, timestamp)
        # Keys come straight off the column; matched records still need
        # tuples (the result shaper and the hash table hold them).
        self._probe(input_port, batch.columns[col], batch.to_records(), timestamp)

    def _probe(self, input_port, keys, records, timestamp: Timestamp) -> None:
        state = self._state_at(timestamp)
        mine, theirs = state[input_port], state[1 - input_port]
        result = self.result
        out: List[Any] = []
        for k, record in zip(keys, records):
            mine.setdefault(k, []).append(record)
            for other in theirs.get(k, ()):
                if input_port == 0:
                    out.append(result(record, other))
                else:
                    out.append(result(other, record))
        if out:
            self.send_by(0, out, timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        self.state.pop(timestamp, None)


class SubscribeVertex(Vertex):
    """Terminal stage invoking ``callback(timestamp, records)`` per epoch.

    The callback fires when the timestamp is complete (all records
    delivered), in frontier order — the consistent-output guarantee the
    paper emphasises.
    """

    coordinator_only = True
    _CONFIG_ATTRS = ("callback",)

    def __init__(self, callback: Callable[[Timestamp, List[Any]], None]):
        super().__init__()
        self.callback = callback
        self.buffers: Dict[Timestamp, List[Any]] = {}

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        buffer = self.buffers.get(timestamp)
        if buffer is None:
            buffer = self.buffers[timestamp] = []
            self.notify_at(timestamp)
        buffer.extend(records)

    def on_notify(self, timestamp: Timestamp) -> None:
        self.callback(timestamp, self.buffers.pop(timestamp, []))


class ProbeVertex(Vertex):
    """Absorbs records; exists so a probe has a graph location."""

    coordinator_only = True
    notifies = False

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        pass


class InspectVertex(Vertex):
    """Pass-through that calls ``probe(timestamp, records)`` per batch."""

    coordinator_only = True
    notifies = False
    _CONFIG_ATTRS = ("probe",)

    def __init__(self, probe: Callable[[Timestamp, List[Any]], None]):
        super().__init__()
        self.probe = probe

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        self.probe(timestamp, records)
        self.send_by(0, records, timestamp)
