"""DES self-profiling: what did the simulation itself cost?

The discrete-event simulator and the cluster runtime maintain cheap
always-on counters (integer increments on the hot paths, nothing
allocated): how many events went through the heap versus the same-time
fast lane, the peak heap size, how many times the cost model was
consulted per message, and how often the progress-protocol hold
condition was evaluated versus answered from its memo.
:func:`collect_profile` gathers them into one :class:`DESProfile` so
benchmarks can report the simulator's own hot paths — the numbers the
64-computer Figure 6 presets are tuned against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class DESProfile:
    """A snapshot of the simulator's self-profiling counters."""

    #: Foreground events executed by the simulator.
    events_executed: int = 0
    #: Events that went through the binary heap (O(log n) each).
    heap_pushes: int = 0
    #: Same-time events that took the FIFO fast lane (O(1) each).
    lane_pushes: int = 0
    #: Largest heap observed.
    peak_heap: int = 0
    #: Background (environment) events scheduled.
    background_pushes: int = 0
    #: Virtual seconds simulated.
    virtual_time: float = 0.0
    #: Calls into the batch-size cost model (`batch_bytes`).
    batch_bytes_calls: int = 0
    #: Per-stage record-cost lookups.
    stage_cost_calls: int = 0
    #: Progress-protocol hold-condition evaluations actually computed.
    hold_evals: int = 0
    #: Hold-condition checks answered by the per-node verdict memo.
    hold_memo_hits: int = 0
    #: Messages delivered by workers.
    delivered_messages: int = 0
    #: Notifications (and cleanups) delivered by workers.
    delivered_notifications: int = 0
    #: Network messages by traffic category.
    messages_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Network bytes by traffic category.
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Pool children in the mp backend (0 for the inline backend).
    pool_size: int = 0
    #: Worker-step claims the pool dispatcher prepared.
    pool_claims: int = 0
    #: Callback bodies actually offloaded to pool children.
    pool_tasks: int = 0
    #: Coordinator wall seconds blocked waiting on pool replies.
    pool_wait_wall: float = 0.0
    #: Child-reported wall seconds spent in callback bodies, per rank.
    pool_child_wall: Dict[int, float] = field(default_factory=dict)
    #: Pool resets (worker rebuilds after failures/rebalances).
    pool_resets: int = 0

    def lines(self) -> List[str]:
        """Human-readable rendering for benchmark reports."""
        total_sched = self.heap_pushes + self.lane_pushes
        lane_pct = 100.0 * self.lane_pushes / total_sched if total_sched else 0.0
        checks = self.hold_evals + self.hold_memo_hits
        memo_pct = 100.0 * self.hold_memo_hits / checks if checks else 0.0
        out = [
            "des profile: %d events over %.6fs virtual"
            % (self.events_executed, self.virtual_time),
            "  scheduling: %d heap pushes (peak heap %d), %d fast-lane (%.1f%%)"
            % (self.heap_pushes, self.peak_heap, self.lane_pushes, lane_pct),
            "  cost model: %d batch-size calls, %d stage-cost lookups"
            % (self.batch_bytes_calls, self.stage_cost_calls),
            "  progress protocol: %d hold evaluations, %d memo hits (%.1f%%)"
            % (self.hold_evals, self.hold_memo_hits, memo_pct),
            "  delivered: %d messages, %d notifications"
            % (self.delivered_messages, self.delivered_notifications),
        ]
        for kind in sorted(self.messages_by_kind):
            out.append(
                "  network[%s]: %d messages, %d bytes"
                % (kind, self.messages_by_kind[kind], self.bytes_by_kind.get(kind, 0))
            )
        if self.pool_size:
            out.append(
                "  pool: %d children, %d/%d claims offloaded, "
                "%.3fs coordinator wait, %.3fs child cpu, %d resets"
                % (
                    self.pool_size,
                    self.pool_tasks,
                    self.pool_claims,
                    self.pool_wait_wall,
                    sum(self.pool_child_wall.values()),
                    self.pool_resets,
                )
            )
        return out


def collect_profile(comp) -> DESProfile:
    """Collect a :class:`DESProfile` from a runtime.

    Works for :class:`repro.runtime.ClusterComputation` (full counters)
    and degrades gracefully for the reference runtime (delivery counts
    only — it has no simulator, network or protocol).
    """
    profile = DESProfile(
        delivered_messages=getattr(comp, "delivered_messages", 0),
        delivered_notifications=getattr(comp, "delivered_notifications", 0),
    )
    sim = getattr(comp, "sim", None)
    if sim is not None:
        profile.events_executed = sim.events_executed
        profile.heap_pushes = sim.heap_pushes
        profile.lane_pushes = sim.lane_pushes
        profile.peak_heap = sim.peak_heap
        profile.background_pushes = sim.background_pushes
        profile.virtual_time = sim.now
    network = getattr(comp, "network", None)
    if network is not None:
        profile.messages_by_kind = dict(network.stats.messages_by_kind)
        profile.bytes_by_kind = dict(network.stats.bytes_by_kind)
    profile.batch_bytes_calls = getattr(comp, "batch_bytes_calls", 0)
    profile.stage_cost_calls = getattr(comp, "stage_cost_calls", 0)
    for node in getattr(comp, "nodes", ()):
        profile.hold_evals += node.hold_evals
        profile.hold_memo_hits += node.hold_memo_hits
    central = getattr(comp, "central", None)
    if central is not None:
        profile.hold_evals += central.hold_evals
        profile.hold_memo_hits += central.hold_memo_hits
    workers = getattr(comp, "workers", None)
    if workers:
        profile.delivered_messages = sum(w.delivered_messages for w in workers)
        profile.delivered_notifications = sum(
            w.delivered_notifications for w in workers
        )
    pool = getattr(comp, "pool", None)
    if pool is not None:
        profile.pool_size = pool.size
        profile.pool_claims = pool.claims_made
        profile.pool_tasks = pool.tasks_offloaded
        profile.pool_wait_wall = pool.wait_wall
        profile.pool_child_wall = dict(enumerate(pool.child_wall))
        profile.pool_resets = pool.resets
    return profile
