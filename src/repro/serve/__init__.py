"""`repro.serve` — multi-tenant interactive serving over shared
arrangements.

The serving layer answers interactive queries against live-maintained
dataflow state (the Naiad Figure 8 / §6.4 scenario) without paying
per-session state: a :class:`SharedArrangement` is one operator's
epoch-versioned index, written once per epoch by its maintaining
:class:`ArrangeVertex` (built with ``Stream.arrange_by``) and read by
any number of sessions at consistent epochs; the :class:`SessionManager`
multiplexes thousands of lightweight sessions over one serving vertex
per worker, with per-session ``fresh`` / ``stale(bound)`` SLO classes
and optional admission control (:class:`AdmissionPolicy`) that degrades
or sheds before the update path starves.
"""

from .admission import AdmissionController, AdmissionPolicy, AdmissionVerdict
from .arrangement import (
    Arrangement,
    ArrangementView,
    ArrangeVertex,
    CompactedEpochError,
    SharedArrangement,
    snapshot_views,
)
from .session import Answer, ServeVertex, Session, SessionManager

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionVerdict",
    "Answer",
    "Arrangement",
    "ArrangementView",
    "ArrangeVertex",
    "CompactedEpochError",
    "ServeVertex",
    "Session",
    "SessionManager",
    "SharedArrangement",
    "snapshot_views",
]
