"""Coordination-free Datalog evaluation with Bloom-style operators (§4.2).

Transitive closure — path(X,Z) :- edge(X,Y), path(Y,Z) — evaluated
inside a timely dataflow loop using only asynchronous operators
(join + distinct, no notifications requested): the subgraph executes
without any coordination, and derived facts stream out as soon as they
are discovered.  A monotonic aggregate then maintains, per source node,
the farthest node id reached so far, re-emitting whenever it improves
(BloomL-style lattice programming).

Run:  python examples/datalog_reachability.py
"""

from repro import Computation
from repro.lib import Stream, monotonic_aggregate, transitive_closure


def main():
    comp = Computation()
    edges = comp.new_input("edges")

    paths = transitive_closure(Stream.from_input(edges))
    paths.subscribe(
        lambda t, records: print(
            "  epoch %d derived paths: %s" % (t.epoch, sorted(records))
        )
    )
    monotonic_aggregate(
        paths,
        key=lambda p: p[0],
        value=lambda p: p[1],
        better=lambda new, current: new > current,
    ).subscribe(
        lambda t, records: print(
            "  epoch %d farthest-reached improved: %s" % (t.epoch, sorted(records))
        )
    )
    comp.build()

    print("feeding a chain 0 -> 1 -> 2 -> 3:")
    edges.on_next([(0, 1), (1, 2), (2, 3)])
    comp.run()

    print("adding a shortcut 3 -> 5 (async state joins across epochs):")
    edges.on_next([(3, 5)])
    edges.on_completed()
    comp.run()
    assert comp.drained()
    print(
        "notifications delivered: %d (only the subscribe sinks coordinate)"
        % comp.delivered_notifications
    )


if __name__ == "__main__":
    main()
