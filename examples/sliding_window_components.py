"""Sliding-window connected components with retractions (paper §7).

The paper contrasts Naiad with cyclic stream processors that cannot
retract records, citing sliding-window connected components as an
algorithm Naiad supports.  Each epoch, edges older than the window are
retracted (multiplicity −1) while new edges are asserted (+1); the
incremental collection maintains exact component labels over whatever
edges are currently inside the window.

Run:  python examples/sliding_window_components.py
"""

from collections import deque

from repro import Computation
from repro.lib import Collection, Stream
from repro.workloads import TweetGenerator, TweetStreamConfig, mention_edges

WINDOW_EPOCHS = 3


def main():
    comp = Computation()
    edges_in = comp.new_input("edges")
    live = {}
    Collection(Stream.from_input(edges_in)).connected_components(
        allow_deletions=True
    ).accumulate_into(live)
    comp.build()

    generator = TweetGenerator(
        TweetStreamConfig(num_users=40, mention_probability=1.0, seed=6)
    )
    window = deque()
    for epoch in range(8):
        fresh = mention_edges(generator.batch(6))
        diffs = [(edge, +1) for edge in fresh]
        window.append(fresh)
        if len(window) > WINDOW_EPOCHS:
            expired = window.popleft()
            diffs += [(edge, -1) for edge in expired]
        edges_in.on_next(diffs)
        comp.run()
        components = {}
        for (node, label), _ in live.items():
            components.setdefault(label, []).append(node)
        sizes = sorted((len(m) for m in components.values()), reverse=True)
        print(
            "epoch %d: +%d edges, -%d expired -> %2d nodes in %2d components %s"
            % (
                epoch,
                len(fresh),
                len(diffs) - len(fresh),
                sum(sizes),
                len(sizes),
                sizes[:5],
            )
        )
    edges_in.on_completed()
    comp.run()
    assert comp.drained()


if __name__ == "__main__":
    main()
