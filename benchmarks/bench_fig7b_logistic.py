"""Figure 7b: logistic regression speedup, Naiad AllReduce versus VW.

The paper modifies Vowpal Wabbit to run its training phases inside
Naiad vertices with a data-parallel AllReduce replacing VW's binary
tree, measuring speedup over a single computer for an iteration over
312M records with a 268 MB reduced vector.  Findings: both curves
flatten past ~32 computers (the constant-time phases bound scaling) and
the Naiad AllReduce gives an asymptotic ~35% improvement.

Two parts here: (1) the phase model at the paper's full scale produces
the speedup curves; (2) the *executable* check — the same training
dataflow run on the simulated cluster with both AllReduce
implementations from :mod:`repro.lib.allreduce`, confirming the
data-parallel variant wins end-to-end with identical results.
"""


from repro.lib import Stream, allreduce, tree_allreduce
from repro.algorithms import logistic_regression, make_dataset
from repro.baselines import naiad_iteration_time, speedup_curve, vw_iteration_time
from repro.runtime import ClusterComputation

from bench_harness import format_table, human_time, report

RECORDS = 312_000_000
VECTOR_BYTES = 268 << 20
PROCESSES = [1, 2, 4, 8, 16, 32, 64]


def run_cluster_training(reducer) -> float:
    comp = ClusterComputation(
        num_processes=8, workers_per_process=1, progress_mode="local+global"
    )
    inp = comp.new_input()
    X, y, _ = make_dataset(4000, 2000, seed=2)  # 2000-feature dense vector
    logistic_regression(
        Stream.from_input(inp), 2000, iterations=4, reducer=reducer
    ).subscribe(lambda t, recs: None)
    comp.build()
    inp.stage.outputs[0][0].partitioner = lambda rec: rec[0]
    total = comp.total_workers
    inp.on_next([(w, X[w::total], y[w::total], len(y)) for w in range(total)])
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return comp.now


def test_fig7b_logistic_speedup(benchmark):
    def experiment():
        vw = dict(speedup_curve(PROCESSES, RECORDS, VECTOR_BYTES, vw_iteration_time))
        naiad = dict(
            speedup_curve(PROCESSES, RECORDS, VECTOR_BYTES, naiad_iteration_time)
        )
        cluster_times = {
            "data-parallel": run_cluster_training(allreduce),
            "tree": run_cluster_training(tree_allreduce),
        }
        return vw, naiad, cluster_times

    vw, naiad, cluster_times = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = format_table(
        ["computers", "VW speedup", "Naiad speedup"],
        [(p, "%.1fx" % vw[p], "%.1fx" % naiad[p]) for p in PROCESSES],
    )
    lines.append("")
    lines.append(
        "executable 8-computer training run: data-parallel %s, tree %s"
        % (
            human_time(cluster_times["data-parallel"]),
            human_time(cluster_times["tree"]),
        )
    )
    report("fig7b_logistic", lines)

    # Naiad's AllReduce dominates at every multi-process size.
    for p in PROCESSES[1:]:
        assert naiad[p] > vw[p]
    # Both flatten: the last doubling gains much less than the first.
    assert vw[64] / vw[32] < 1.2
    assert naiad[64] / naiad[32] < 1.2
    assert vw[2] / vw[1] > 1.5
    # Asymptotic advantage in the ~35% regime (the paper's figure).
    assert 1.1 < naiad[64] / vw[64] < 1.8
    # The executable dataflow agrees with the model's ordering.
    assert cluster_times["data-parallel"] < cluster_times["tree"]
