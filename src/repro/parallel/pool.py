"""The multiprocessing vertex-execution pool (the ``mp`` backend).

Design: the DES thread remains the *only* place where virtual time
advances, work is selected, costs are charged and progress updates are
applied.  What moves off-thread is exclusively the body of a vertex
callback (``on_recv`` / ``on_notify``): the pool child executes it
against its own resident copy of the vertex state and sends back the
*recorded effects* — every ``send_by`` (already partitioned into
per-destination shares, with batch sizes precomputed) and every
``notify_at``.  The coordinator replays those effects through the same
bookkeeping the inline backend uses, in the same order, so updates,
dispatches, costs and therefore virtual time are bit-identical.

Mechanics:

* **Fork, not spawn.**  Stage factories and partitioners are closures;
  they do not pickle.  Children are forked after ``build()``, so they
  inherit the fully constructed physical graph, and from then on each
  child's copy of a vertex it owns is the authoritative one.

* **Pinning.**  Sim-worker ``i`` is owned by pool child ``i % size``
  for the life of the computation — stable across failure recovery,
  reassignment and elastic rescaling, so vertex state never migrates
  between children except through the explicit checkpoint/restore
  path.  Ownership keys on the *worker index*, never on the hosting
  process, which is exactly why ``add_process`` / ``remove_process``
  can rehome workers without touching the pool: only the cluster's
  placement map changes, and the moved workers' states arrive through
  the same ``push_worker_states`` path a partial rollback uses.

* **Claims.**  ``Simulator.step`` calls :meth:`VertexPool.prefetch`
  (the ``dispatcher`` hook), which stages the maximal run of
  same-instant ``_Worker._step`` events, claims each ready worker's
  next unit of work via ``_Worker._select`` — selection state cannot
  change within the batch because commits and protocol deliveries are
  never part of it — and ships offloadable callbacks to the children.
  Children compute while the coordinator dispatches; each ``_step``
  then consumes its claim in the original event order.

* **Backpressure.**  One outstanding task per child; further tasks
  queue coordinator-side.  A child never blocks sending a result and
  the coordinator never blocks sending a task, so the pipe protocol
  cannot deadlock.

* **State shipping.**  Checkpoint barriers pull vertex state from the
  children (:meth:`checkpoint_states`); rollback pushes the restored
  snapshot back (:meth:`restore_states`) and discards any claims that
  were in flight when the failure hit (:meth:`reset`).
"""

from __future__ import annotations

import multiprocessing
import traceback
import weakref
from collections import deque
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..columnar import ColumnarBatch, route
from ..core.computation import TimestampViolation
from ..core.graph import StageKind
from .shm_ring import EffectRing, RingRef, shared_memory_available

#: Pool size when neither the constructor nor REPRO_POOL_WORKERS says.
DEFAULT_POOL_WORKERS = 4


def fork_available() -> bool:
    """The pool requires the ``fork`` start method (closures don't
    pickle); true everywhere but Windows and some embedders."""
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# Child side.
# ----------------------------------------------------------------------


class _ChildHarness:
    """The vertex harness installed inside a pool child.

    Presents the same surface a :class:`repro.runtime.cluster._Worker`
    does (``send`` / ``request_notification`` / ``total_workers``), but
    instead of touching runtime bookkeeping it records effects — with
    the same timestamp-violation checks and the exact partitioning the
    inline worker would perform, so the coordinator can apply them
    verbatim.
    """

    __slots__ = (
        "total_workers",
        "record_bytes",
        "_effects",
        "_frame_time",
        "_frame_capability",
    )

    def __init__(self, total_workers: int, record_bytes: int):
        self.total_workers = total_workers
        self.record_bytes = record_bytes
        self._effects: Optional[List[Tuple]] = None
        self._frame_time = None
        self._frame_capability = True

    def invoke(self, vertex, kind: str, port, records, timestamp) -> List[Tuple]:
        self._effects = []
        self._frame_time = timestamp
        self._frame_capability = kind != "cleanup"
        try:
            if kind == "recv":
                if type(records) is ColumnarBatch:
                    vertex.on_recv_batch(port, records, timestamp)
                else:
                    vertex.on_recv(port, records, timestamp)
            else:
                vertex.on_notify(timestamp)
        finally:
            self._frame_time = None
            self._frame_capability = True
        effects, self._effects = self._effects, None
        return effects

    # -- the Vertex.send_by / Vertex.notify_at surface ------------------

    def send(self, vertex, output_port: int, records, timestamp) -> None:
        from ..runtime.synthetic import batch_bytes

        stage = vertex.stage
        if not self._frame_capability:
            raise TimestampViolation(
                "send_by from a capability-free (state purging) notification"
            )
        if stage.kind is StageKind.NORMAL and self._frame_time is not None:
            current = self._frame_time
            if current.depth == timestamp.depth and not current.less_equal(timestamp):
                raise TimestampViolation(
                    "send_by at %r from a callback at %r" % (timestamp, current)
                )
        out_time = stage.timestamp_action().apply(timestamp)
        total = self.total_workers
        record_bytes = self.record_bytes
        plan = []
        for conn_pos, connector in enumerate(stage.outputs[output_port]):
            # The shared routing implementation (repro.columnar.route):
            # identical bucketing to the inline _Worker.send, plus the
            # columnar encode/partition fast paths on marked connectors.
            shares = route(connector, records, total, vertex.worker)
            plan.append(
                (
                    conn_pos,
                    [
                        (dest, batch, batch_bytes(batch, record_bytes))
                        for dest, batch in shares
                    ],
                )
            )
        self._effects.append(("send", output_port, out_time, plan))

    def request_notification(self, vertex, timestamp, capability: bool = True) -> None:
        if not self._frame_capability:
            raise TimestampViolation(
                "notify_at from a capability-free (state purging) notification"
            )
        if self._frame_time is not None:
            current = self._frame_time
            if current.depth == timestamp.depth and not current.less_equal(timestamp):
                raise TimestampViolation(
                    "notify_at at %r from a callback at %r" % (timestamp, current)
                )
        self._effects.append(("notify", timestamp, capability))


def _park_effects(ring: EffectRing, effects: List[Tuple]) -> None:
    """Move columnar batch payloads out of ``effects`` into the shared
    arena (in place), leaving :class:`RingRef` stand-ins for the
    coordinator to hydrate.  Batches the arena cannot hold keep riding
    the pickle path."""
    for effect in effects:
        if effect[0] != "send":
            continue
        for _conn_pos, shares in effect[3]:
            for i, (dest, batch, nbytes) in enumerate(shares):
                if type(batch) is ColumnarBatch:
                    ref = ring.put(batch)
                    if ref is not None:
                        shares[i] = (dest, ref, nbytes)


def _child_main(cluster, rank: int, size: int, offload, conn, ring) -> None:
    """Pool child event loop: execute callbacks, answer state requests.

    Runs in a forked copy of the coordinator process, so ``cluster`` is
    the inherited (pre-fork) object graph.  Only the vertices this child
    owns are ever touched; between calls their state simply stays
    resident, which is the entire point.
    """
    harness = _ChildHarness(cluster.total_workers, cluster.cost_model.record_bytes)
    vertices = cluster.vertices
    by_index = {stage.index: stage for stage in cluster.graph.stages}
    for vertex in vertices.values():
        vertex._harness = harness
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        op = msg[0]
        if op == "call":
            _, task_id, stage_index, worker_index, kind, port, records, timestamp = msg
            vertex = vertices[(by_index[stage_index], worker_index)]
            started = perf_counter()
            if ring is not None:
                # Safe to reclaim the whole arena here: one outstanding
                # task per child, and the coordinator hydrates every
                # RingRef at receive time — before pumping the next
                # task — so nothing points into the arena any more.
                ring.reset()
            try:
                effects = harness.invoke(vertex, kind, port, records, timestamp)
                if ring is not None:
                    _park_effects(ring, effects)
                reply = (task_id, "ok", effects, perf_counter() - started)
            except BaseException as exc:
                reply = (
                    task_id,
                    "error",
                    (type(exc).__name__, str(exc), traceback.format_exc()),
                    perf_counter() - started,
                )
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            except Exception as exc:  # unpicklable effects
                conn.send(
                    (
                        task_id,
                        "error",
                        (type(exc).__name__, str(exc), traceback.format_exc()),
                        0.0,
                    )
                )
        elif op == "checkpoint":
            states = {
                (stage.index, worker_index): vertex.checkpoint()
                for (stage, worker_index), vertex in vertices.items()
                if stage.index in offload and worker_index % size == rank
            }
            conn.send(states)
        elif op == "checkpoint_worker":
            # Asynchronous cuts snapshot one sim worker at a time, and
            # incrementally: only the stages named (the dirty ones).
            _, worker_index, stage_indices = msg
            conn.send(
                {
                    (stage_index, worker_index): vertices[
                        (by_index[stage_index], worker_index)
                    ].checkpoint()
                    for stage_index in stage_indices
                }
            )
        elif op == "restore":
            for (stage_index, worker_index), state in msg[1].items():
                vertices[(by_index[stage_index], worker_index)].restore(state)
            conn.send(("ok",))
        elif op == "exit":
            break
    conn.close()


# ----------------------------------------------------------------------
# Coordinator side.
# ----------------------------------------------------------------------


class _Claim:
    """One unit of work claimed at prefetch time for a sim worker.

    ``work`` is whatever ``_Worker._select`` returned (None for an
    empty claim).  For offloaded work, ``task_id``/``channel`` track
    the in-flight pool task until ``effects``/``child_wall`` are
    materialized by :meth:`VertexPool.take_claim`.
    """

    __slots__ = ("work", "task_id", "channel", "result", "pool_rank", "effects", "child_wall")

    def __init__(self, work):
        self.work = work
        self.task_id: Optional[int] = None
        self.channel = None
        self.result = None
        self.pool_rank = -1
        self.effects: Optional[List[Tuple]] = None
        self.child_wall = 0.0

    @property
    def offloaded(self) -> bool:
        return self.task_id is not None


class _Channel:
    """Coordinator-side endpoint for one pool child."""

    __slots__ = ("rank", "conn", "process", "outstanding", "backlog")

    def __init__(self, rank, conn, process):
        self.rank = rank
        self.conn = conn
        self.process = process
        #: Claims whose task was sent; results come back in this order.
        self.outstanding: deque = deque()
        #: (claim, payload) not yet sent (window of 1 in flight).
        self.backlog: deque = deque()


def _shutdown(channels, processes, rings) -> None:
    for channel in channels:
        try:
            channel.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        try:
            channel.conn.close()
        except OSError:
            pass
    for process in processes:
        process.join(timeout=2.0)
        if process.is_alive():
            process.terminate()
    for ring in rings:
        if ring is not None:
            ring.close(unlink=True)


class VertexPool:
    """The persistent pool of forked vertex-execution processes.

    Created lazily by :class:`repro.runtime.ClusterComputation` on the
    first ``run()``/``step()`` after ``build()``; installed as the
    simulator's ``dispatcher``.
    """

    def __init__(self, cluster, size: int):
        if size < 1:
            raise ValueError("pool size must be >= 1 (got %d)" % size)
        if not fork_available():
            raise RuntimeError(
                "the mp backend requires the fork start method "
                "(stage factories are closures and do not pickle)"
            )
        from ..runtime.cluster import _Worker

        self._worker_step = _Worker._step
        self.cluster = cluster
        self.size = size
        #: Stage indexes whose vertices execute in the pool: normal
        #: (user) stages not pinned to the coordinator.  System stages
        #: (ingress/egress/feedback) just forward — a pool round-trip
        #: would cost more than it saves — and coordinator_only classes
        #: side-effect driver objects.
        self.offload_stages = frozenset(
            stage.index
            for stage in cluster.graph.stages
            if stage.kind is StageKind.NORMAL
            and (stage, 0) in cluster.vertices
            and not cluster.vertices[(stage, 0)].coordinator_only
        )
        self._claims: Dict[int, _Claim] = {}
        self._next_task = 0
        #: Profiling counters (see repro.obs.profile).
        self.claims_made = 0
        self.tasks_offloaded = 0
        self.wait_wall = 0.0
        self.child_wall = [0.0] * size
        self.resets = 0
        self.ring_batches = 0
        # Shared-memory effect arenas, one per child, created BEFORE the
        # fork so the children inherit the mappings (nothing is reopened
        # by name, and fork-context Process args are never pickled).
        # Any failure to allocate just means effects ride the pipes.
        self._rings: List[Optional[EffectRing]] = [None] * size
        if getattr(cluster, "columnar", False) and shared_memory_available():
            try:
                self._rings = [EffectRing() for _ in range(size)]
            except Exception:
                for ring in self._rings:
                    if ring is not None:
                        ring.close(unlink=True)
                self._rings = [None] * size
        ctx = multiprocessing.get_context("fork")
        self._channels: List[_Channel] = []
        processes = []
        for rank in range(size):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_child_main,
                args=(
                    cluster,
                    rank,
                    size,
                    self.offload_stages,
                    child_conn,
                    self._rings[rank],
                ),
                daemon=True,
                name="repro-pool-%d" % rank,
            )
            process.start()
            child_conn.close()
            self._channels.append(_Channel(rank, parent_conn, process))
            processes.append(process)
        self._finalizer = weakref.finalize(
            self, _shutdown, self._channels, processes, self._rings
        )

    # ------------------------------------------------------------------
    # The Simulator dispatcher hook.
    # ------------------------------------------------------------------

    def _match(self, callback) -> bool:
        return (
            getattr(callback, "__func__", None) is self._worker_step
            and callback.__self__.cluster is self.cluster
        )

    def prefetch(self, sim) -> None:
        """Stage the next same-instant batch of worker steps and ship
        the offloadable callbacks to the pool."""
        staged = sim.stage_events(self._match)
        if not staged:
            return
        cluster = self.cluster
        # The staged run may sit at a *future* instant (the head of the
        # queue); eligibility must be judged at that instant — the clock
        # will have advanced to it by the time the events execute.
        batch_time = staged[0][0]
        network = cluster.network
        claims = self._claims
        for _, _, callback in staged:
            worker = callback.__self__
            if worker.dead or worker.index in claims:
                # A claim can already exist when a _step deferred by a
                # straggler pause re-arms into a later batch; it will be
                # consumed by that _step, never re-selected.
                continue
            if worker._cut_deferred:
                # The worker owes an asynchronous-checkpoint cut; a new
                # claim would pop work out of the queue ahead of the
                # cut's capture.  Let _step take the cut first.
                continue
            start = max(
                batch_time,
                worker.busy_until,
                network.process_available_at(worker.process),
            )
            if start > batch_time:
                continue  # _step will re-arm itself; select at that time
            work = worker._select()
            claim = _Claim(work)
            claims[worker.index] = claim
            self.claims_made += 1
            if work is None:
                continue
            kind = work[0]
            if kind == "recv":
                connector = work[1]
                stage = connector.dst
                if stage.index not in self.offload_stages:
                    continue
                payload_tail = (connector.dst_port, work[2], work[3])
            else:
                pointstamp = work[1]
                stage = pointstamp.location
                if stage.index not in self.offload_stages:
                    continue
                payload_tail = (None, None, pointstamp.timestamp)
            task_id = self._next_task
            self._next_task += 1
            claim.task_id = task_id
            channel = self._channels[worker.index % self.size]
            claim.channel = channel
            claim.pool_rank = channel.rank
            channel.backlog.append(
                (
                    claim,
                    ("call", task_id, stage.index, worker.index, kind) + payload_tail,
                )
            )
            self.tasks_offloaded += 1
            self._pump(channel)

    def _pump(self, channel: _Channel) -> None:
        while channel.backlog and not channel.outstanding:
            claim, payload = channel.backlog.popleft()
            channel.conn.send(payload)
            channel.outstanding.append(claim)

    # ------------------------------------------------------------------
    # Claim consumption (called from _Worker._step).
    # ------------------------------------------------------------------

    def take_claim(self, worker) -> Optional[_Claim]:
        claim = self._claims.pop(worker.index, None)
        if claim is None or claim.task_id is None:
            return claim
        if claim.result is None:
            self._resolve(claim)
        task_id, status, payload, child_wall = claim.result
        self.child_wall[claim.pool_rank] += child_wall
        claim.child_wall = child_wall
        if status == "error":
            name, message, child_traceback = payload
            if name == "TimestampViolation":
                raise TimestampViolation(message)
            raise RuntimeError(
                "pool worker %d failed executing %r: %s: %s"
                "\n--- child traceback ---\n%s"
                % (claim.pool_rank, worker, name, message, child_traceback)
            )
        claim.effects = payload
        return claim

    def _hydrate(self, channel: _Channel, message) -> None:
        """Replace every :class:`RingRef` in a child's reply with the
        batch it points at, read out of that child's shared arena.

        Must run at receive time — before the next task is pumped to
        the child — because the child reclaims the whole arena at the
        start of each task.
        """
        ring = self._rings[channel.rank]
        if ring is None or message[1] != "ok":
            return
        for effect in message[2]:
            if effect[0] != "send":
                continue
            for _conn_pos, shares in effect[3]:
                for i, entry in enumerate(shares):
                    if type(entry[1]) is RingRef:
                        shares[i] = (entry[0], ring.get(entry[1]), entry[2])
                        self.ring_batches += 1

    def _resolve(self, claim: _Claim) -> None:
        channel = claim.channel
        while claim.result is None:
            head = channel.outstanding[0]
            started = perf_counter()
            message = channel.conn.recv()
            self.wait_wall += perf_counter() - started
            if message[0] != head.task_id:
                raise RuntimeError(
                    "pool protocol error: expected result for task %d, got %r"
                    % (head.task_id, message[0])
                )
            self._hydrate(channel, message)
            head.result = message
            channel.outstanding.popleft()
            self._pump(channel)

    # ------------------------------------------------------------------
    # Asynchronous-checkpoint support (claim inspection and per-worker
    # state shipping while the rest of the pool keeps computing).
    # ------------------------------------------------------------------

    def claim_has_work(self, worker_index: int) -> bool:
        """True when ``worker_index`` holds a claim with popped work —
        the cut-deferral condition for asynchronous snapshots."""
        claim = self._claims.get(worker_index)
        return claim is not None and claim.work is not None

    def peek_claim_work(self, worker_index: int):
        """The claimed-but-unconsumed work unit (or None) — partial
        rollback compensates its occurrence counts."""
        claim = self._claims.get(worker_index)
        return claim.work if claim is not None else None

    def _drain(self, channel: _Channel) -> None:
        """Materialize every outstanding result on ``channel`` without
        feeding it more work, leaving the pipe free for a synchronous
        state conversation.  Results are stored on their claims, which
        ``take_claim`` honors later; the caller must ``_pump`` when its
        conversation is done."""
        while channel.outstanding:
            head = channel.outstanding[0]
            message = channel.conn.recv()
            if message[0] != head.task_id:
                raise RuntimeError(
                    "pool protocol error: expected result for task %d, got %r"
                    % (head.task_id, message[0])
                )
            self._hydrate(channel, message)
            head.result = message
            channel.outstanding.popleft()

    def pull_worker_states(self, worker_index: int, stage_indices):
        """Fetch one sim worker's pool-resident states (the listed
        stages only) without requiring a drained pool."""
        offload = [si for si in stage_indices if si in self.offload_stages]
        if not offload:
            return {}
        channel = self._channels[worker_index % self.size]
        self._drain(channel)
        channel.conn.send(("checkpoint_worker", worker_index, offload))
        states = channel.conn.recv()
        self._pump(channel)
        return states

    def push_worker_states(self, vertex_states, worker_indices) -> None:
        """Restore only ``worker_indices``'s shares of a snapshot into
        their owning children (partial rollback; pool stays live)."""
        targets = set(worker_indices)
        shares: List[Dict[Tuple[int, int], Any]] = [{} for _ in range(self.size)]
        for (stage_index, worker_index), state in vertex_states.items():
            if worker_index in targets and stage_index in self.offload_stages:
                shares[worker_index % self.size][(stage_index, worker_index)] = state
        for channel, share in zip(self._channels, shares):
            if not share:
                continue
            self._drain(channel)
            channel.conn.send(("restore", share))
            channel.conn.recv()
            self._pump(channel)

    def discard_claims(self, worker_indices) -> None:
        """Drop the named workers' claims and backlogged tasks (their
        sim workers died); everyone else's claims survive."""
        dead = set(worker_indices)
        for rank in {index % self.size for index in dead}:
            channel = self._channels[rank]
            self._drain(channel)
            if channel.backlog:
                kept = [
                    (claim, payload)
                    for claim, payload in channel.backlog
                    if payload[3] not in dead
                ]
                channel.backlog.clear()
                channel.backlog.extend(kept)
            self._pump(channel)
        for index in dead:
            self._claims.pop(index, None)
        self.resets += 1

    # ------------------------------------------------------------------
    # State shipping and lifecycle.
    # ------------------------------------------------------------------

    def idle(self) -> bool:
        return not self._claims and all(
            not c.outstanding and not c.backlog for c in self._channels
        )

    def reset(self) -> None:
        """Discard all claims and in-flight tasks (failure rollback).

        Tasks already executed by a child mutated that child's vertex
        state past the rollback point; the subsequent
        :meth:`restore_states` overwrites it with the snapshot, so the
        results are simply drained and dropped.
        """
        for channel in self._channels:
            channel.backlog.clear()
            while channel.outstanding:
                channel.conn.recv()
                channel.outstanding.popleft()
        self._claims.clear()
        self.resets += 1

    def checkpoint_states(self) -> Dict[Tuple[int, int], Any]:
        """Pull the authoritative state of every pool-resident vertex.

        Caller (the checkpoint barrier) guarantees quiescence, so no
        task is in flight and the children answer immediately.
        """
        assert self.idle(), "checkpoint_states() requires a drained pool"
        for channel in self._channels:
            channel.conn.send(("checkpoint",))
        states: Dict[Tuple[int, int], Any] = {}
        for channel in self._channels:
            states.update(channel.conn.recv())
        return states

    def restore_states(self, vertex_states: Dict[Tuple[int, int], Any]) -> None:
        """Push snapshot state back into the owning children."""
        assert self.idle(), "restore_states() requires a drained pool"
        shares: List[Dict[Tuple[int, int], Any]] = [{} for _ in range(self.size)]
        for (stage_index, worker_index), state in vertex_states.items():
            if stage_index in self.offload_stages:
                shares[worker_index % self.size][(stage_index, worker_index)] = state
        for channel, share in zip(self._channels, shares):
            channel.conn.send(("restore", share))
        for channel in self._channels:
            channel.conn.recv()

    def close(self) -> None:
        self._finalizer()

    def __repr__(self) -> str:
        return "VertexPool(size=%d, offload_stages=%d, tasks=%d)" % (
            self.size,
            len(self.offload_stages),
            self.tasks_offloaded,
        )
