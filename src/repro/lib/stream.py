"""Fluent stream API over the timely dataflow graph (paper section 4).

A :class:`Stream` wraps one output port of a stage and offers the
LINQ-style operators of section 4.2 plus loop construction (section
4.3).  The prototypical program shape is the one from section 4.1::

    comp = Computation()
    result = (Stream.from_input(comp.new_input())
                .select_many(mapper)
                .group_by(key, reducer)
                .subscribe(lambda t, records: ...))
    comp.build()
    comp.inputs[0].on_next(first_epoch)
    comp.run()

Keyed operators (``group_by``, ``count_by``, ``join`` …) attach a hash
partitioning function to their input connector, so the same program runs
data-parallel on the distributed runtime without modification
(section 3.1).
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterable, List, Optional

from ..core.computation import Computation, InputHandle
from ..core.graph import (
    FeedbackNotConnectedError,
    GraphValidationError,
    LoopContext,
    Stage,
)
from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from ..opt.plan import HashPartitioner, OpSpec
from . import operators as ops


def hash_partitioner(
    key: Callable[[Any], Any], key_col: Optional[int] = None
) -> HashPartitioner:
    """Route records with equal ``key`` to the same downstream vertex.

    Returns a :class:`repro.opt.plan.HashPartitioner`, whose structural
    equality (same key selector) lets the optimizer's exchange-elision
    pass prove when two exchanges route identically.  ``key_col``
    optionally asserts ``key(record) == record[key_col]`` so the
    columnar data plane can partition batches by column.
    """
    return HashPartitioner(key, key_col)


def _identity(record: Any) -> Any:
    return record


def _single_partition(record: Any) -> int:
    return 0


# Operator metadata consumed by repro.opt.  ``fusable`` marks the
# 1-in/1-out library vertices whose callback discipline the fusion pass
# relies on; ``batchable`` grants batch coalescing on input connectors;
# ``preserves_partitioning`` marks subset operators for exchange
# elision.  ``inspect`` is deliberately neither fusable (its per-batch
# probe callback is driver-side, coordinator_only) nor batchable (the
# probe observes batch boundaries).
_OPSPECS = {
    "select": ("select", True, True, False),
    "where": ("where", True, True, True),
    "select_many": ("select_many", True, True, False),
    "concat": ("concat", False, True, True),
    "inspect": ("inspect", False, False, True),
    "distinct": ("distinct", True, True, True),
    "group_by": ("group_by", True, True, False),
    "count_by": ("count_by", True, True, False),
    "aggregate_by": ("aggregate_by", True, True, False),
    "buffered": ("buffered", True, True, False),
    "binary_buffered": ("binary_buffered", False, True, False),
    "join": ("join", False, True, False),
    "probe": ("probe", False, True, False),
    "subscribe": ("subscribe", False, True, False),
}


def _opspec(kind: str, schema: Optional[Any] = None) -> OpSpec:
    kind, fusable, batchable, preserving = _OPSPECS[kind]
    return OpSpec(
        kind,
        fusable=fusable,
        batchable=batchable,
        preserves_partitioning=preserving,
        schema=schema,
    )


class Stream:
    """One output port of a stage, with operator methods."""

    __slots__ = ("computation", "stage", "port")

    def __init__(self, computation: Computation, stage: Stage, port: int = 0):
        self.computation = computation
        self.stage = stage
        self.port = port

    @staticmethod
    def from_input(handle: InputHandle) -> "Stream":
        """Wrap an input stage created by :meth:`Computation.new_input`."""
        return Stream(handle._computation, handle.stage, 0)

    @property
    def context(self) -> Optional[LoopContext]:
        """The loop context in which this stream's records travel."""
        return self.stage.output_context

    # ------------------------------------------------------------------
    # Internal plumbing.
    # ------------------------------------------------------------------

    def _add_stage(
        self,
        name: str,
        factory: Callable[[], Vertex],
        num_inputs: int = 1,
        num_outputs: int = 1,
        opspec: Optional[OpSpec] = None,
    ) -> Stage:
        stage = self.computation.graph.new_stage(
            name,
            lambda stage, worker: factory(),
            num_inputs,
            num_outputs,
            context=self.context,
        )
        stage.opspec = opspec
        return stage

    def _unary(
        self,
        name: str,
        factory: Callable[[], Vertex],
        partitioner: Optional[Callable[[Any], int]] = None,
        num_outputs: int = 1,
        opspec: Optional[OpSpec] = None,
    ) -> "Stream":
        stage = self._add_stage(name, factory, 1, num_outputs, opspec=opspec)
        self.computation.graph.connect(self.stage, self.port, stage, 0, partitioner)
        return Stream(self.computation, stage, 0)

    def connect_to(
        self,
        stage: Stage,
        dst_port: int = 0,
        partitioner: Optional[Callable[[Any], int]] = None,
    ) -> None:
        """Connect this stream to an input port of an existing stage."""
        self.computation.graph.connect(self.stage, self.port, stage, dst_port, partitioner)

    def output(self, port: int) -> "Stream":
        """A stream for another output port of the same stage."""
        return Stream(self.computation, self.stage, port)

    # ------------------------------------------------------------------
    # Stateless operators (no coordination).
    # ------------------------------------------------------------------

    def select(
        self,
        function: Callable[[Any], Any],
        name: str = "select",
        schema: Optional[Any] = None,
    ) -> "Stream":
        return self._unary(
            name, lambda: ops.SelectVertex(function), opspec=_opspec("select", schema)
        )

    def where(
        self,
        predicate: Callable[[Any], bool],
        name: str = "where",
        schema: Optional[Any] = None,
    ) -> "Stream":
        return self._unary(
            name, lambda: ops.WhereVertex(predicate), opspec=_opspec("where", schema)
        )

    def select_many(
        self,
        function: Callable[[Any], Iterable[Any]],
        name: str = "select_many",
        schema: Optional[Any] = None,
    ) -> "Stream":
        return self._unary(
            name,
            lambda: ops.SelectManyVertex(function),
            opspec=_opspec("select_many", schema),
        )

    def concat(self, other: "Stream", name: str = "concat") -> "Stream":
        if other.context is not self.context:
            raise ValueError("concat requires streams in the same loop context")
        stage = self._add_stage(name, ops.ConcatVertex, 2, 1, opspec=_opspec("concat"))
        self.connect_to(stage, 0)
        other.connect_to(stage, 1)
        return Stream(self.computation, stage, 0)

    def inspect(
        self, probe: Callable[[Timestamp, List[Any]], None], name: str = "inspect"
    ) -> "Stream":
        return self._unary(
            name, lambda: ops.InspectVertex(probe), opspec=_opspec("inspect")
        )

    # ------------------------------------------------------------------
    # Coordinated operators.
    # ------------------------------------------------------------------

    def distinct(self, name: str = "distinct") -> "Stream":
        return self._unary(
            name,
            ops.DistinctVertex,
            partitioner=hash_partitioner(_identity),
            opspec=_opspec("distinct"),
        )

    def group_by(
        self,
        key: Callable[[Any], Any],
        reducer: Callable[[Any, List[Any]], Iterable[Any]],
        name: str = "group_by",
    ) -> "Stream":
        return self._unary(
            name,
            lambda: ops.GroupByVertex(key, reducer),
            partitioner=hash_partitioner(key),
            opspec=_opspec("group_by"),
        )

    def count_by(
        self,
        key: Callable[[Any], Any],
        name: str = "count_by",
        key_col: Optional[int] = None,
        schema: Optional[Any] = None,
    ) -> "Stream":
        return self._unary(
            name,
            lambda: ops.CountByVertex(key, key_col=key_col),
            partitioner=hash_partitioner(key, key_col),
            opspec=_opspec("count_by", schema),
        )

    def aggregate_by(
        self,
        key: Callable[[Any], Any],
        value: Callable[[Any], Any],
        combine: Callable[[Any, Any], Any],
        name: str = "aggregate_by",
        key_col: Optional[int] = None,
        value_col: Optional[int] = None,
        schema: Optional[Any] = None,
    ) -> "Stream":
        return self._unary(
            name,
            lambda: ops.AggregateByVertex(
                key, value, combine, key_col=key_col, value_col=value_col
            ),
            partitioner=hash_partitioner(key, key_col),
            opspec=_opspec("aggregate_by", schema),
        )

    def count(self, name: str = "count") -> "Stream":
        """Total record count per timestamp (single group)."""
        return self._unary(
            name,
            lambda: ops.UnaryBufferingVertex(lambda records: [len(records)]),
            partitioner=hash_partitioner(_single_partition),
            opspec=_opspec("buffered"),
        )

    def join(
        self,
        other: "Stream",
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result: Callable[[Any, Any], Any],
        name: str = "join",
        left_key_col: Optional[int] = None,
        right_key_col: Optional[int] = None,
        schema: Optional[Any] = None,
    ) -> "Stream":
        if other.context is not self.context:
            raise ValueError("join requires streams in the same loop context")
        stage = self._add_stage(
            name,
            lambda: ops.JoinVertex(
                left_key,
                right_key,
                result,
                left_key_col=left_key_col,
                right_key_col=right_key_col,
            ),
            2,
            1,
            opspec=_opspec("join", schema),
        )
        self.connect_to(stage, 0, hash_partitioner(left_key, left_key_col))
        other.connect_to(stage, 1, hash_partitioner(right_key, right_key_col))
        return Stream(self.computation, stage, 0)

    def buffered(
        self,
        transform: Callable[[List[Any]], Iterable[Any]],
        partitioner: Optional[Callable[[Any], int]] = None,
        name: str = "buffered",
        schema: Optional[Any] = None,
    ) -> "Stream":
        """Generic coordinated unary operator (section 4.2)."""
        return self._unary(
            name,
            lambda: ops.UnaryBufferingVertex(transform),
            partitioner=partitioner,
            opspec=_opspec("buffered", schema),
        )

    def binary_buffered(
        self,
        other: "Stream",
        transform: Callable[[List[Any], List[Any]], Iterable[Any]],
        partitioner: Optional[Callable[[Any], int]] = None,
        name: str = "binary_buffered",
    ) -> "Stream":
        """Generic coordinated binary operator (section 4.2).

        Buffers both inputs per timestamp and applies
        ``transform(left_records, right_records)`` at completion.
        """
        if other.context is not self.context:
            raise ValueError("binary_buffered requires streams in the same context")
        stage = self._add_stage(
            name,
            lambda: ops.BinaryBufferingVertex(transform),
            2,
            1,
            opspec=_opspec("binary_buffered"),
        )
        self.connect_to(stage, 0, partitioner)
        other.connect_to(stage, 1, partitioner)
        return Stream(self.computation, stage, 0)

    def union(self, other: "Stream", name: str = "union") -> "Stream":
        """Set union per timestamp: concat then distinct."""
        return self.concat(other, name="%s.concat" % name).distinct(
            name="%s.distinct" % name
        )

    def min_by(
        self,
        key: Callable[[Any], Any],
        value: Callable[[Any], Any],
        name: str = "min_by",
    ) -> "Stream":
        """Per-key minimum value at each timestamp."""
        return self.aggregate_by(key, value, min, name=name)

    def max_by(
        self,
        key: Callable[[Any], Any],
        value: Callable[[Any], Any],
        name: str = "max_by",
    ) -> "Stream":
        """Per-key maximum value at each timestamp."""
        return self.aggregate_by(key, value, max, name=name)

    def top_k(
        self,
        k: int,
        score: Callable[[Any], Any],
        name: str = "top_k",
    ) -> "Stream":
        """The k highest-scoring records of each timestamp.

        Two-level: each worker keeps a local top-k (a combiner), then a
        single partition selects the global winners.
        """
        def local_top(records: List[Any]) -> List[Any]:
            return sorted(records, key=score, reverse=True)[:k]

        partials = self.buffered(local_top, partitioner=None, name="%s.local" % name)
        return partials.buffered(
            local_top,
            partitioner=hash_partitioner(_single_partition),
            name="%s.global" % name,
        )

    # ------------------------------------------------------------------
    # Outputs.
    # ------------------------------------------------------------------

    def probe(self, name: str = "probe") -> "Probe":
        """Attach a progress probe to this stream.

        After ``build()``, ``probe.done(epoch)`` reports whether all
        work at or before that epoch has drained past this point in the
        dataflow — the introspection used to rate-limit producers or
        implement bounded staleness.  On the distributed runtime the
        answer comes from a local view and is therefore conservative
        (never claims completion early).
        """
        stage = self._add_stage(name, ops.ProbeVertex, 1, 0, opspec=_opspec("probe"))
        self.connect_to(stage, 0)
        return Probe(self.computation, stage)

    def arrange_by(
        self,
        key: Callable[[Any], Any],
        name: str = "arrange",
        retain: int = 4,
        partitioner: Optional[Callable[[Any], int]] = None,
    ):
        """Arrange this diff stream ``(record, multiplicity)`` into a
        shared epoch-versioned index, keyed by ``key(record)``.

        The maintaining vertex applies each epoch's consolidated diffs
        exactly once; any number of serving sessions then read the same
        index at consistent epochs (``repro.serve``).  Returns an
        :class:`repro.serve.Arrangement` handle for a
        :class:`~repro.serve.SessionManager` (its probe also makes it a
        completion oracle on its own).  The index lives on worker 0 of
        the coordinator, like the driver-side query readers it replaces.
        """
        from ..serve.arrangement import Arrangement, ArrangeVertex

        stage = self._add_stage(
            name, lambda: ArrangeVertex(name, key, retain=retain), 1, 1
        )
        self.computation.graph.connect(
            self.stage, self.port, stage, 0, partitioner or (lambda rec: 0)
        )
        probe = Stream(self.computation, stage, 0).probe(name + ".probe")
        handle = Arrangement(self.computation, stage, name, probe)
        self.computation.register_arrangement(handle)
        return handle

    def subscribe(
        self,
        callback: Callable[[Timestamp, List[Any]], None],
        name: str = "subscribe",
    ) -> Stage:
        """Invoke ``callback(timestamp, records)`` for each complete time."""
        stage = self._add_stage(
            name, lambda: ops.SubscribeVertex(callback), 1, 0, opspec=_opspec("subscribe")
        )
        self.connect_to(stage, 0)
        return stage

    def collect(self, name: str = "collect") -> List:
        """Subscribe into (and return) a list of ``(timestamp, records)``."""
        sink: List = []
        self.subscribe(lambda t, records: sink.append((t, records)), name=name)
        return sink

    # ------------------------------------------------------------------
    # Loops (section 4.3).
    # ------------------------------------------------------------------

    def scoped_loop(
        self,
        name: str = "loop",
        max_iterations: Optional[int] = None,
    ) -> "LoopScope":
        """Open a loop scope with this stream as its primary input.

        Use as a context manager: on ``__enter__`` the stream is passed
        through an ingress into the new scope (available as
        ``loop.entered``); the block wires the body, feeds the cycle and
        takes results out::

            with edges.scoped_loop(name="cc", max_iterations=64) as loop:
                merged = loop.entered.concat(loop.feedback)
                result = body(merged)
                loop.feed(result, partitioner=part)
                labels = loop.leave_with(result)

        Validation is eager: ``__exit__`` raises
        :class:`repro.core.graph.FeedbackNotConnectedError` when the
        cycle was never fed, connecting across the boundary without an
        ingress/egress raises ``CrossScopeConnectError``, and freezing
        the graph inside the with-block raises ``UnclosedScopeError``.
        """
        return LoopScope(
            self.computation,
            parent=self.context,
            max_iterations=max_iterations,
            name=name,
            anchor=self,
        )

    def enter(self, loop: "Loop") -> "Stream":
        """Deprecated: use :meth:`scoped_loop` / ``loop.enter(stream)``."""
        warnings.warn(
            "Stream.enter(loop) is deprecated; build loops with "
            "stream.scoped_loop(...) or computation.scope(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._enter_scope(loop.context)

    def leave(self) -> "Stream":
        """Deprecated: use ``loop.leave_with(stream)`` on the scope."""
        warnings.warn(
            "Stream.leave() is deprecated; take streams out of a scope "
            "with loop.leave_with(stream)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._leave_scope()

    def _enter_scope(self, context: LoopContext) -> "Stream":
        ingress = self.computation.add_ingress(context)
        self.connect_to(ingress, 0)
        return Stream(self.computation, ingress, 0)

    def _leave_scope(self) -> "Stream":
        if self.context is None:
            raise GraphValidationError("stream is not inside a loop context")
        egress = self.computation.add_egress(self.context)
        self.connect_to(egress, 0)
        return Stream(self.computation, egress, 0)

    def iterate(
        self,
        body: Callable[["Stream"], "Stream"],
        max_iterations: Optional[int] = None,
        partitioner: Optional[Callable[[Any], int]] = None,
        name: str = "iterate",
    ) -> "Stream":
        """Run ``body`` to fixed point inside a new loop scope.

        ``body`` receives the concatenation of this stream (entered into
        the loop) and the feedback stream, and returns the stream to feed
        back.  Iteration stops when the body stops producing records (or
        after ``max_iterations``).  Returns the body output, taken out of
        the loop through an egress.
        """
        with self.scoped_loop(name=name, max_iterations=max_iterations) as loop:
            merged = loop.entered.concat(loop.feedback)
            result = body(merged)
            loop.feed(result, partitioner=partitioner)
            out = loop.leave_with(result)
        return out

    def __repr__(self) -> str:
        return "Stream(%s[%d])" % (self.stage.name, self.port)


class Probe:
    """Observes completion of epochs at a point in the dataflow."""

    __slots__ = ("computation", "stage")

    def __init__(self, computation: Computation, stage: Stage):
        self.computation = computation
        self.stage = stage

    def _states(self):
        views = getattr(self.computation, "views", None)
        if views is not None:
            return [view.state for view in views]
        return [self.computation.progress]

    def first_incomplete(self) -> Optional[int]:
        """The earliest epoch that could still deliver work here.

        ``None`` means everything that will ever reach this probe has
        arrived (all inputs closed and drained).
        """
        summaries = self.computation.graph.summaries
        result: Optional[int] = None
        for state in self._states():
            for q in state.frontier():
                if (q.location, self.stage) in summaries:
                    epoch = q.timestamp.epoch
                    if result is None or epoch < result:
                        result = epoch
        return result

    def done(self, epoch: int) -> bool:
        """True iff no outstanding work can still reach this probe at
        or before ``epoch``."""
        first = self.first_incomplete()
        return first is None or first > epoch


class FeedbackEdge:
    """One feedback stage of a loop scope, wired output-first.

    The stage's output (``edge.stream``, iteration i+1's input) is
    available before its input is connected (``edge.feed``) — the one
    place the graph may be wired output-first (section 4.3) — enabling
    cyclic topologies.
    """

    __slots__ = ("computation", "stage", "connected")

    def __init__(self, computation: Computation, stage: Stage):
        self.computation = computation
        self.stage = stage
        self.connected = False

    @property
    def stream(self) -> Stream:
        """The feedback stage's output (iteration i+1's input)."""
        return Stream(self.computation, self.stage, 0)

    def feed(
        self, stream: Stream, partitioner: Optional[Callable[[Any], int]] = None
    ) -> None:
        """Close the cycle: feed ``stream`` into this feedback stage."""
        if self.connected:
            raise GraphValidationError(
                "feedback input of %r is already connected" % self.stage.name
            )
        stream.connect_to(self.stage, 0, partitioner)
        self.connected = True


class LoopScope:
    """Context-manager handle for building one loop scope (section 4.3).

    Created by :meth:`Stream.scoped_loop` (anchored on a stream) or
    :meth:`repro.core.computation.Computation.scope` (free-standing).
    Inside the with-block the handle offers:

    - ``entered`` — the anchor stream brought through the ingress
      (``scoped_loop`` only);
    - ``enter(stream)`` — bring a further parent-scope stream in;
    - ``feedback`` / ``feed(stream, partitioner)`` — the primary
      feedback cycle;
    - ``feedback_edge(max_iterations)`` — additional feedback stages
      for multi-cycle bodies;
    - ``leave_with(stream)`` — take a body stream out through an
      egress (also remembered as ``output``);
    - ``stage(...)`` — declare a raw vertex stage inside the scope.

    ``__exit__`` validates eagerly: every feedback edge must have been
    fed, else :class:`repro.core.graph.FeedbackNotConnectedError`.
    """

    def __init__(
        self,
        computation: Computation,
        parent: Optional[LoopContext] = None,
        max_iterations: Optional[int] = None,
        name: str = "loop",
        anchor: Optional[Stream] = None,
    ):
        self.computation = computation
        self.context = computation.new_loop_context(parent, name)
        self._parent = parent
        self._anchor = anchor
        self._primary = FeedbackEdge(
            computation, computation.add_feedback(self.context, max_iterations)
        )
        self._edges: List[FeedbackEdge] = [self._primary]
        #: The anchor stream inside the scope (set at ``__enter__``).
        self.entered: Optional[Stream] = None
        #: The last ``leave_with`` result (None until one is taken).
        self.output: Optional[Stream] = None

    # -- context manager protocol --------------------------------------

    def __enter__(self) -> "LoopScope":
        self.computation.graph.open_scopes.append(self)
        if self._anchor is not None:
            self.entered = self._anchor._enter_scope(self.context)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        open_scopes = self.computation.graph.open_scopes
        if self in open_scopes:
            open_scopes.remove(self)
        if exc_type is not None:
            return False  # don't mask the body's exception
        unfed = sum(1 for edge in self._edges if not edge.connected)
        if unfed:
            raise FeedbackNotConnectedError(self.context.name, unfed)
        return False

    # -- building inside the scope -------------------------------------

    @property
    def feedback(self) -> Stream:
        """The primary feedback stream (iteration i+1's input)."""
        return self._primary.stream

    def feed(
        self, stream: Stream, partitioner: Optional[Callable[[Any], int]] = None
    ) -> None:
        """Close the primary cycle with ``stream`` (inside the scope)."""
        self._primary.feed(stream, partitioner)

    def feedback_edge(
        self, max_iterations: Optional[int] = None
    ) -> FeedbackEdge:
        """An additional feedback stage for multi-cycle loop bodies."""
        edge = FeedbackEdge(
            self.computation,
            self.computation.add_feedback(self.context, max_iterations),
        )
        self._edges.append(edge)
        return edge

    def enter(self, stream: Stream) -> Stream:
        """Bring a parent-scope stream in through a new ingress."""
        return stream._enter_scope(self.context)

    def leave_with(self, stream: Stream) -> Stream:
        """Take a scope-interior stream out through a new egress."""
        if stream.context is not self.context:
            raise GraphValidationError(
                "leave_with() expects a stream inside scope %r (got one in %r)"
                % (self.context.name, getattr(stream.context, "name", None))
            )
        self.output = stream._leave_scope()
        return self.output

    def stage(
        self,
        name: str,
        factory: Callable[[Stage, int], Vertex],
        num_inputs: int = 1,
        num_outputs: int = 1,
    ) -> Stage:
        """Declare a raw vertex stage inside this scope.

        ``factory(stage, worker_index)`` builds the vertex, matching
        :meth:`repro.core.graph.DataflowGraph.new_stage`.
        """
        return self.computation.graph.new_stage(
            name, factory, num_inputs, num_outputs, context=self.context
        )

    def __repr__(self) -> str:
        return "LoopScope(%r)" % self.context.name


class Loop:
    """Deprecated loop handle (use :class:`LoopScope` via
    ``stream.scoped_loop`` / ``computation.scope``).

    Kept as a shim for existing programs: constructing one emits a
    :class:`DeprecationWarning` but behaves exactly as before.
    """

    def __init__(
        self,
        computation: Computation,
        parent: Optional[LoopContext] = None,
        max_iterations: Optional[int] = None,
        name: str = "loop",
    ):
        warnings.warn(
            "Loop(...) is deprecated; build loops with "
            "stream.scoped_loop(...) or computation.scope(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.computation = computation
        self.context = computation.new_loop_context(parent, name)
        self._feedback = computation.add_feedback(self.context, max_iterations)
        self._feedback_connected = False

    def feedback_stream(self) -> Stream:
        """The output of the feedback stage (iteration i+1's input)."""
        return Stream(self.computation, self._feedback, 0)

    def connect_feedback(
        self, stream: Stream, partitioner: Optional[Callable[[Any], int]] = None
    ) -> None:
        """Feed ``stream`` (inside the loop) back around the cycle."""
        if self._feedback_connected:
            raise ValueError("feedback input is already connected")
        if stream.context is not self.context:
            raise ValueError("feedback must be fed from inside the loop context")
        stream.connect_to(self._feedback, 0, partitioner)
        self._feedback_connected = True
