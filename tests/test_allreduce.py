"""Tests for the AllReduce collectives (section 6.2)."""

import numpy as np

from repro import Computation
from repro.lib import Stream, allreduce, tree_allreduce
from repro.runtime import ClusterComputation


def run_allreduce(builder, vectors, epochs=1, cluster_shape=(2, 2), combine=np.add):
    comp = ClusterComputation(
        num_processes=cluster_shape[0], workers_per_process=cluster_shape[1]
    )
    inp = comp.new_input()
    got = {}
    builder(Stream.from_input(inp), combine=combine).subscribe(
        lambda t, recs: got.update({(t.epoch, w): v for w, v in recs})
    )
    comp.build()
    # Route each worker's contribution to that worker's input vertex.
    inp.stage.outputs[0][0].partitioner = lambda rec: rec[0]
    for _ in range(epochs):
        inp.on_next([(w, v) for w, v in enumerate(vectors)])
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return got, comp


VECTORS4 = [np.arange(16, dtype=float) * (w + 1) for w in range(4)]


class TestDataParallelAllReduce:
    def test_every_worker_gets_the_sum(self):
        got, _ = run_allreduce(allreduce, VECTORS4)
        expected = sum(VECTORS4)
        assert len(got) == 4
        for value in got.values():
            np.testing.assert_array_equal(value, expected)

    def test_multiple_epochs(self):
        got, _ = run_allreduce(allreduce, VECTORS4, epochs=3)
        assert len(got) == 12
        expected = sum(VECTORS4)
        for value in got.values():
            np.testing.assert_array_equal(value, expected)

    def test_single_worker(self):
        got, _ = run_allreduce(
            allreduce, [np.ones(5)], cluster_shape=(1, 1)
        )
        assert len(got) == 1
        np.testing.assert_array_equal(got[(0, 0)], np.ones(5))

    def test_short_vector(self):
        # Vector shorter than the worker count: empty chunks are fine.
        got, _ = run_allreduce(allreduce, [np.array([1.0, 2.0])] * 4)
        for value in got.values():
            np.testing.assert_array_equal(value, np.array([4.0, 8.0]))

    def test_other_combiner(self):
        got, _ = run_allreduce(
            allreduce, VECTORS4, combine=np.maximum
        )
        expected = np.maximum.reduce(VECTORS4)
        for value in got.values():
            np.testing.assert_array_equal(value, expected)


class TestTreeAllReduce:
    def test_every_worker_gets_the_sum(self):
        got, _ = run_allreduce(tree_allreduce, VECTORS4)
        expected = sum(VECTORS4)
        assert len(got) == 4
        for value in got.values():
            np.testing.assert_array_equal(value, expected)

    def test_non_power_of_two(self):
        vectors = [np.arange(8, dtype=float) * (w + 1) for w in range(6)]
        got, _ = run_allreduce(tree_allreduce, vectors, cluster_shape=(3, 2))
        expected = sum(vectors)
        assert len(got) == 6
        for value in got.values():
            np.testing.assert_array_equal(value, expected)

    def test_reference_runtime_single_worker(self):
        comp = Computation()
        inp = comp.new_input()
        got = []
        tree_allreduce(Stream.from_input(inp)).subscribe(
            lambda t, recs: got.extend(recs)
        )
        comp.build()
        inp.on_next([(0, np.array([1.0, 2.0, 3.0]))])
        inp.on_completed()
        comp.run()
        assert len(got) == 1
        np.testing.assert_array_equal(got[0][1], np.array([1.0, 2.0, 3.0]))


class TestCommunicationShape:
    def test_data_parallel_moves_less_through_any_one_nic(self):
        # The paper's argument for the data-parallel variant: the tree's
        # root is a bandwidth bottleneck, so the data-parallel AllReduce
        # finishes faster on a flat network for the same vector size.
        vectors = [np.zeros(1 << 14) for _ in range(8)]
        _, comp_dp = run_allreduce(allreduce, vectors, cluster_shape=(8, 1))
        _, comp_tree = run_allreduce(tree_allreduce, vectors, cluster_shape=(8, 1))
        assert comp_dp.now < comp_tree.now
