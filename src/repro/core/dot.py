"""Graphviz DOT rendering of timely dataflow graphs.

``to_dot(graph)`` produces a DOT description with loop contexts drawn
as nested clusters and the system stages (ingress/egress/feedback)
visually distinguished — handy when debugging graph construction or
documenting a dataflow's shape.

The output is plain text; render it with ``dot -Tsvg`` or any Graphviz
viewer.  No Graphviz dependency is required to generate it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .graph import DataflowGraph, LoopContext, Stage, StageKind

_SHAPES = {
    StageKind.INPUT: "invhouse",
    StageKind.INGRESS: "rarrow",
    StageKind.EGRESS: "larrow",
    StageKind.FEEDBACK: "invtriangle",
    StageKind.NORMAL: "box",
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(graph: DataflowGraph, name: str = "dataflow") -> str:
    """Render the logical graph (stages and connectors) as DOT text."""
    lines: List[str] = [
        'digraph "%s" {' % _escape(name),
        "  rankdir=LR;",
        "  node [fontsize=10];",
    ]

    by_context: Dict[Optional[LoopContext], List[Stage]] = {}
    for stage in graph.stages:
        by_context.setdefault(stage.context, []).append(stage)

    def emit_context(context: Optional[LoopContext], indent: str) -> None:
        for stage in by_context.get(context, ()):
            label = "%s\\n#%d" % (_escape(stage.name), stage.index)
            style = ' style="filled" fillcolor="#eeeeee"' if (
                stage.kind is not StageKind.NORMAL
            ) else ""
            lines.append(
                '%s  s%d [label="%s" shape=%s%s];'
                % (indent, stage.index, label, _SHAPES[stage.kind], style)
            )
        for child in graph.contexts:
            if child.parent is context:
                lines.append("%s  subgraph cluster_%s {" % (indent, id(child)))
                lines.append(
                    '%s    label="%s (depth %d)"; color="#888888";'
                    % (indent, _escape(child.name), child.depth)
                )
                emit_context(child, indent + "  ")
                lines.append("%s  }" % indent)

    emit_context(None, "")

    for connector in graph.connectors:
        attributes = []
        if connector.partitioner is not None:
            attributes.append('label="⇄" color="#3355bb"')
        if connector.src.kind is StageKind.FEEDBACK or (
            connector.dst.kind is StageKind.FEEDBACK
        ):
            attributes.append("style=dashed")
        lines.append(
            "  s%d -> s%d%s;"
            % (
                connector.src.index,
                connector.dst.index,
                " [%s]" % " ".join(attributes) if attributes else "",
            )
        )
    lines.append("}")
    return "\n".join(lines)
