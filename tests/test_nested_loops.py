"""Deeply nested loop contexts: summaries, frontiers and execution.

Section 2.1 allows arbitrary nesting; these tests drive three-deep
nesting through both runtimes and check the summary algebra directly.
"""

import pytest

from repro import Computation
from repro.core import PathSummary
from repro.lib import Stream
from repro.runtime import ClusterComputation


def triple_nested_program(comp):
    """x -> three nested decrement loops; innermost burns fastest."""
    inp = comp.new_input()
    out = []

    def inner(stream):
        return stream.select(lambda x: x - 1).where(lambda x: x > 0)

    def middle(stream):
        return inner(stream).iterate(inner).where(lambda x: x % 2 == 0)

    (
        Stream.from_input(inp)
        .iterate(middle)
        .subscribe(lambda t, recs: out.extend(recs))
    )
    return inp, out


class TestExecution:
    @pytest.mark.parametrize(
        "make",
        [Computation, lambda: ClusterComputation(2, 2, progress_mode="local+global")],
    )
    def test_three_deep_nesting_drains(self, make):
        comp = make()
        inp, out = triple_nested_program(comp)
        comp.build()
        inp.on_next([6])
        inp.on_completed()
        comp.run()
        assert comp.drained()
        assert out  # something emerged from the nest

    def test_reference_and_cluster_agree(self):
        results = []
        for make in (
            Computation,
            lambda: ClusterComputation(3, 2, progress_mode="none"),
        ):
            comp = make()
            inp, out = triple_nested_program(comp)
            comp.build()
            inp.on_next([5, 9])
            inp.on_completed()
            comp.run()
            assert comp.drained()
            results.append(sorted(out))
        assert results[0] == results[1]

    def test_timestamps_carry_all_counters(self):
        comp = Computation()
        inp = comp.new_input()
        depths = set()

        def body(stream):
            def inner_body(inner_stream):
                probed = inner_stream.inspect(
                    lambda t, recs: depths.add(t.depth)
                )
                return probed.select(lambda x: x - 1).where(lambda x: x > 0)

            return stream.iterate(inner_body).where(lambda x: x > 1)

        Stream.from_input(inp).iterate(body).subscribe(lambda t, recs: None)
        comp.build()
        inp.on_next([3])
        inp.on_completed()
        comp.run()
        assert depths == {2}  # two enclosing loop contexts


class TestNestedSummaries:
    def test_summary_through_two_ingresses(self):
        s = PathSummary.ingress(0).then(PathSummary.ingress(1))
        assert s == PathSummary(0, 0, (0, 0))

    def test_inner_feedback_then_egress_cancels(self):
        s = (
            PathSummary.ingress(1)
            .then(PathSummary.feedback(2))
            .then(PathSummary.egress(2))
        )
        assert s == PathSummary.identity(1)

    def test_outer_feedback_dominates_inner(self):
        # One trip around the outer loop vs one around the inner:
        # the inner trip (increment the *last* counter) is earlier.
        outer_trip = PathSummary(1, 1, (0,))  # c1+1, reset c2
        inner_trip = PathSummary(2, 1, ())    # c2+1
        assert inner_trip.less_equal(outer_trip)
        assert not outer_trip.less_equal(inner_trip)

    def test_graph_summaries_for_nested_program(self):
        comp = Computation()
        inp, out = triple_nested_program(comp)
        comp.build()
        table = comp.graph.summaries
        # Input reaches the subscriber with the identity summary.
        subscriber = next(
            s for s in comp.graph.stages if s.name.startswith("subscribe")
        )
        chain = table[(inp.stage, subscriber)]
        assert list(chain) == [PathSummary.identity(0)]
        # Same-scope destinations are reached at their own depth;
        # cross-scope destinations are reached through truncating
        # boundary summaries (at most the LCA depth — here the root).
        for stage in comp.graph.stages:
            key = (inp.stage, stage)
            if key in table:
                for summary in table[key]:
                    if stage.input_context is None:
                        assert summary.target_depth == stage.input_depth
                    else:
                        assert summary.target_depth <= stage.input_depth

    def test_hierarchy_never_under_approximates_flat(self):
        """Every flat could-result-in verdict is preserved by the
        hierarchical index (it may only add conservative positives)."""
        from repro.core.timestamp import Timestamp

        comp = Computation()
        inp, out = triple_nested_program(comp)
        comp.build()
        index = comp.graph.summaries
        flat = index.flat_table()
        locations = list(comp.graph.stages) + list(comp.graph.connectors)
        for l1 in locations:
            d1 = l1.input_depth if hasattr(l1, "input_depth") else l1.depth
            for l2 in locations:
                d2 = l2.input_depth if hasattr(l2, "input_depth") else l2.depth
                flat_chain = flat.get((l1, l2))
                if not flat_chain:
                    continue
                merged = index.get((l1, l2))
                assert merged is not None, (l1, l2)
                for c1 in [(0,) * d1, (1,) * d1, (0,) + (2,) * max(0, d1 - 1)]:
                    for c2 in [(0,) * d2, (1,) * d2, (3,) + (0,) * max(0, d2 - 1)]:
                        if any(
                            s.dominates_counters(c1, c2) for s in flat_chain
                        ):
                            assert any(
                                s.dominates_counters(c1, c2) for s in merged
                            ), (l1, l2, c1, c2)
