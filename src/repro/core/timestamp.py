"""Logical timestamps for timely dataflow (paper section 2.1).

A timestamp pairs an integer *epoch*, assigned by the external producer
that feeds an input vertex, with a tuple of *loop counters*, one per loop
context that encloses the edge the message travels on::

    Timestamp : (e in N, <c_1, ..., c_k> in N^k)

Two timestamps at the same graph location (hence with equally many loop
counters) are partially ordered: ``t1 <= t2`` iff the epochs satisfy
``e1 <= e2`` *and* the counter tuples satisfy ``c1 <=_lex c2`` under the
lexicographic order on integer sequences.

The system-provided loop vertices act on timestamps as pure functions,
exposed here as :meth:`Timestamp.entered`, :meth:`Timestamp.left` and
:meth:`Timestamp.incremented`:

============  =============================  ============================
Vertex        Input timestamp                Output timestamp
============  =============================  ============================
Ingress       ``(e, <c1, ..., ck>)``         ``(e, <c1, ..., ck, 0>)``
Egress        ``(e, <c1, ..., ck, ck+1>)``   ``(e, <c1, ..., ck>)``
Feedback      ``(e, <c1, ..., ck>)``         ``(e, <c1, ..., ck + 1>)``
============  =============================  ============================
"""

from __future__ import annotations

from functools import total_ordering
from typing import Tuple


@total_ordering
class Timestamp:
    """An immutable logical timestamp ``(epoch, loop counters)``.

    Instances are hashable and totally ordered *as Python objects* by the
    lexicographic order on ``(epoch, counters)``; this total order refines
    the timely-dataflow partial order and is convenient for deterministic
    scheduling.  The semantically meaningful partial order of section 2.1
    is exposed as :meth:`less_equal` / :meth:`less_than`.
    """

    __slots__ = ("epoch", "counters", "_hash")

    def __init__(self, epoch: int, counters: Tuple[int, ...] = ()):
        if epoch < 0:
            raise ValueError("epoch must be non-negative, got %r" % (epoch,))
        counters = tuple(counters)
        if any(c < 0 for c in counters):
            raise ValueError("loop counters must be non-negative, got %r" % (counters,))
        object.__setattr__(self, "epoch", epoch)
        object.__setattr__(self, "counters", counters)
        object.__setattr__(self, "_hash", hash((epoch, counters)))

    def __setattr__(self, name, value):
        raise AttributeError("Timestamp is immutable")

    def __reduce__(self):
        return (Timestamp, (self.epoch, self.counters))

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    # ------------------------------------------------------------------
    # The partial order of section 2.1.
    # ------------------------------------------------------------------

    def less_equal(self, other: "Timestamp") -> bool:
        """The timely-dataflow partial order ``self <= other``.

        Requires both timestamps to carry the same number of loop
        counters (i.e. to live in the same loop context).
        """
        self._check_comparable(other)
        return self.epoch <= other.epoch and self.counters <= other.counters

    def less_than(self, other: "Timestamp") -> bool:
        """Strict version of :meth:`less_equal`."""
        return self.less_equal(other) and self != other

    def comparable(self, other: "Timestamp") -> bool:
        """True when the two timestamps are ordered either way."""
        return self.less_equal(other) or other.less_equal(self)

    def join(self, other: "Timestamp") -> "Timestamp":
        """Least upper bound of two timestamps in the same context."""
        self._check_comparable(other)
        epoch = max(self.epoch, other.epoch)
        counters = max(self.counters, other.counters)
        return Timestamp(epoch, counters)

    def meet(self, other: "Timestamp") -> "Timestamp":
        """Greatest lower bound of two timestamps in the same context."""
        self._check_comparable(other)
        epoch = min(self.epoch, other.epoch)
        counters = min(self.counters, other.counters)
        return Timestamp(epoch, counters)

    def _check_comparable(self, other: "Timestamp") -> None:
        if not isinstance(other, Timestamp):
            raise TypeError("expected a Timestamp, got %r" % (other,))
        if len(self.counters) != len(other.counters):
            raise ValueError(
                "timestamps live in different loop contexts: %r vs %r" % (self, other)
            )

    # ------------------------------------------------------------------
    # Loop-vertex actions.
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """The nesting depth: number of loop counters."""
        return len(self.counters)

    def entered(self) -> "Timestamp":
        """Timestamp after passing an ingress vertex (append a 0 counter)."""
        return Timestamp(self.epoch, self.counters + (0,))

    def left(self) -> "Timestamp":
        """Timestamp after passing an egress vertex (drop the last counter)."""
        if not self.counters:
            raise ValueError("cannot leave a loop from the streaming context")
        return Timestamp(self.epoch, self.counters[:-1])

    def incremented(self, by: int = 1) -> "Timestamp":
        """Timestamp after passing a feedback vertex (bump the last counter)."""
        if not self.counters:
            raise ValueError("cannot increment a loop counter outside any loop")
        counters = self.counters[:-1] + (self.counters[-1] + by,)
        return Timestamp(self.epoch, counters)

    def with_epoch(self, epoch: int) -> "Timestamp":
        """A copy of this timestamp with a different epoch."""
        return Timestamp(epoch, self.counters)

    # ------------------------------------------------------------------
    # Python protocol: total (lexicographic) order for scheduling.
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self.epoch == other.epoch and self.counters == other.counters

    def __lt__(self, other) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.epoch, self.counters) < (other.epoch, other.counters)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Timestamp(%d, %r)" % (self.epoch, list(self.counters))


#: The first timestamp of the streaming (outermost) context.
ZERO = Timestamp(0)
