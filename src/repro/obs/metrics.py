"""Aggregations over a recorded trace (timelines, critical path).

Everything here is a pure, deterministic function of the event list, so
the same summary falls out of a live :class:`repro.obs.TraceSink` and
of one reloaded from disk — the round-trip property the tests pin down.

The critical-path summary follows the SnailTrail construction
(Sandstede, *Online Analysis of Distributed Dataflows with Timely
Dataflow*): walk backwards from the activity that completes the
computation, at each step attributing the elapsed interval to
*processing* (a vertex callback span), *communication* (a message batch
in flight between workers) or *waiting* (a delivered batch sitting in a
worker queue, or an idle gap between callbacks on one worker).  The
walk uses the worker-level ``activation``/``notification`` spans and
``deliver`` events the cluster runtime emits; causal links between a
delivery and the producing callback are matched by commit time, which
is exact for the discrete-event cluster because a callback's sends are
dispatched at its finish time.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .trace import TraceEvent

#: Span kinds that occupy a worker (the "processing" activities).
_SPAN_KINDS = ("activation", "notification", "cleanup")


def event_counts(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Events per kind."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


@dataclass
class StageTimeline:
    """Per-stage execution summary."""

    stage: str
    activations: int = 0
    notifications: int = 0
    records: int = 0
    busy: float = 0.0
    workers: Tuple[int, ...] = ()
    first_t: float = 0.0
    last_t: float = 0.0


def stage_timelines(events: Iterable[TraceEvent]) -> Dict[str, StageTimeline]:
    """Aggregate callback spans by stage (sorted worker sets)."""
    out: Dict[str, StageTimeline] = {}
    seen_workers: Dict[str, set] = {}
    for event in events:
        if event.kind not in _SPAN_KINDS:
            continue
        line = out.get(event.stage)
        if line is None:
            line = out[event.stage] = StageTimeline(
                event.stage, first_t=event.t, last_t=event.finish
            )
            seen_workers[event.stage] = set()
        if event.kind == "activation":
            line.activations += 1
            if event.detail:
                line.records += event.detail[0]
        else:
            line.notifications += 1
        line.busy += event.dur
        seen_workers[event.stage].add(event.worker)
        line.first_t = min(line.first_t, event.t)
        line.last_t = max(line.last_t, event.finish)
    for stage, line in out.items():
        line.workers = tuple(sorted(seen_workers[stage]))
    return out


@dataclass
class WorkerTimeline:
    """Per-worker execution summary."""

    worker: int
    process: int = -1
    activations: int = 0
    notifications: int = 0
    busy: float = 0.0
    first_t: float = 0.0
    last_t: float = 0.0

    @property
    def utilization(self) -> float:
        span = self.last_t - self.first_t
        return self.busy / span if span > 0 else 0.0


def worker_timelines(events: Iterable[TraceEvent]) -> Dict[int, WorkerTimeline]:
    out: Dict[int, WorkerTimeline] = {}
    for event in events:
        if event.kind not in _SPAN_KINDS or event.worker < 0:
            continue
        line = out.get(event.worker)
        if line is None:
            line = out[event.worker] = WorkerTimeline(
                event.worker, event.process, first_t=event.t, last_t=event.finish
            )
        if event.kind == "activation":
            line.activations += 1
        else:
            line.notifications += 1
        line.busy += event.dur
        line.first_t = min(line.first_t, event.t)
        line.last_t = max(line.last_t, event.finish)
    return out


@dataclass
class ServeClassStats:
    """Per-SLO-class serving summary (from ``serve`` answer events)."""

    slo: str
    answers: int = 0
    degraded: int = 0
    max_staleness: int = 0
    p50: float = 0.0
    p99: float = 0.0
    mean: float = 0.0
    #: All response latencies, in delivery order (virtual seconds).
    latencies: List[float] = None  # type: ignore[assignment]


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))  # ceil
    return sorted_values[min(rank, len(sorted_values)) - 1]


def serve_latency_stats(events: Iterable[TraceEvent]) -> Dict[str, ServeClassStats]:
    """Aggregate serving-layer answer latencies per SLO class.

    Reads the ``serve`` events with an ``("answer", session, slo,
    staleness, degraded)`` detail; ``dur`` carries the response latency.
    Returns ``{"fresh": ..., "stale": ...}`` for the classes observed.
    """
    out: Dict[str, ServeClassStats] = {}
    for event in events:
        if event.kind != "serve" or not event.detail or event.detail[0] != "answer":
            continue
        _action, _session, slo, staleness, degraded = event.detail[:5]
        stats = out.get(slo)
        if stats is None:
            stats = out[slo] = ServeClassStats(slo, latencies=[])
        stats.answers += 1
        if degraded:
            stats.degraded += 1
        if staleness > stats.max_staleness:
            stats.max_staleness = staleness
        stats.latencies.append(event.dur)
    for stats in out.values():
        ordered = sorted(stats.latencies)
        stats.p50 = _percentile(ordered, 0.50)
        stats.p99 = _percentile(ordered, 0.99)
        stats.mean = sum(ordered) / len(ordered) if ordered else 0.0
    return out


def frontier_trace(events: Iterable[TraceEvent]) -> List[Tuple[float, Tuple]]:
    """``(t, detail)`` for every frontier-progress event, in order."""
    return [(event.t, event.detail) for event in events if event.kind == "frontier"]


@dataclass
class MembershipChange:
    """One elastic membership change (an ``add_process`` or a graceful
    ``remove_process``), reconstructed from a ``rescale`` trace event."""

    #: "add" or "remove".
    kind: str
    #: The process that joined or left.
    process: int
    #: Virtual time the change executed.
    t: float
    #: Migration blip: time until the moved workers were ready again.
    blip: float
    #: Monotone membership generation after the change.
    generation: int
    #: Live process count after the change.
    live_count: int
    #: Worker indices that changed home.
    moved_workers: Tuple[int, ...] = ()
    #: Messages re-injected for the moved workers' replay.
    injected: int = 0


def membership_timeline(
    events: Iterable[TraceEvent],
) -> List[MembershipChange]:
    """The cluster-shape history of a traced run, in event order.

    Post-mortems join this against :func:`worker_timelines` or the
    frontier trace to see exactly when the shape changed and what each
    change cost (the ``blip`` is the moved workers' unavailability; the
    survivors never pause).
    """
    out: List[MembershipChange] = []
    for event in events:
        if event.kind != "rescale":
            continue
        kind, generation, live_count, moved, injected = event.detail
        out.append(
            MembershipChange(
                kind=kind,
                process=event.process,
                t=event.t,
                blip=event.dur,
                generation=int(generation),
                live_count=int(live_count),
                moved_workers=tuple(moved),
                injected=int(injected),
            )
        )
    return out


@dataclass
class DetectionIncident:
    """One silent crash and its supervised detection/recovery, joined
    from the ``detect`` and ``failure`` trace events."""

    #: The crashed process.
    process: int
    #: Virtual time the silent crash was injected.
    crashed_at: float
    #: Virtual time the detector crossed its phi threshold (NaN if the
    #: crash was never suspected — the run hung or is still going).
    suspected_at: float = float("nan")
    #: Virtual time recovery completed (the failed workers' ready
    #: time); NaN if no recovery ran.
    recovered_at: float = float("nan")
    #: Phi at suspicion (-1.0 when phi was infinite).
    phi: float = float("nan")

    @property
    def mttd(self) -> float:
        """Mean-time-to-detect contribution: suspicion minus crash."""
        return self.suspected_at - self.crashed_at

    @property
    def mttr(self) -> float:
        """Mean-time-to-recover contribution: recovery-complete minus
        crash."""
        return self.recovered_at - self.crashed_at


@dataclass
class DetectionStats:
    """Failure-detection summary of a traced run (self-healing PR)."""

    #: One entry per silent crash, in injection order.
    incidents: List[DetectionIncident] = field(default_factory=list)
    #: Stale messages discarded by generation fencing, by drop reason
    #: ("stale-data", "stale-progress", "stale-heartbeat", ...).
    drops: Dict[str, int] = field(default_factory=dict)
    #: Processes evicted by the crash-loop quarantine.
    quarantined: Tuple[int, ...] = ()

    @property
    def mttd(self) -> float:
        """Mean time-to-detect over incidents that were suspected."""
        values = [i.mttd for i in self.incidents if i.mttd == i.mttd]
        return sum(values) / len(values) if values else float("nan")

    @property
    def mttr(self) -> float:
        """Mean time-to-recover over incidents that recovered."""
        values = [i.mttr for i in self.incidents if i.mttr == i.mttr]
        return sum(values) / len(values) if values else float("nan")


def detection_stats(events: Iterable[TraceEvent]) -> DetectionStats:
    """Join ``detect`` and ``failure`` events into per-crash incidents.

    A crash pairs with the first subsequent suspicion of the same
    process, which pairs with the first subsequent recovery (the
    ``failure`` event's span end is the workers' ready time).  Oracle
    kills (no preceding ``crash`` event) contribute nothing here — the
    stats isolate what the *detector* did.
    """
    stats = DetectionStats()
    open_by_process: Dict[int, DetectionIncident] = {}
    suspected: Dict[int, DetectionIncident] = {}
    quarantined: List[int] = []
    for event in events:
        if event.kind == "detect":
            if event.stage == "crash":
                incident = DetectionIncident(
                    process=event.process, crashed_at=event.t
                )
                stats.incidents.append(incident)
                open_by_process[event.process] = incident
            elif event.stage == "suspect":
                incident = open_by_process.pop(event.process, None)
                if incident is not None:
                    incident.suspected_at = event.t
                    incident.phi = float(event.detail[0])
                    suspected[event.process] = incident
            elif event.stage == "drop":
                reason = event.detail[0]
                stats.drops[reason] = stats.drops.get(reason, 0) + 1
            elif event.stage == "quarantine":
                quarantined.append(event.process)
        elif event.kind == "failure":
            incident = suspected.pop(event.process, None)
            if incident is not None:
                incident.recovered_at = event.finish
    stats.quarantined = tuple(quarantined)
    return stats


@dataclass
class CheckpointPauseStats:
    """Checkpoint-induced pauses, comparable across the two modes.

    A barrier checkpoint pauses the whole cluster for its drain plus
    its synchronous write; an asynchronous cycle pauses each worker
    only for its incremental state copy, and the marker latency (cut
    start to assembled snapshot) plus durable lag (background write)
    bound the recovery line's *staleness* instead of any pause.
    """

    #: Per barrier checkpoint: drain + synchronous write (the full
    #: stop-the-world pause charged to every worker).
    barrier_pauses: Tuple[float, ...] = ()
    barrier_drains: Tuple[float, ...] = ()
    barrier_writes: Tuple[float, ...] = ()
    #: Per asynchronous cycle: the largest single-worker copy stall.
    async_max_stalls: Tuple[float, ...] = ()
    #: Per asynchronous cycle: marker injection -> assembled cut.
    async_marker_latencies: Tuple[float, ...] = ()
    #: Per asynchronous cycle: background durable-write duration.
    async_durable_lags: Tuple[float, ...] = ()
    #: Per asynchronous cycle: (fresh, reused) vertex snapshot counts.
    async_increments: Tuple[Tuple[int, int], ...] = ()

    @property
    def max_barrier_pause(self) -> float:
        return max(self.barrier_pauses, default=0.0)

    @property
    def max_async_pause(self) -> float:
        """The async protocol's worst per-cycle pause (the copy stall)."""
        return max(self.async_max_stalls, default=0.0)


def checkpoint_pause_stats(events: Iterable[TraceEvent]) -> CheckpointPauseStats:
    """Extract barrier pauses and async-cycle stalls from a trace.

    Barrier numbers come from ``checkpoint`` events (``detail`` =
    ``(count, released, drain, write)``; traces from before the drain
    field existed contribute ``dur`` as the write with a zero drain).
    Async numbers come from the per-cycle ``snapshot`` summaries
    (``worker == -1``).
    """
    stats = CheckpointPauseStats()
    pauses: List[float] = []
    drains: List[float] = []
    writes: List[float] = []
    stalls: List[float] = []
    latencies: List[float] = []
    lags: List[float] = []
    increments: List[Tuple[int, int]] = []
    for event in events:
        if event.kind == "checkpoint":
            if len(event.detail) >= 4:
                drain = float(event.detail[2])
                write = float(event.detail[3])
            else:
                drain = 0.0
                write = event.dur
            # Async durable commits emit a zero-drain/zero-dur parity
            # event; only an actual pause counts as a barrier pause.
            if event.dur > 0.0 or drain > 0.0:
                drains.append(drain)
                writes.append(write)
                pauses.append(drain + write)
        elif event.kind == "snapshot" and event.worker == -1:
            cycle, fresh, reused, _channel, max_stall, durable_lag = event.detail
            stalls.append(float(max_stall))
            latencies.append(event.dur)
            lags.append(float(durable_lag))
            increments.append((int(fresh), int(reused)))
    stats.barrier_pauses = tuple(pauses)
    stats.barrier_drains = tuple(drains)
    stats.barrier_writes = tuple(writes)
    stats.async_max_stalls = tuple(stalls)
    stats.async_marker_latencies = tuple(latencies)
    stats.async_durable_lags = tuple(lags)
    stats.async_increments = tuple(increments)
    return stats


@dataclass
class PoolTimeline:
    """Per-pool-child summary of offloaded callback bodies (mp backend)."""

    rank: int
    tasks: int = 0
    recvs: int = 0
    notifies: int = 0
    #: Virtual time covered by the offloaded spans.
    busy: float = 0.0
    #: Real CPU seconds the child reported for the callback bodies.
    child_wall: float = 0.0
    workers: Tuple[int, ...] = ()
    first_t: float = 0.0
    last_t: float = 0.0


def pool_timelines(events: Iterable[TraceEvent]) -> Dict[int, PoolTimeline]:
    """Aggregate ``pool`` events by pool rank (empty for inline runs).

    A ``pool`` event's ``process`` field carries the pool child's rank
    and its ``detail`` is ``(callback_kind, child_wall_seconds)``.
    """
    out: Dict[int, PoolTimeline] = {}
    seen_workers: Dict[int, set] = {}
    for event in events:
        if event.kind != "pool":
            continue
        line = out.get(event.process)
        if line is None:
            line = out[event.process] = PoolTimeline(
                event.process, first_t=event.t, last_t=event.finish
            )
            seen_workers[event.process] = set()
        line.tasks += 1
        if event.detail and event.detail[0] == "recv":
            line.recvs += 1
        else:
            line.notifies += 1
        line.busy += event.dur
        if len(event.detail) > 1:
            line.child_wall += event.detail[1]
        seen_workers[event.process].add(event.worker)
        line.first_t = min(line.first_t, event.t)
        line.last_t = max(line.last_t, event.finish)
    for rank, line in out.items():
        line.workers = tuple(sorted(seen_workers[rank]))
    return out


@dataclass
class CriticalPathSummary:
    """A SnailTrail-style breakdown of the end-to-end critical path."""

    #: Virtual time spanned by the traced computation (first span start
    #: to last span finish).
    makespan: float = 0.0
    #: Virtual time covered by the reconstructed path.
    path_time: float = 0.0
    #: Callback execution time on the path.
    processing: float = 0.0
    #: Message flight time on the path.
    communication: float = 0.0
    #: Queueing/idle time on the path.
    waiting: float = 0.0
    #: Number of path segments walked.
    segments: int = 0
    #: ``(stage, processing seconds)`` for the heaviest path stages.
    top_stages: Tuple[Tuple[str, float], ...] = ()
    #: Distinct workers visited by the path.
    workers_visited: int = 0

    def lines(self) -> List[str]:
        """Human-readable rendering for benchmark reports."""
        def pct(x: float) -> str:
            return "%4.1f%%" % (100.0 * x / self.path_time) if self.path_time else "n/a"

        out = [
            "critical path: %d segments over %.6fs (makespan %.6fs)"
            % (self.segments, self.path_time, self.makespan),
            "  processing    %10.6fs  %s" % (self.processing, pct(self.processing)),
            "  communication %10.6fs  %s" % (self.communication, pct(self.communication)),
            "  waiting       %10.6fs  %s" % (self.waiting, pct(self.waiting)),
        ]
        for stage, seconds in self.top_stages:
            out.append("  on-path stage %-24s %.6fs" % (stage, seconds))
        return out


def critical_path(
    events: Iterable[TraceEvent], top_k: int = 5
) -> CriticalPathSummary:
    """Reconstruct the critical path of a traced cluster run.

    Walks backwards from the last-finishing callback span.  The
    predecessor of a span starting at ``s`` on worker ``w`` is the
    latest batch delivered to ``w`` at or before ``s`` (queue wait +
    flight time), whose producer is the callback on the source worker
    that committed at the batch's send time; with no candidate delivery
    the walk falls through to the previous callback on the same worker
    (pure waiting).  Deterministic: ties break on (finish, t, worker).
    """
    spans: Dict[int, List[TraceEvent]] = {}
    delivers: Dict[int, List[TraceEvent]] = {}
    first_t: Optional[float] = None
    last_finish: Optional[float] = None
    for event in events:
        if event.kind in _SPAN_KINDS:
            spans.setdefault(event.worker, []).append(event)
            first_t = event.t if first_t is None else min(first_t, event.t)
            last_finish = (
                event.finish if last_finish is None else max(last_finish, event.finish)
            )
        elif event.kind == "deliver":
            delivers.setdefault(event.worker, []).append(event)
    if not spans:
        return CriticalPathSummary()
    for listing in spans.values():
        listing.sort(key=lambda e: (e.finish, e.t))
    for listing in delivers.values():
        listing.sort(key=lambda e: (e.t, e.wall))
    span_finishes = {w: [e.finish for e in lst] for w, lst in spans.items()}
    deliver_times = {w: [e.t for e in lst] for w, lst in delivers.items()}

    def span_before(worker: int, time: float) -> Optional[TraceEvent]:
        listing = spans.get(worker)
        if not listing:
            return None
        index = bisect_right(span_finishes[worker], time)
        return listing[index - 1] if index else None

    def deliver_before(worker: int, time: float) -> Optional[TraceEvent]:
        listing = delivers.get(worker)
        if not listing:
            return None
        index = bisect_right(deliver_times[worker], time)
        return listing[index - 1] if index else None

    current = max(
        (e for lst in spans.values() for e in lst),
        key=lambda e: (e.finish, e.t, e.worker),
    )
    summary = CriticalPathSummary(makespan=(last_finish or 0.0) - (first_t or 0.0))
    stage_seconds: Dict[str, float] = {}
    visited_workers = set()
    budget = sum(len(lst) for lst in spans.values()) + sum(
        len(lst) for lst in delivers.values()
    )
    while current is not None and budget > 0:
        budget -= 1
        summary.segments += 1
        summary.processing += current.dur
        stage_seconds[current.stage] = stage_seconds.get(current.stage, 0.0) + current.dur
        visited_workers.add(current.worker)
        start = current.t
        delivery = deliver_before(current.worker, start)
        nxt: Optional[TraceEvent] = None
        if delivery is not None:
            sent = delivery.t - delivery.dur
            producer = span_before(
                delivery.detail[0] if delivery.detail else -1, sent + 1e-15
            )
            if producer is not None and producer.finish <= start:
                summary.waiting += start - delivery.t
                summary.communication += delivery.dur
                summary.waiting += max(0.0, sent - producer.finish)
                nxt = producer
        if nxt is None:
            previous = span_before(current.worker, start)
            if previous is not None and previous is not current:
                summary.waiting += max(0.0, start - previous.finish)
                nxt = previous
        if nxt is current:
            break
        current = nxt
    summary.path_time = summary.processing + summary.communication + summary.waiting
    summary.workers_visited = len(visited_workers)
    summary.top_stages = tuple(
        sorted(stage_seconds.items(), key=lambda item: (-item[1], item[0]))[:top_k]
    )
    return summary
