"""Logical and physical plan representations for the optimizer.

The builder layer (:mod:`repro.lib.stream`) constructs a
:class:`repro.core.graph.DataflowGraph` and annotates each stage with an
:class:`OpSpec` — the operator-level metadata (is it fusable? is it safe
to coalesce its input batches? does it preserve the partitioning of its
input?) that the graph structure alone cannot express.  The annotated
graph *is* the logical plan; :func:`compile_plan` runs it through a pass
pipeline (:mod:`repro.opt.passes`) and returns a :class:`PhysicalPlan`
that records what every pass did, prints human-readable before/after
summaries via :meth:`PhysicalPlan.explain`, and renders through
:func:`repro.core.dot.to_dot` (fused super-vertices appear as clusters
listing their constituent operators).

Nothing in this module mutates a graph; rewrites live in the passes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..core.graph import DataflowGraph, StageKind


class OpSpec:
    """Operator metadata attached to a :class:`~repro.core.graph.Stage`.

    ``kind``
        the operator name ("select", "where", "fused", ...).
    ``fusable``
        the stage is a 1-in/1-out NORMAL operator whose ``on_recv`` /
        ``on_notify`` semantics permit running it synchronously inside a
        :class:`repro.opt.fused.FusedVertex` chain.  Requires that the
        vertex requests at most one notification per timestamp and only
        sends at the timestamp of the callback that is running.
    ``batchable``
        delivering one merged batch ``[r1..rn]`` at a timestamp is
        observably identical to delivering the same records as several
        consecutive batches — true for record-at-a-time and buffering
        operators, false when the operator exposes per-batch callbacks
        to user code (``inspect``).  Grants the runtime permission to
        coalesce adjacent queue entries on the stage's input connectors.
    ``preserves_partitioning``
        output records are a subset of input records (same objects, same
        worker), so a partitioning established upstream still holds
        downstream — the property exchange elision propagates.
    ``constituents``
        for ``kind == "fused"``: the names of the operators the chain
        absorbed, in pipeline order.
    ``cost_scale``
        multiplier on the cost model's per-record cost; a fused stage
        still executes each constituent's Python per record, so its
        scale is the chain length (fusion removes per-event overhead,
        not per-record work).
    ``schema``
        optional :class:`repro.columnar.Schema` declaring the record
        layout this operator consumes (and, for the symmetric library
        operators, produces).  Consumed by ``mark_columnar`` when the
        columnar data plane is enabled; ``None`` means record lists
        only.  Annotating a schema is a claim about record *shape*, not
        semantics — non-conforming records still take the list path.
    """

    __slots__ = (
        "kind",
        "fusable",
        "batchable",
        "preserves_partitioning",
        "constituents",
        "cost_scale",
        "schema",
    )

    def __init__(
        self,
        kind: str,
        fusable: bool = False,
        batchable: bool = False,
        preserves_partitioning: bool = False,
        constituents: Tuple[str, ...] = (),
        cost_scale: int = 1,
        schema: Optional[Any] = None,
    ):
        self.kind = kind
        self.fusable = fusable
        self.batchable = batchable
        self.preserves_partitioning = preserves_partitioning
        self.constituents = constituents
        self.cost_scale = cost_scale
        self.schema = schema

    def __repr__(self) -> str:
        flags = [
            name
            for name, on in (
                ("fusable", self.fusable),
                ("batchable", self.batchable),
                ("preserving", self.preserves_partitioning),
            )
            if on
        ]
        return "OpSpec(%s%s)" % (self.kind, ", ".join([""] + flags) if flags else "")


class HashPartitioner:
    """A hash-partitioning function with provable equality.

    ``hash_partitioner(key)`` historically returned an anonymous
    closure, which made two exchanges by the same key indistinguishable
    to the optimizer.  This callable carries its key selector, and two
    instances compare equal when the selectors are the *same function
    object* — the conservative identity test under which exchange
    elision is provably safe (equal callables route every record to the
    same worker).

    ``key_col`` optionally names the record field (column index) the
    selector extracts, i.e. asserts ``key(record) == record[key_col]``.
    The columnar data plane uses it to hash-partition a
    :class:`~repro.columnar.ColumnarBatch` by its key column without
    materializing records; it never affects routing semantics or
    equality.
    """

    __slots__ = ("key", "key_col")

    def __init__(self, key: Callable[[Any], Any], key_col: Optional[int] = None):
        self.key = key
        self.key_col = key_col

    def __call__(self, record: Any) -> int:
        return hash(self.key(record))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashPartitioner) and self.key is other.key

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((HashPartitioner, id(self.key)))

    def __repr__(self) -> str:
        return "HashPartitioner(%s)" % getattr(self.key, "__name__", repr(self.key))


def partitioners_agree(a: Optional[Callable], b: Optional[Callable]) -> bool:
    """True when ``a`` and ``b`` provably route records identically.

    Object identity always suffices; :class:`HashPartitioner` extends
    the proof to distinct wrappers around one key selector.
    """
    if a is None or b is None:
        return False
    return a is b or a == b


class LogicalPlan:
    """The optimizer's working state: a mutable, unfrozen graph.

    ``total_workers`` is the degree of data parallelism the plan will be
    executed with (``None`` when unknown); passes may only apply
    rewrites whose safety does not depend on unknown parallelism.
    """

    __slots__ = ("graph", "total_workers")

    def __init__(self, graph: DataflowGraph, total_workers: Optional[int] = None):
        if graph.frozen:
            raise ValueError("cannot optimize a frozen graph")
        self.graph = graph
        self.total_workers = total_workers

    def reindex(self) -> None:
        """Restore the ``index == position`` invariant after a rewrite."""
        for position, stage in enumerate(self.graph.stages):
            stage.index = position
        for position, connector in enumerate(self.graph.connectors):
            connector.index = position


class PassResult:
    """What one pass did: a name plus one line per applied rewrite."""

    __slots__ = ("name", "rewrites")

    def __init__(self, name: str, rewrites: List[str]):
        self.name = name
        self.rewrites = rewrites

    def __repr__(self) -> str:
        return "PassResult(%s, %d rewrites)" % (self.name, len(self.rewrites))


def describe_graph(graph: DataflowGraph) -> List[str]:
    """One deterministic line per stage (plus a header), for explain()."""
    lines = [
        "%d stages, %d connectors" % (len(graph.stages), len(graph.connectors))
    ]
    for stage in graph.stages:
        spec = stage.opspec
        suffix = ""
        if spec is not None and spec.constituents:
            suffix = " [fused: %s]" % ", ".join(spec.constituents)
        lines.append("  [%d] %s (%s)%s" % (stage.index, stage.name, stage.kind.value, suffix))
    for connector in graph.connectors:
        marks = []
        if connector.partitioner is not None:
            marks.append("exchange")
        if connector.coalesce:
            marks.append("coalesce")
        if getattr(connector, "columnar", None) is not None:
            # Only ever set post-compile by mark_columnar (the columnar
            # opt-in), so pass-pipeline golden reports never change.
            marks.append("columnar")
        lines.append(
            "  (%d) %s -> %s%s"
            % (
                connector.index,
                connector.src.name,
                connector.dst.name,
                " {%s}" % ", ".join(marks) if marks else "",
            )
        )
    return lines


def plan_signature(graph: DataflowGraph) -> Tuple:
    """A structural fingerprint used by the idempotence tests.

    Two graphs with equal signatures have the same stages (name, kind,
    opspec shape), the same wiring, the same exchange edges and the same
    coalescing hints — i.e. a pass pipeline that does not change the
    signature performed no rewrite.
    """
    stages = tuple(
        (
            stage.index,
            stage.name,
            stage.kind.value,
            None
            if stage.opspec is None
            else (
                stage.opspec.kind,
                stage.opspec.fusable,
                stage.opspec.batchable,
                stage.opspec.preserves_partitioning,
                stage.opspec.constituents,
                stage.opspec.cost_scale,
            ),
        )
        for stage in graph.stages
    )
    connectors = tuple(
        (
            connector.index,
            connector.src.index,
            connector.src_port,
            connector.dst.index,
            connector.dst_port,
            connector.partitioner is not None,
            connector.coalesce,
        )
        for connector in graph.connectors
    )
    return (stages, connectors)


class PhysicalPlan:
    """The compiled plan: the rewritten graph plus the rewrite log."""

    __slots__ = ("graph", "before", "after", "results")

    def __init__(
        self,
        graph: DataflowGraph,
        before: List[str],
        after: List[str],
        results: List[PassResult],
    ):
        self.graph = graph
        self.before = before
        self.after = after
        self.results = results

    @property
    def rewrite_count(self) -> int:
        return sum(len(result.rewrites) for result in self.results)

    def explain(self) -> str:
        """A human-readable before/after report with per-pass rewrites."""
        lines = ["== logical plan =="]
        lines.extend(self.before)
        for result in self.results:
            lines.append(
                "== pass %s: %d rewrite%s =="
                % (result.name, len(result.rewrites), "" if len(result.rewrites) == 1 else "s")
            )
            for rewrite in result.rewrites:
                lines.append("  %s" % rewrite)
        lines.append("== physical plan ==")
        lines.extend(self.after)
        return "\n".join(lines)

    def to_dot(self, name: str = "plan") -> str:
        """Render the physical plan as Graphviz DOT text (fused stages
        appear as clusters listing their constituent operators)."""
        from ..core.dot import to_dot

        return to_dot(self.graph, name)

    def fused_stages(self) -> List:
        return [
            stage
            for stage in self.graph.stages
            if stage.opspec is not None and stage.opspec.kind == "fused"
        ]

    def elided_exchanges(self) -> int:
        prefix = "elided exchange"
        return sum(
            1
            for result in self.results
            for rewrite in result.rewrites
            if rewrite.startswith(prefix)
        )

    def __repr__(self) -> str:
        return "PhysicalPlan(%r, %d rewrites)" % (self.graph, self.rewrite_count)


# Batch-safety of the system stages: ingress/egress/feedback forward
# whole batches (ForwardingVertex inspects only the timestamp), so
# coalescing their input queues is always sound.  INPUT stages have no
# input connectors and never appear as a coalescing destination.
SYSTEM_BATCHABLE = (StageKind.INGRESS, StageKind.EGRESS, StageKind.FEEDBACK)
