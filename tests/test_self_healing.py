"""Self-healing: detect silent failures, fence zombies, recover, evict.

``tests/test_recovery.py`` exercises *oracle* recovery — the test calls
``kill_process`` and the cluster is told about the failure at the
instant it happens.  This suite removes the oracle: ``crash_process``
silently freezes a process, and the :class:`repro.runtime.Supervisor`
must notice via heartbeats (paying real simulated-network latency, GC
pauses and partitions), fence the dead generation, drive the existing
recovery machinery, and reintegrate or quarantine the process.  The
invariant is the same as everywhere else in this repo: per-epoch output
multisets bit-identical to a failure-free run — and, stronger, to the
oracle-driven recovery of the *same* failure.

The heavier scenario tests are marked ``detection`` and run as their
own CI leg::

    PYTHONPATH=src python -m pytest -m detection -q
"""

import math
from statistics import NormalDist

import pytest

from repro.obs import TraceSink, detection_stats
from repro.runtime import (
    Autoscaler,
    AutoscalePolicy,
    ClusterComputation,
    FaultTolerance,
    PhiAccrualDetector,
    SupervisorConfig,
)
from repro.sim import NetworkConfig
from tests.test_recovery import (
    CASES,
    WORDCOUNT_EPOCHS,
    baseline,
    baseline_epochs,
    make_ft,
    run_cluster,
)

#: Virtual time is cheap, so the test supervisor heartbeats at 50 µs
#: and falls back to a 1 ms cold-start deadline — failures land early
#: in the run, before the phi window has always warmed up.
def sup_cfg(**overrides):
    cfg = dict(
        heartbeat_interval=5e-5,
        min_samples=4,
        window=16,
        bootstrap_timeout=1e-3,
        backoff_jitter=0.0,
    )
    cfg.update(overrides)
    return SupervisorConfig(**cfg)


# ----------------------------------------------------------------------
# Phi-accrual detector unit tests.
# ----------------------------------------------------------------------


class TestPhiAccrualDetector:
    def test_cold_window_reports_nothing(self):
        d = PhiAccrualDetector(window=16, min_std=1e-5, min_samples=4)
        assert d.phi(1.0) == 0.0
        assert d.deadline(z=5.0) is None
        d.heartbeat(0.0)
        d.heartbeat(0.1)  # one interval < min_samples
        assert not d.ready
        assert d.deadline(z=5.0) is None

    def test_regular_arrivals_pin_sigma_at_floor(self):
        d = PhiAccrualDetector(window=16, min_std=1e-3, min_samples=4)
        for i in range(8):
            d.heartbeat(i * 0.1)
        assert d.ready
        # Perfectly regular gaps: sigma collapses to the floor, so the
        # deadline sits exactly mu + z*min_std past the last arrival.
        z = 5.0
        assert d.deadline(z) == pytest.approx(0.7 + 0.1 + z * 1e-3)

    def test_phi_crosses_threshold_at_deadline(self):
        d = PhiAccrualDetector(window=16, min_std=1e-3, min_samples=4)
        for i in range(8):
            d.heartbeat(i * 0.1)
        threshold = 8.0
        z = NormalDist().inv_cdf(1.0 - 10.0 ** -threshold)
        deadline = d.deadline(z)
        assert d.phi(deadline - 1e-4) < threshold
        assert d.phi(deadline) == pytest.approx(threshold, rel=1e-6)
        assert d.phi(deadline + 1e-4) > threshold

    def test_noisy_window_widens_the_deadline(self):
        regular = PhiAccrualDetector(window=16, min_std=1e-6, min_samples=4)
        noisy = PhiAccrualDetector(window=16, min_std=1e-6, min_samples=4)
        t_r = t_n = 0.0
        for i in range(12):
            t_r += 0.1
            regular.heartbeat(t_r)
            # Every fourth gap is a 5x straggler (a GC pause, say).
            t_n += 0.5 if i % 4 == 3 else 0.1
            noisy.heartbeat(t_n)
        slack_r = regular.deadline(5.0) - regular.last_arrival
        slack_n = noisy.deadline(5.0) - noisy.last_arrival
        # The detector that has *seen* stragglers tolerates longer
        # silences before suspecting — the whole point of phi-accrual.
        assert slack_n > 2 * slack_r

    def test_window_forgets_old_outliers(self):
        d = PhiAccrualDetector(window=4, min_std=1e-6, min_samples=4)
        t = 0.0
        d.heartbeat(t)
        t += 5.0
        d.heartbeat(t)  # one huge gap...
        for _ in range(4):  # ...pushed out by window-many regular ones
            t += 0.1
            d.heartbeat(t)
        mu, sigma = d._mu_sigma()
        assert mu == pytest.approx(0.1)


class TestSupervisorConfigValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            {"heartbeat_interval": 0.0},
            {"heartbeat_interval": -1e-3},
            {"heartbeat_bytes": -1},
            {"phi_threshold": 0.0},
            {"min_samples": 1},
            {"window": 4, "min_samples": 8},
            {"min_std": 0.0},
            {"bootstrap_timeout": 0.5e-3, "heartbeat_interval": 0.5e-3},
            {"naive_multiplier": 0.0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_jitter": 1.0},
            {"backoff_jitter": -0.1},
            {"quarantine_deaths": 0},
            {"quarantine_window": 0.0},
            {"placement": "elsewhere"},
        ],
        ids=lambda bad: ",".join("%s=%r" % kv for kv in sorted(bad.items())),
    )
    def test_bad_field_raises_at_construction(self, bad):
        with pytest.raises(ValueError):
            SupervisorConfig(**bad)

    def test_defaults_are_valid(self):
        cfg = SupervisorConfig()
        assert cfg.phi_threshold == 8.0


class TestNetworkConfigValidation:
    """Satellite: every NetworkConfig field is validated eagerly."""

    @pytest.mark.parametrize(
        "field,value",
        [
            ("latency", -1e-6),
            ("local_latency", -1e-6),
            ("bandwidth", 0.0),
            ("bandwidth", -1.0),
            ("per_message_bytes", -1),
            ("packet_loss_probability", -0.01),
            ("packet_loss_probability", 1.01),
            ("retransmit_timeout", -1e-3),
            ("nagle_delay", -1e-3),
            ("small_message_bytes", -1),
            ("gc_interval", -1.0),
            ("gc_pause", -1.0),
        ],
    )
    def test_bad_field_raises_at_construction(self, field, value):
        with pytest.raises(ValueError) as err:
            NetworkConfig(**{field: value})
        # The message names the offending field and echoes the value.
        assert field in str(err.value)
        assert repr(value) in str(err.value)

    def test_gc_pause_requires_gc_interval(self):
        with pytest.raises(ValueError, match="gc_interval"):
            NetworkConfig(gc_pause=1e-3)
        NetworkConfig(gc_interval=1e-2, gc_pause=1e-3)  # fine together

    def test_boundary_values_accepted(self):
        NetworkConfig(
            latency=0.0,
            local_latency=0.0,
            packet_loss_probability=1.0,
            per_message_bytes=0,
            nagle_delay=0.0,
        )


class TestPartitionValidation:
    def test_partition_rejects_self_and_out_of_range(self):
        comp = ClusterComputation(num_processes=2, workers_per_process=1)
        with pytest.raises(ValueError, match="itself"):
            comp.network.partition(1, 1)
        with pytest.raises(ValueError, match="out of range"):
            comp.network.partition(0, 7)

    def test_partition_heal_must_follow_start(self):
        comp = ClusterComputation(num_processes=2, workers_per_process=1)
        with pytest.raises(ValueError, match="heal_at"):
            comp.network.partition(0, 1, at=2.0, heal_at=1.0)


# ----------------------------------------------------------------------
# Silent crashes: the detector must match the oracle bit for bit.
# ----------------------------------------------------------------------


@pytest.mark.detection
class TestSilentCrashDetection:
    @pytest.mark.parametrize("mode", ["none", "checkpoint", "logging"])
    @pytest.mark.parametrize("policy", ["restart", "reassign"])
    def test_detector_matches_oracle_and_clean_run(self, mode, policy):
        expected, duration = baseline("wordcount", (3, 2))
        crash_at = duration * 0.4
        oracle, comp_o = run_cluster(
            "wordcount", (3, 2), ft=make_ft(mode, policy=policy),
            kill=(1, crash_at),
        )
        sink = TraceSink()
        out, comp = run_cluster(
            "wordcount", (3, 2), ft=make_ft(mode, policy=policy),
            crash=[(1, crash_at)], supervise=sup_cfg(), trace=sink,
        )
        assert out == expected
        assert out == oracle
        # The crash engaged: it was detected, fenced, and recovered.
        (failure,) = [
            f for f in comp.recovery.failures if f["process"] == 1
        ]
        assert comp.generations[1] >= 1
        sup = comp.supervisor
        assert [s["process"] for s in sup.suspicions] == [1]
        assert sup.suspicions[0]["at"] > crash_at
        stats = detection_stats(sink.events)
        (incident,) = stats.incidents
        assert incident.process == 1
        assert incident.mttd > 0
        assert incident.mttr >= incident.mttd
        assert incident.recovered_at == pytest.approx(failure["ready"])

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_async_checkpointing_cases(self, case):
        epochs = CASES[case][1] * 3  # stretch the run past the MTTD
        expected, duration = baseline_epochs(case, (3, 2), epochs)
        ft = make_ft("checkpoint", policy="reassign")
        ft.checkpoint_mode = "async"
        crash_at = duration * 0.4
        out, comp = run_cluster(
            case, (3, 2), ft=ft, crash=[(1, crash_at)],
            supervise=sup_cfg(bootstrap_timeout=3e-4), epochs=epochs,
        )
        assert out == expected
        if comp.recovery.failures:
            assert len(comp.recovery.failures) == 1
            assert [s["process"] for s in comp.supervisor.suspicions] == [1]
            # Reassigned away: nothing runs on the dead process after.
            assert all(w.process != 1 for w in comp.workers)
        else:
            # The crash intersected no live work (random-a's two-key
            # exchange hosts nothing on process 1), so there was
            # nothing to recover — and the detector must not have
            # fired spuriously either.
            assert comp.supervisor.suspicions == []

    @pytest.mark.parametrize("backend", ["inline", "mp"])
    @pytest.mark.parametrize("plan", ["unfused", "fused"])
    def test_backends_and_fused_plans(self, backend, plan):
        expected, duration = baseline("wordcount", (3, 2))
        kwargs = {}
        if backend == "mp":
            kwargs.update(backend="mp", pool_workers=2)
        if plan == "fused":
            kwargs["optimize"] = True
        out, comp = run_cluster(
            "wordcount", (3, 2), ft=make_ft("checkpoint"),
            crash=[(1, duration * 0.4)], supervise=sup_cfg(), **kwargs
        )
        assert out == expected, (backend, plan)
        assert len(comp.recovery.failures) == 1

    def test_crash_traffic_after_fence_is_discarded(self):
        """A fenced generation's messages are provably dropped, not
        applied: the drop counters and the trace agree."""
        expected, duration = baseline("wordcount", (3, 2))
        sink = TraceSink()
        out, comp = run_cluster(
            "wordcount", (3, 2), ft=make_ft("checkpoint"),
            crash=[(1, duration * 0.4)], supervise=sup_cfg(), trace=sink,
        )
        assert out == expected
        stats = detection_stats(sink.events)
        assert comp.fenced_drops == sum(
            n for reason, n in stats.drops.items()
            if reason in ("stale-data", "stale-progress")
        )
        assert comp.supervisor.heartbeat_drops == stats.drops.get(
            "stale-heartbeat", 0
        )


# ----------------------------------------------------------------------
# GC storms: long pauses must not trigger recovery.
# ----------------------------------------------------------------------


@pytest.mark.detection
class TestGCStorm:
    def test_gc_pause_beyond_naive_timeout_not_suspected(self):
        """The false-positive regression: exponential GC pauses blow
        through a fixed 3x-interval timeout many times over, yet the
        adaptive detector (which has *seen* the pauses in its window)
        never fires and no recovery runs."""
        epochs = CASES["iterate"][1] * 3  # integer keys: hash-stable
        expected, _ = baseline_epochs("iterate", (3, 2), epochs)
        net = NetworkConfig(gc_interval=1.5e-3, gc_pause=0.25e-3)
        out, comp = run_cluster(
            "iterate", (3, 2), ft=make_ft("checkpoint"), network=net,
            epochs=epochs,
            supervise=sup_cfg(
                heartbeat_interval=1e-4,
                min_samples=8,
                window=32,
                min_std=2e-4,
                naive_multiplier=3.0,
                bootstrap_timeout=2.5e-3,
            ),
        )
        assert out == expected
        sup = comp.supervisor
        # A naive fixed-timeout detector would have fired repeatedly...
        assert sup.naive_violations > 0
        # ...but phi-accrual stays quiet and nothing was recovered.
        assert sup.suspicions == []
        assert comp.recovery.failures == []
        assert comp.generations == [0, 0, 0]

    def test_crash_still_detected_under_gc_noise(self):
        epochs = CASES["iterate"][1] * 3
        expected, duration = baseline_epochs("iterate", (3, 2), epochs)
        net = NetworkConfig(gc_interval=1.5e-3, gc_pause=0.25e-3)
        out, comp = run_cluster(
            "iterate", (3, 2), ft=make_ft("checkpoint"), network=net,
            epochs=epochs, crash=[(1, duration * 0.6)],
            supervise=sup_cfg(
                heartbeat_interval=1e-4,
                min_samples=8,
                window=32,
                min_std=2e-4,
                bootstrap_timeout=2.5e-3,
            ),
        )
        assert out == expected
        # The real crash is detected.  (GC tails during the recovery
        # stall may additionally suspect a survivor; that is the safe
        # direction — recovery preserves outputs — and the quiet-case
        # regression above pins down the false-positive behaviour.)
        suspected = [s["process"] for s in comp.supervisor.suspicions]
        assert 1 in suspected
        assert any(f["process"] == 1 for f in comp.recovery.failures)


# ----------------------------------------------------------------------
# Partitions: one-way cuts make zombies; the fence contains them.
# ----------------------------------------------------------------------


@pytest.mark.detection
class TestPartitions:
    """These use the ``iterate`` case: integer keys make the schedule
    identical under every ``PYTHONHASHSEED``, so the partition timing
    (and hence exactly what gets fenced) is reproducible."""

    def test_one_way_partition_fences_the_zombie(self):
        """Heartbeats 1->0 are cut but process 1 keeps computing and
        sending — a zombie.  The supervisor suspects it, the fence
        bumps its generation, and everything it sent from the old
        generation is discarded with a trace, so the recovered run
        still matches the clean one."""
        epochs = CASES["iterate"][1] * 3
        expected, duration = baseline_epochs("iterate", (3, 2), epochs)
        at = duration * 0.3
        ft = make_ft("checkpoint", policy="reassign")
        ft.checkpoint_mode = "async"
        sink = TraceSink()
        out, comp = run_cluster(
            "iterate", (3, 2), ft=ft, epochs=epochs,
            partitions=[dict(a=1, b=0, at=at, heal_at=at + 2.5e-3,
                             one_way=True)],
            supervise=sup_cfg(), trace=sink,
        )
        assert out == expected
        sup = comp.supervisor
        assert [s["process"] for s in sup.suspicions] == [1]
        assert comp.generations[1] >= 1
        assert len(comp.recovery.failures) >= 1
        # The zombie's stale traffic was provably dropped and traced:
        # the late heartbeats it had in flight across the healed cut,
        # and the progress/data it sent from the fenced generation.
        stats = detection_stats(sink.events)
        assert comp.fenced_drops > 0
        assert sup.heartbeat_drops > 0
        assert comp.fenced_drops == sum(
            n for reason, n in stats.drops.items()
            if reason in ("stale-data", "stale-progress")
        )
        assert stats.drops.get("stale-heartbeat", 0) == sup.heartbeat_drops

    def test_full_partition_heals_after_recovery(self):
        epochs = CASES["iterate"][1] * 3
        expected, duration = baseline_epochs("iterate", (3, 2), epochs)
        at = duration * 0.3
        ft = make_ft("checkpoint", policy="reassign")
        ft.checkpoint_mode = "async"
        out, comp = run_cluster(
            "iterate", (3, 2), ft=ft, epochs=epochs,
            partitions=[dict(a=1, b=0, at=at, heal_at=at + 2.5e-3)],
            supervise=sup_cfg(),
        )
        assert out == expected
        assert len(comp.recovery.failures) >= 1
        assert comp.generations[1] >= 1


# ----------------------------------------------------------------------
# Crash loops: backoff grows, the third death evicts, backfill lands.
# ----------------------------------------------------------------------


@pytest.mark.detection
class TestCrashLoopQuarantine:
    def test_three_deaths_evict_and_backfill(self):
        ft = FaultTolerance(
            mode="checkpoint",
            checkpoint_every=2,
            state_bytes_per_worker=1 << 20,
            disk_bandwidth=200e6,
            recovery="reassign",
            restart_delay=0.0005,
            checkpoint_mode="async",
        )
        epochs = WORDCOUNT_EPOCHS * 4  # long enough for three cycles
        expected, duration = baseline_epochs("wordcount", (3, 2), epochs)

        sink = TraceSink()
        comp = ClusterComputation(
            num_processes=3, workers_per_process=2, fault_tolerance=ft
        )
        comp.attach_trace_sink(sink)
        program, _ = CASES["wordcount"]
        inp, out = program(comp)
        comp.build()
        auto = Autoscaler(
            comp,
            sink,
            AutoscalePolicy(
                max_processes=8, low_utilization=1e-9, high_utilization=1.0
            ),
        ).start()
        sup = comp.attach_supervisor(
            sup_cfg(
                placement="restart",
                quarantine_deaths=3,
                quarantine_window=5.0,
                backoff_base=0.0005,
                backoff_factor=2.0,
            ),
            autoscaler=auto,
        )

        # Crash process 1 again each time it comes back, three times:
        # a genuine crash loop, not three independent incidents.
        crashes = []

        def maybe_crash():
            alive = any(
                w.process == 1 and not w.dead for w in comp.workers
            )
            if (
                alive
                and 1 not in comp._removed_processes
                and 1 not in comp.recovery.dead_processes
            ):
                comp._crash_now(1)
                crashes.append(comp.sim.now)
            if len(crashes) < 3:
                comp.sim.schedule_at(comp.sim.now + 3e-4, maybe_crash)

        comp.sim.schedule_at(duration * 0.05, maybe_crash)

        for epoch in epochs:
            inp.on_next(epoch)
        inp.on_completed()
        comp.run()
        assert comp.drained(), comp.debug_state()
        assert out == expected
        assert len(crashes) == 3

        # Two supervised recoveries with growing backoff, then eviction.
        mine = [s for s in sup.suspicions if s["process"] == 1]
        assert [s["action"] for s in mine] == [
            "recover", "recover", "quarantine",
        ]
        assert [s["deaths_in_window"] for s in mine] == [1, 2, 3]
        assert mine[1]["restart_delay"] > mine[0]["restart_delay"]
        assert sup.quarantined == [1]

        # Eviction took the planned-remove bookkeeping path...
        assert 1 in comp._removed_processes
        removed = [r["process"] for r in comp.rescales if r["kind"] == "remove"]
        assert 1 in removed
        assert all(w.process != 1 for w in comp.workers)
        # ...and the autoscaler backfilled a replacement process.
        backfills = [
            d for d in auto.decisions if d.get("reason") == "quarantine"
        ]
        assert len(backfills) == 1
        added = [r["process"] for r in comp.rescales if r["kind"] == "add"]
        assert added  # the backfilled process joined the membership

        stats = detection_stats(sink.events)
        assert stats.quarantined == (1,)
        assert len(stats.incidents) == 3

    def test_backoff_schedule_is_deterministic_and_capped(self):
        comp = ClusterComputation(
            num_processes=2,
            workers_per_process=1,
            fault_tolerance=make_ft("checkpoint"),
        )
        comp.build()
        sup = comp.attach_supervisor(
            sup_cfg(backoff_base=0.01, backoff_factor=2.0, backoff_max=0.05)
        )
        delays = [sup._backoff(n) for n in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_comes_from_the_supervisor_rng(self):
        comp = ClusterComputation(
            num_processes=2,
            workers_per_process=1,
            fault_tolerance=make_ft("checkpoint"),
        )
        comp.build()
        sup = comp.attach_supervisor(
            sup_cfg(backoff_base=0.01, backoff_jitter=0.5, seed=7)
        )
        state_before = comp.sim.rng.getstate()
        d = sup._backoff(1)
        # Jittered above the base, and the simulator's RNG untouched —
        # a draw from sim.rng would shift the GC/loss schedule and
        # break bit-identity with oracle recovery.
        assert 0.01 <= d <= 0.015
        assert comp.sim.rng.getstate() == state_before


# ----------------------------------------------------------------------
# Serving keeps answering across a *detected* failure.
# ----------------------------------------------------------------------


@pytest.mark.detection
class TestServingAcrossDetectedFailure:
    def test_interactive_responses_identical(self):
        import os
        import sys

        sys.path.insert(
            0,
            os.path.join(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                "examples",
            ),
        )
        import interactive_recover

        expected, clean = interactive_recover.run()
        responses, comp = interactive_recover.run(
            crash=(2, clean.now * 0.5), supervise=sup_cfg()
        )
        assert responses == expected
        assert [s["process"] for s in comp.supervisor.suspicions] == [2]
        assert len(comp.recovery.failures) == 1
