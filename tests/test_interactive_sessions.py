"""The interactive-sessions example, run under pytest.

``examples/interactive_sessions.py`` serves 120 mixed-SLO sessions over
shared arrangements and drives admission control through a flash crowd.
This wrapper pins the example's invariants in the suite: the burst
escalates normal -> degrade -> shed and steps back down to normal, the
steady phases are untouched by the controller, degraded answers honour
the degraded bound, and rejected queries are never answered late.
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")
)

import interactive_sessions  # noqa: E402


@pytest.fixture(scope="module")
def example_run():
    return interactive_sessions.run()


def test_burst_escalates_and_recovers(example_run):
    manager, _comp = example_run
    modes = [t["mode"] for t in manager.admission.transitions]
    # Exactly one escalation episode, confined to the burst.
    assert modes == ["degrade", "shed", "degrade", "normal"], modes
    assert manager.admission.mode == "normal"
    # Escalation was depth-driven and the burst really was backed up.
    shed_transition = manager.admission.transitions[1]
    assert shed_transition["depth"] >= interactive_sessions.POLICY.shed_depth
    assert shed_transition["lag"] >= interactive_sessions.POLICY.lag_recover


def test_degraded_answers_honour_their_bound(example_run):
    manager, _comp = example_run
    degraded = [a for a in manager.answers if a.degraded]
    assert degraded, "the burst must degrade some fresh arrivals"
    assert all(a.slo == "stale" for a in degraded)
    assert all(
        a.staleness <= interactive_sessions.POLICY.degrade_bound for a in degraded
    )
    # Un-degraded answers keep their session's own class contract.
    for answer in manager.answers:
        if answer.degraded:
            continue
        session = manager.sessions[answer.session_id]
        assert answer.slo == session.slo
        if answer.slo == "fresh":
            assert answer.staleness == 0
        else:
            assert answer.staleness <= session.bound


def test_rejected_queries_are_never_answered(example_run):
    manager, _comp = example_run
    assert manager.rejections, "the burst must shed some queries"
    rejected = {query_id for query_id, _sid, _at in manager.rejections}
    assert rejected.isdisjoint(a.query_id for a in manager.answers)
    # Everything else completed: nothing left parked or in flight.
    assert manager.outstanding == 0
    answered = len(manager.answers)
    submitted = sum(s.submitted for s in manager.sessions.values())
    assert answered + len(manager.rejections) == submitted
